//! Seeded motion models for moving subscriptions.
//!
//! The mobility experiments translate subscriber bounding boxes every
//! tick — the workload the in-place [`update_entry`] fast path exists
//! for (`drtree_rtree::PackedRTree::update_entry`). Three trajectory
//! families cover the regimes the related mobility literature spans
//! (PAPERS.md: clustered and drifting peer populations):
//!
//! * [`MotionModel::RandomWaypoint`] — the classic ad-hoc-network
//!   model: each mover walks in a straight line to a uniform waypoint,
//!   then re-picks target and speed. Uncorrelated small deltas, the
//!   friendliest case for in-place updates.
//! * [`MotionModel::HotspotDrift`] — movers are pulled toward drifting
//!   attraction centers with Gaussian jitter: spatially correlated
//!   motion that slowly migrates whole populations across Hilbert
//!   shard boundaries.
//! * [`MotionModel::FlashCrowd`] — every mover converges on one event
//!   point that periodically relocates: the adversarial case where a
//!   large fraction of the population crosses shard boundaries at
//!   once.
//!
//! All models are deterministic for a `(model, world, seed)` triple,
//! and every emitted rectangle is clamped inside the world without
//! ever inverting (lo ≤ hi per dimension) or producing non-finite
//! coordinates — extents are preserved exactly, only positions move.
//!
//! [`update_entry`]: https://docs.rs/drtree-rtree

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use drtree_spatial::Rect;

use crate::dist::standard_normal;

/// Which trajectory family drives a [`MotionField`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MotionModel {
    /// Straight-line walks to uniformly re-picked waypoints: each
    /// mover holds a target and a per-tick speed drawn from
    /// `[min_speed, max_speed]`, re-drawn on arrival.
    RandomWaypoint {
        /// Smallest per-tick speed (world distance units).
        min_speed: f64,
        /// Largest per-tick speed.
        max_speed: f64,
    },
    /// Movers pulled toward drifting hotspots with Gaussian jitter.
    /// Hotspots bounce off the world bounds.
    HotspotDrift {
        /// Number of drifting attraction centers (movers are assigned
        /// round-robin-uniformly at construction).
        hotspots: usize,
        /// Fraction of the mover→hotspot distance covered per tick,
        /// clamped to `(0, 1]`.
        pull: f64,
        /// Standard deviation of the per-tick Gaussian jitter.
        jitter: f64,
        /// Per-tick hotspot drift speed.
        drift: f64,
    },
    /// Every mover converges on one event point that relocates
    /// uniformly every `relocate_every` ticks — flash-crowd
    /// convergence.
    FlashCrowd {
        /// Fraction of the mover→event distance covered per tick,
        /// clamped to `(0, 1]`.
        pull: f64,
        /// Standard deviation of the per-tick Gaussian jitter.
        jitter: f64,
        /// Ticks between event relocations (0 relocates every tick).
        relocate_every: u32,
    },
}

/// A seeded population of moving rectangles: holds the current
/// position of every mover and emits one `(mover, new_rect)`
/// translation per mover per [`MotionField::step_into`] call.
#[derive(Debug, Clone)]
pub struct MotionField<const D: usize> {
    model: MotionModel,
    world: Rect<D>,
    rects: Vec<Rect<D>>,
    /// Random-waypoint per-mover targets (centers) and speeds.
    targets: Vec<[f64; D]>,
    speeds: Vec<f64>,
    /// Hotspot-drift state: mover→hotspot assignment, hotspot centers
    /// and velocities.
    assignment: Vec<u32>,
    hotspots: Vec<[f64; D]>,
    hotspot_vel: Vec<[f64; D]>,
    /// Flash-crowd event point.
    event: [f64; D],
    tick: u64,
    rng: StdRng,
}

impl<const D: usize> MotionField<D> {
    /// Builds a field over `initial` rectangles moving inside `world`,
    /// deterministically from `seed`. Initial rectangles are clamped
    /// into the world up front (preserving extents), so the first tick
    /// already starts from legal positions.
    ///
    /// # Panics
    ///
    /// Panics if the world is degenerate (non-finite or inverted), or
    /// if any initial rectangle is wider than the world in some
    /// dimension (it could not be clamped inside).
    pub fn new(model: MotionModel, world: Rect<D>, initial: Vec<Rect<D>>, seed: u64) -> Self {
        for d in 0..D {
            assert!(
                world.lo(d).is_finite() && world.hi(d).is_finite() && world.lo(d) <= world.hi(d),
                "degenerate world"
            );
        }
        let rng = StdRng::seed_from_u64(seed);
        let mut rects = initial;
        for rect in &mut rects {
            for d in 0..D {
                assert!(
                    rect.extent(d) <= world.extent(d),
                    "mover wider than the world in dimension {d}"
                );
            }
            *rect = clamp_center(&world, rect, *rect.center().coords());
        }
        let n = rects.len();
        let mut field = MotionField {
            model,
            world,
            rects,
            targets: Vec::new(),
            speeds: Vec::new(),
            assignment: Vec::new(),
            hotspots: Vec::new(),
            hotspot_vel: Vec::new(),
            event: [0.0; D],
            tick: 0,
            rng,
        };
        match model {
            MotionModel::RandomWaypoint {
                min_speed,
                max_speed,
            } => {
                assert!(
                    0.0 <= min_speed && min_speed <= max_speed && max_speed.is_finite(),
                    "speed range must be finite and ordered"
                );
                field.targets = (0..n)
                    .map(|_| field_point(&field.world, &mut field.rng))
                    .collect();
                field.speeds = (0..n)
                    .map(|_| sample_speed(min_speed, max_speed, &mut field.rng))
                    .collect();
            }
            MotionModel::HotspotDrift {
                hotspots, drift, ..
            } => {
                let hotspots = hotspots.max(1);
                field.hotspots = (0..hotspots)
                    .map(|_| field_point(&field.world, &mut field.rng))
                    .collect();
                field.hotspot_vel = (0..hotspots)
                    .map(|_| {
                        let mut v = [0.0; D];
                        for slot in &mut v {
                            *slot = field.rng.gen_range(-1.0..=1.0) * drift.abs();
                        }
                        v
                    })
                    .collect();
                field.assignment = (0..n)
                    .map(|_| field.rng.gen_range(0..hotspots) as u32)
                    .collect();
            }
            MotionModel::FlashCrowd { .. } => {
                field.event = field_point(&field.world, &mut field.rng);
            }
        }
        field
    }

    /// Number of movers.
    pub fn len(&self) -> usize {
        self.rects.len()
    }

    /// `true` when the field holds no movers.
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// The world every rectangle is clamped into.
    pub fn world(&self) -> &Rect<D> {
        &self.world
    }

    /// Current mover rectangles, indexed by mover id.
    pub fn rects(&self) -> &[Rect<D>] {
        &self.rects
    }

    /// Advances one tick, appending one `(mover, new_rect)` pair per
    /// mover to `out` (every mover moves every tick; ids are indexes
    /// into [`MotionField::rects`]). The emitted rectangle is the
    /// mover's post-clamp position, already recorded in the field.
    pub fn step_into(&mut self, out: &mut Vec<(u32, Rect<D>)>) {
        self.tick += 1;
        match self.model {
            MotionModel::RandomWaypoint {
                min_speed,
                max_speed,
            } => {
                for i in 0..self.rects.len() {
                    let center = self.rects[i].center();
                    let target = self.targets[i];
                    let mut delta = [0.0; D];
                    let mut dist2 = 0.0;
                    for d in 0..D {
                        delta[d] = target[d] - center.coord(d);
                        dist2 += delta[d] * delta[d];
                    }
                    let dist = dist2.sqrt();
                    let speed = self.speeds[i];
                    let mut next = [0.0; D];
                    if dist <= speed || dist == 0.0 {
                        // Arrived: land on the waypoint and re-pick.
                        next = target;
                        self.targets[i] = field_point(&self.world, &mut self.rng);
                        self.speeds[i] = sample_speed(min_speed, max_speed, &mut self.rng);
                    } else {
                        let scale = speed / dist;
                        for d in 0..D {
                            next[d] = center.coord(d) + delta[d] * scale;
                        }
                    }
                    let moved = clamp_center(&self.world, &self.rects[i], next);
                    self.rects[i] = moved;
                    out.push((i as u32, moved));
                }
            }
            MotionModel::HotspotDrift { pull, jitter, .. } => {
                self.drift_hotspots();
                let pull = pull.clamp(f64::MIN_POSITIVE, 1.0);
                for i in 0..self.rects.len() {
                    let hotspot = self.hotspots[self.assignment[i] as usize];
                    let moved = self.pulled(i, &hotspot, pull, jitter);
                    self.rects[i] = moved;
                    out.push((i as u32, moved));
                }
            }
            MotionModel::FlashCrowd {
                pull,
                jitter,
                relocate_every,
            } => {
                if self.tick.is_multiple_of(u64::from(relocate_every.max(1))) {
                    self.event = field_point(&self.world, &mut self.rng);
                }
                let pull = pull.clamp(f64::MIN_POSITIVE, 1.0);
                let event = self.event;
                for i in 0..self.rects.len() {
                    let moved = self.pulled(i, &event, pull, jitter);
                    self.rects[i] = moved;
                    out.push((i as u32, moved));
                }
            }
        }
    }

    /// [`MotionField::step_into`] into a fresh vector.
    pub fn step(&mut self) -> Vec<(u32, Rect<D>)> {
        let mut out = Vec::with_capacity(self.rects.len());
        self.step_into(&mut out);
        out
    }

    /// Moves mover `i`'s center a `pull` fraction toward `toward` plus
    /// Gaussian jitter, clamped into the world.
    fn pulled(&mut self, i: usize, toward: &[f64; D], pull: f64, jitter: f64) -> Rect<D> {
        let center = self.rects[i].center();
        let mut next = [0.0; D];
        for d in 0..D {
            let c = center.coord(d);
            next[d] = c + pull * (toward[d] - c) + jitter * standard_normal(&mut self.rng);
        }
        clamp_center(&self.world, &self.rects[i], next)
    }

    /// Advances hotspot centers along their velocities, reflecting off
    /// the world bounds.
    fn drift_hotspots(&mut self) {
        for (center, vel) in self.hotspots.iter_mut().zip(&mut self.hotspot_vel) {
            for d in 0..D {
                let mut c = center[d] + vel[d];
                if c < self.world.lo(d) {
                    c = self.world.lo(d) + (self.world.lo(d) - c).min(self.world.extent(d));
                    vel[d] = -vel[d];
                } else if c > self.world.hi(d) {
                    c = self.world.hi(d) - (c - self.world.hi(d)).min(self.world.extent(d));
                    vel[d] = -vel[d];
                }
                center[d] = c;
            }
        }
    }
}

/// A uniform point inside `world` (component-wise; degenerate
/// dimensions collapse to their single legal coordinate).
fn field_point<const D: usize>(world: &Rect<D>, rng: &mut StdRng) -> [f64; D] {
    let mut p = [0.0; D];
    for (d, c) in p.iter_mut().enumerate() {
        *c = if world.extent(d) > 0.0 {
            rng.gen_range(world.lo(d)..=world.hi(d))
        } else {
            world.lo(d)
        };
    }
    p
}

fn sample_speed(min_speed: f64, max_speed: f64, rng: &mut StdRng) -> f64 {
    if max_speed > min_speed {
        rng.gen_range(min_speed..=max_speed)
    } else {
        min_speed
    }
}

/// Re-centers `rect` at `center` preserving its extents, then clamps
/// the result inside `world`. Non-finite center components (possible
/// only from pathological jitter inputs) collapse to the world's low
/// corner, so the output is always a finite, non-inverted rectangle.
fn clamp_center<const D: usize>(world: &Rect<D>, rect: &Rect<D>, center: [f64; D]) -> Rect<D> {
    let mut lo = [0.0; D];
    let mut hi = [0.0; D];
    for d in 0..D {
        let extent = rect.extent(d);
        let c = if center[d].is_finite() {
            center[d]
        } else {
            world.lo(d)
        };
        // Clamp the low edge into [world.lo, world.hi - extent]; the
        // construction-time width assertion keeps that range non-empty.
        let l = (c - extent * 0.5).clamp(world.lo(d), world.hi(d) - extent);
        lo[d] = l;
        hi[d] = l + extent;
    }
    Rect::new(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> Rect<2> {
        Rect::new([0.0, 0.0], [100.0, 100.0])
    }

    fn movers(n: usize, seed: u64) -> Vec<Rect<2>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let x = rng.gen_range(0.0..90.0);
                let y = rng.gen_range(0.0..90.0);
                let w = rng.gen_range(0.5..8.0);
                let h = rng.gen_range(0.5..8.0);
                Rect::new([x, y], [(x + w).min(100.0), (y + h).min(100.0)])
            })
            .collect()
    }

    fn models() -> [MotionModel; 3] {
        [
            MotionModel::RandomWaypoint {
                min_speed: 0.5,
                max_speed: 5.0,
            },
            MotionModel::HotspotDrift {
                hotspots: 4,
                pull: 0.2,
                jitter: 1.5,
                drift: 0.7,
            },
            MotionModel::FlashCrowd {
                pull: 0.3,
                jitter: 2.0,
                relocate_every: 16,
            },
        ]
    }

    #[test]
    fn same_seed_same_trajectory() {
        for model in models() {
            let mut a = MotionField::new(model, world(), movers(64, 3), 42);
            let mut b = MotionField::new(model, world(), movers(64, 3), 42);
            for _ in 0..50 {
                assert_eq!(a.step(), b.step(), "{model:?} diverged under one seed");
            }
            let mut c = MotionField::new(model, world(), movers(64, 3), 43);
            let diverged = (0..50).any(|_| {
                let x = a.step();
                x != c.step() || x.is_empty()
            });
            assert!(diverged, "{model:?} ignored its seed");
        }
    }

    #[test]
    fn every_tick_emits_every_mover_once() {
        for model in models() {
            let mut field = MotionField::new(model, world(), movers(33, 9), 7);
            for _ in 0..20 {
                let step = field.step();
                let mut ids: Vec<u32> = step.iter().map(|(i, _)| *i).collect();
                ids.sort_unstable();
                assert_eq!(ids, (0..33).collect::<Vec<u32>>());
            }
        }
    }

    #[test]
    fn clamping_never_inverts_or_escapes_under_extreme_motion() {
        // Extreme speeds/jitter against a small world: every emitted
        // rectangle must stay finite, non-inverted, inside the world,
        // and keep its extents.
        let world = Rect::new([0.0, 0.0], [10.0, 10.0]);
        let extreme = [
            MotionModel::RandomWaypoint {
                min_speed: 50.0,
                max_speed: 500.0,
            },
            MotionModel::HotspotDrift {
                hotspots: 2,
                pull: 1.0,
                jitter: 100.0,
                drift: 25.0,
            },
            MotionModel::FlashCrowd {
                pull: 1.0,
                jitter: 300.0,
                relocate_every: 1,
            },
        ];
        for model in extreme {
            let initial: Vec<Rect<2>> = (0..40)
                .map(|i| {
                    let x = f64::from(i % 8);
                    let y = f64::from(i / 8);
                    Rect::new([x, y], [x + 2.0, y + 3.0])
                })
                .collect();
            let extents: Vec<[f64; 2]> =
                initial.iter().map(|r| [r.extent(0), r.extent(1)]).collect();
            let mut field = MotionField::new(model, world, initial, 11);
            for _ in 0..100 {
                for (i, rect) in field.step() {
                    for (d, extent) in extents[i as usize].iter().enumerate() {
                        assert!(rect.lo(d).is_finite() && rect.hi(d).is_finite());
                        assert!(rect.lo(d) <= rect.hi(d), "inverted rect from {model:?}");
                        assert!(
                            rect.lo(d) >= world.lo(d) - 1e-9 && rect.hi(d) <= world.hi(d) + 1e-9,
                            "escaped world under {model:?}"
                        );
                        assert!(
                            (rect.extent(d) - extent).abs() < 1e-9,
                            "extent changed under {model:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn waypoint_walks_make_progress() {
        let model = MotionModel::RandomWaypoint {
            min_speed: 1.0,
            max_speed: 1.0,
        };
        let start = Rect::new([50.0, 50.0], [52.0, 52.0]);
        let mut field = MotionField::new(model, world(), vec![start], 5);
        let mut total = 0.0;
        let mut prev = start.center();
        for _ in 0..200 {
            field.step();
            let next = field.rects()[0].center();
            let dx = next.coord(0) - prev.coord(0);
            let dy = next.coord(1) - prev.coord(1);
            total += (dx * dx + dy * dy).sqrt();
            prev = next;
        }
        // Unit speed for 200 ticks covers ~200 units of path (short
        // only on the ticks that land exactly on a waypoint).
        assert!(total > 100.0, "covered only {total}");
    }
}
