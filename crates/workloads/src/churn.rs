//! Poisson churn schedules (the paper's footnote 4: "we consider
//! arrivals and departures modeled by a Poisson distribution").
//!
//! [`PoissonChurn`] produces a deterministic timeline of join/leave
//! operations used by the churn-resistance experiment (Lemma 3.7) and
//! the recovery benchmarks.

use rand::rngs::StdRng;
use rand::Rng;

/// One churn operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnOp {
    /// A fresh subscriber joins.
    Join,
    /// A uniformly chosen live subscriber departs without notice
    /// (crash/uncontrolled leave).
    Leave,
}

/// A scheduled churn operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnEvent {
    /// Absolute time of the operation (continuous; the harness
    /// discretizes to rounds).
    pub at: f64,
    /// What happens.
    pub op: ChurnOp,
}

/// Independent Poisson processes for joins (`lambda_join`) and
/// departures (`lambda_leave`), in events per time unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonChurn {
    /// Arrival rate.
    pub lambda_join: f64,
    /// Departure rate (the λ of Lemma 3.7).
    pub lambda_leave: f64,
}

impl PoissonChurn {
    /// Generates the merged, time-ordered schedule over `[0, horizon)`.
    ///
    /// # Panics
    ///
    /// Panics if either rate is negative or the horizon non-positive.
    pub fn schedule(&self, horizon: f64, rng: &mut StdRng) -> Vec<ChurnEvent> {
        assert!(horizon > 0.0, "horizon must be positive");
        assert!(
            self.lambda_join >= 0.0 && self.lambda_leave >= 0.0,
            "rates must be non-negative"
        );
        let mut events = Vec::new();
        for (rate, op) in [
            (self.lambda_join, ChurnOp::Join),
            (self.lambda_leave, ChurnOp::Leave),
        ] {
            if rate <= 0.0 {
                continue;
            }
            let mut t = 0.0;
            loop {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                t += -u.ln() / rate;
                if t >= horizon {
                    break;
                }
                events.push(ChurnEvent { at: t, op });
            }
        }
        events.sort_by(|a, b| a.at.partial_cmp(&b.at).expect("finite times"));
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn schedule_is_sorted_and_bounded() {
        let mut rng = StdRng::seed_from_u64(1);
        let churn = PoissonChurn {
            lambda_join: 2.0,
            lambda_leave: 1.0,
        };
        let sched = churn.schedule(100.0, &mut rng);
        assert!(!sched.is_empty());
        for w in sched.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        assert!(sched.iter().all(|e| e.at < 100.0));
    }

    #[test]
    fn event_counts_match_rates() {
        let mut rng = StdRng::seed_from_u64(2);
        let churn = PoissonChurn {
            lambda_join: 3.0,
            lambda_leave: 1.0,
        };
        let sched = churn.schedule(1_000.0, &mut rng);
        let joins = sched.iter().filter(|e| e.op == ChurnOp::Join).count() as f64;
        let leaves = sched.iter().filter(|e| e.op == ChurnOp::Leave).count() as f64;
        assert!((joins - 3_000.0).abs() < 300.0, "joins {joins}");
        assert!((leaves - 1_000.0).abs() < 150.0, "leaves {leaves}");
    }

    #[test]
    fn zero_rate_produces_no_events() {
        let mut rng = StdRng::seed_from_u64(3);
        let churn = PoissonChurn {
            lambda_join: 0.0,
            lambda_leave: 0.0,
        };
        assert!(churn.schedule(10.0, &mut rng).is_empty());
    }
}
