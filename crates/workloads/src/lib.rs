//! Workload generators for the DR-tree experiments.
//!
//! The companion technical report's workloads are not public, so this
//! crate generates the synthetic equivalents used throughout the
//! experiment harness (see DESIGN.md §2):
//!
//! * [`subscriptions`] — subscription-set generators: uniform random
//!   rectangles, clustered "interest community" rectangles, and
//!   containment-chain workloads (nested filters exercising the
//!   containment-awareness properties §3.1);
//! * [`events`] — event streams: uniform, hotspot-biased (the "bias
//!   event workloads" motivating the FP-driven reorganization §3.2),
//!   and subscription-following;
//! * [`churn`] — Poisson join/leave schedules (the paper's footnote 4
//!   model for Lemma 3.7);
//! * [`dist`] — the small samplers needed above (Zipf by inverse CDF,
//!   Gaussian by Box–Muller), implemented locally to keep the
//!   dependency closure minimal.
//!
//! All generators are deterministic for a given [`rand::rngs::StdRng`]
//! seed, like everything else in this reproduction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod dist;
pub mod events;
pub mod subscriptions;

pub use churn::{ChurnEvent, ChurnOp, PoissonChurn};
pub use events::EventWorkload;
pub use subscriptions::SubscriptionWorkload;
