//! Workload generators for the DR-tree experiments.
//!
//! The companion technical report's workloads are not public, so this
//! crate generates the synthetic equivalents used throughout the
//! experiment harness (see DESIGN.md §2):
//!
//! * [`subscriptions`] — subscription-set generators: uniform random
//!   rectangles, clustered "interest community" rectangles, and
//!   containment-chain workloads (nested filters exercising the
//!   containment-awareness properties §3.1);
//! * [`events`] — event streams: uniform, hotspot-biased (the "bias
//!   event workloads" motivating the FP-driven reorganization §3.2),
//!   and subscription-following;
//! * [`churn`] — Poisson join/leave schedules (the paper's footnote 4
//!   model for Lemma 3.7);
//! * [`arrivals`] — open-loop arrival schedules (uniform, Poisson,
//!   bursty) for the multi-publisher ingress latency experiments —
//!   scheduled timestamps, so queue wait is measured instead of
//!   coordinated away;
//! * [`motion`] — seeded motion models (random waypoint, hotspot
//!   drift, flash-crowd convergence) emitting per-tick bounding-box
//!   translations for the moving-subscription experiments;
//! * [`dist`] — the small samplers needed above (Zipf by inverse CDF,
//!   Gaussian by Box–Muller), implemented locally to keep the
//!   dependency closure minimal.
//!
//! All generators are deterministic for a given [`rand::rngs::StdRng`]
//! seed, like everything else in this reproduction.
//!
//! # Example
//!
//! ```
//! use drtree_workloads::{EventWorkload, SubscriptionWorkload};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let subs = SubscriptionWorkload::Uniform { min_extent: 1.0, max_extent: 10.0 }
//!     .generate::<2>(100, &mut rng);
//! assert_eq!(subs.len(), 100);
//!
//! // An event stream biased toward the subscriptions it should match.
//! let events = EventWorkload::Following.generate_with(50, &subs, &mut rng);
//! assert!(events
//!     .iter()
//!     .all(|e| subs.iter().any(|s| s.contains_point(e))));
//!
//! // Same seed, same workload — determinism is load-bearing here.
//! let mut rng2 = StdRng::seed_from_u64(7);
//! let again = SubscriptionWorkload::Uniform { min_extent: 1.0, max_extent: 10.0 }
//!     .generate::<2>(100, &mut rng2);
//! assert_eq!(subs, again);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;
pub mod churn;
pub mod dist;
pub mod events;
pub mod motion;
pub mod subscriptions;

pub use arrivals::ArrivalSchedule;
pub use churn::{ChurnEvent, ChurnOp, PoissonChurn};
pub use events::EventWorkload;
pub use motion::{MotionField, MotionModel};
pub use subscriptions::SubscriptionWorkload;
