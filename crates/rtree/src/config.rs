use std::fmt;

use crate::split::SplitMethod;

/// Degree bounds and split method for an R-tree (or a DR-tree overlay,
/// which reuses this configuration).
///
/// The paper's structural constraints (§2.2): every node holds between
/// `m` and `M` entries (the root excepted), and "m must be chosen such
/// that M ≥ 2m" so that a split can give each side at least `m` entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RTreeConfig {
    min_entries: usize,
    max_entries: usize,
    split: SplitMethod,
}

/// Error returned for degree bounds that violate the R-tree constraints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `m` must be at least 1.
    MinTooSmall,
    /// `M ≥ 2m` must hold (paper §3.2) so splits can satisfy both groups.
    MaxLessThanTwiceMin {
        /// Provided minimum `m`.
        min: usize,
        /// Provided maximum `M`.
        max: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::MinTooSmall => f.write_str("min_entries (m) must be at least 1"),
            ConfigError::MaxLessThanTwiceMin { min, max } => write!(
                f,
                "max_entries (M = {max}) must be at least twice min_entries (m = {min})"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

impl RTreeConfig {
    /// Creates a configuration with minimum degree `m`, maximum degree
    /// `M`, and the given split method.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] unless `1 ≤ m` and `2m ≤ M`.
    pub fn new(m: usize, max: usize, split: SplitMethod) -> Result<Self, ConfigError> {
        if m < 1 {
            return Err(ConfigError::MinTooSmall);
        }
        if max < 2 * m {
            return Err(ConfigError::MaxLessThanTwiceMin { min: m, max });
        }
        Ok(Self {
            min_entries: m,
            max_entries: max,
            split,
        })
    }

    /// Minimum entries per non-root node (`m`).
    pub fn min_entries(&self) -> usize {
        self.min_entries
    }

    /// Maximum entries per node (`M`).
    pub fn max_entries(&self) -> usize {
        self.max_entries
    }

    /// The children-set split method.
    pub fn split_method(&self) -> SplitMethod {
        self.split
    }
}

impl Default for RTreeConfig {
    /// `m = 2`, `M = 4`, quadratic split — the classic textbook setting.
    fn default() -> Self {
        Self {
            min_entries: 2,
            max_entries: 4,
            split: SplitMethod::Quadratic,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_configs() {
        assert!(RTreeConfig::new(1, 2, SplitMethod::Linear).is_ok());
        assert!(RTreeConfig::new(2, 4, SplitMethod::Quadratic).is_ok());
        assert!(RTreeConfig::new(4, 16, SplitMethod::RStar).is_ok());
    }

    #[test]
    fn invalid_configs() {
        assert_eq!(
            RTreeConfig::new(0, 4, SplitMethod::Linear),
            Err(ConfigError::MinTooSmall)
        );
        assert_eq!(
            RTreeConfig::new(3, 5, SplitMethod::Linear),
            Err(ConfigError::MaxLessThanTwiceMin { min: 3, max: 5 })
        );
    }

    #[test]
    fn default_is_valid() {
        let c = RTreeConfig::default();
        assert!(RTreeConfig::new(c.min_entries(), c.max_entries(), c.split_method()).is_ok());
    }

    #[test]
    fn error_display() {
        let e = RTreeConfig::new(3, 5, SplitMethod::Linear).unwrap_err();
        assert!(e.to_string().contains("twice"));
    }
}
