//! The packed, cache-friendly R-tree backend.
//!
//! [`PackedRTree`] stores the whole index in contiguous `Vec`-backed
//! level arrays — no per-node boxes, no pointer chasing. It is built
//! bottom-up in one pass: entries are sorted by the Hilbert index of
//! their center ([`drtree_spatial::hilbert`]), tiled into nodes of
//! `node_size` consecutive entries, and parent levels pack the level
//! below the same way until a single root remains (the flatbush /
//! geo-index construction).
//!
//! Topology is implicit: node `j` of level `l` always covers children
//! `j·B .. min((j+1)·B, len(l−1))` of the level below, so the only
//! stored data are the node MBRs themselves. Searches are iterative
//! (explicit stack, no recursion), and the visitor API delivers hits
//! through a callback so the hot path allocates nothing per result.
//!
//! The tree is static in *shape* but serves live workloads through
//! [`PackedRTree::update`], which rewrites one entry's rectangle and
//! incrementally refits the `O(log N)` ancestor MBRs above it.
//!
//! # The two-tier search: packed levels + delta layer
//!
//! Growing or shrinking the entry set does **not** require an
//! immediate rebuild. The tree carries a bounded *delta layer*:
//!
//! * **staging buffer** — [`PackedRTree::stage_insert`] appends new
//!   entries to a small unsorted side array. Every visitor
//!   ([`PackedRTree::for_each_containing`], the batched descent, the
//!   abortable window walk) searches the packed levels *and* then
//!   scans the staging buffer with the same branchless ≤32-wide
//!   bitmask chunks the leaf level uses, so staged entries are visible
//!   immediately and the scan stays cheap while the buffer is small.
//! * **tombstones** — [`PackedRTree::tombstone`] marks a packed slot
//!   dead in a bitmap ([`PackedRTree::is_live`]); traversals skip dead
//!   slots at emission time. Node MBRs are left untouched (they only
//!   over-approximate, which costs pruning quality, never
//!   correctness).
//!
//! [`PackedRTree::compact`] folds both back into a fresh Hilbert
//! bulk-load; [`PackedRTree::needs_compaction`] says when the delta
//! has outgrown the configured fraction of the packed slots
//! ([`PackedRTree::set_delta_fraction`]), so a churning consumer (the
//! pub/sub broker's subscription oracle) pays one `O(N log N)` merge
//! per *delta-fraction* worth of mutations instead of one full rebuild
//! per mutation batch.

use drtree_spatial::hilbert::GridMapper;
use drtree_spatial::{Point, Rect};

use crate::index::SpatialIndex;

/// Default node capacity; 16 balances depth against per-node scan cost
/// (the flatbush default).
pub const DEFAULT_NODE_SIZE: usize = 16;

/// Hard cap on node capacity: per-node hit bitmasks live in one `u32`
/// word, and the fixed traversal stack ([`STACK_CAPACITY`]) must cover
/// `(node_size − 1) · (height − 1) + 1` frames for any 2^32-entry tree.
const MAX_NODE_SIZE: usize = 32;

/// Worst-case traversal stack depth: `node_size = 32` gives height ≤ 7
/// at 2^32 entries, so `31 · 6 + 1 = 187` frames bound every legal
/// tree; 256 leaves margin.
const STACK_CAPACITY: usize = 256;

/// Default delta-layer budget: compact when staged entries plus
/// tombstones exceed this fraction of the packed slots. A quarter
/// keeps the staging scan a small constant of the packed search while
/// amortizing one `O(N log N)` merge over `N/4` mutations.
pub const DEFAULT_DELTA_FRACTION: f64 = 0.25;

/// The Hilbert-sorted permutation of `entries` (indexes into it).
///
/// The key/index pair is packed into one scalar wherever it fits —
/// `u64` for `D ≤ 2`, `u128` for `D ≤ 6` — so the dominant sort moves
/// machine words instead of tuples; wider dimensions fall back to
/// tuple sorting. All variants order by (curve key, insertion index),
/// and the caller applies the permutation once so every per-entry
/// array lives in slot order.
fn curve_order<K, const D: usize>(mapper: &GridMapper<D>, entries: &[(K, Rect<D>)]) -> Vec<u32> {
    if D <= 2 {
        let mut tagged: Vec<u64> = entries
            .iter()
            .enumerate()
            .map(|(i, (_, r))| ((mapper.key(r) as u64) << 32) | i as u64)
            .collect();
        tagged.sort_unstable();
        tagged.into_iter().map(|t| t as u32).collect()
    } else if D <= 6 {
        let mut tagged: Vec<u128> = entries
            .iter()
            .enumerate()
            .map(|(i, (_, r))| (mapper.key(r) << 32) | i as u128)
            .collect();
        tagged.sort_unstable();
        tagged.into_iter().map(|t| t as u32).collect()
    } else {
        let mut tagged: Vec<(u128, u32)> = entries
            .iter()
            .enumerate()
            .map(|(i, (_, r))| (mapper.key(r), i as u32))
            .collect();
        tagged.sort_unstable();
        tagged.into_iter().map(|(_, i)| i).collect()
    }
}

/// Bitmask of rectangles in `rects` (≤ 32 of them) containing `point`.
///
/// Branchless on purpose: every test runs to completion with bitwise
/// `&`, so the loop vectorizes over the contiguous MBR array and pays
/// no branch mispredictions — the payoff of the flat layout.
#[inline]
fn mask_containing<const D: usize>(rects: &[Rect<D>], point: &Point<D>) -> u32 {
    debug_assert!(rects.len() <= MAX_NODE_SIZE);
    let mut mask = 0u32;
    for (i, r) in rects.iter().enumerate() {
        let mut hit = true;
        for d in 0..D {
            let c = point.coord(d);
            hit &= (r.lo(d) <= c) & (c <= r.hi(d));
        }
        mask |= u32::from(hit) << i;
    }
    mask
}

/// Bitmask of rectangles in `rects` (≤ 32 of them) intersecting
/// `window`; branchless like [`mask_containing`].
#[inline]
fn mask_intersecting<const D: usize>(rects: &[Rect<D>], window: &Rect<D>) -> u32 {
    debug_assert!(rects.len() <= MAX_NODE_SIZE);
    let mut mask = 0u32;
    for (i, r) in rects.iter().enumerate() {
        let mut hit = true;
        for d in 0..D {
            hit &= (r.lo(d) <= window.hi(d)) & (window.lo(d) <= r.hi(d));
        }
        mask |= u32::from(hit) << i;
    }
    mask
}

/// A packed R-tree: all MBRs in flat per-level arrays, Hilbert
/// bulk-loaded, with iterative allocation-free searches.
///
/// `K` is the caller's key type; duplicates are permitted. Entry order
/// after construction follows the Hilbert curve, and every entry is
/// addressed by its *slot* (index in that order) for `O(log N)`
/// in-place updates.
///
/// # Example
///
/// ```
/// use drtree_rtree::{PackedRTree, SpatialIndex};
/// use drtree_spatial::{Point, Rect};
///
/// let entries: Vec<(u32, Rect<2>)> = (0..100)
///     .map(|i| {
///         let x = f64::from(i % 10) * 10.0;
///         let y = f64::from(i / 10) * 10.0;
///         (i, Rect::new([x, y], [x + 5.0, y + 5.0]))
///     })
///     .collect();
/// let tree = PackedRTree::bulk_load(entries);
/// assert_eq!(tree.len(), 100);
/// let hits = tree.search_point(&Point::new([2.0, 2.0]));
/// assert_eq!(hits, vec![&0]);
/// tree.validate()?;
/// # Ok::<(), drtree_rtree::PackedValidationError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PackedRTree<K, const D: usize> {
    node_size: usize,
    /// Entry keys in slot (Hilbert) order, parallel to `rects`: a hit
    /// at `slot` reads `keys[slot]` directly, and because search
    /// results come out as runs of nearby slots, those reads stay on
    /// the same cache lines instead of bouncing through a permutation
    /// array.
    keys: Vec<K>,
    /// Entry rectangles in slot (Hilbert) order — the contiguous array
    /// the leaf-level mask scans run over.
    rects: Vec<Rect<D>>,
    /// `levels[0]` holds the leaf-node MBRs, each covering `node_size`
    /// consecutive entries; each further level packs the one below; the
    /// last level is the root (length 1). Empty iff the packed tier is
    /// empty (staged entries may still exist).
    levels: Vec<Vec<Rect<D>>>,
    /// Delta-layer staging buffer: keys of entries inserted since the
    /// last bulk load / compaction, parallel to `staged_rects`.
    staged_keys: Vec<K>,
    /// Staged rectangles — the contiguous array the staging-scan
    /// bitmask chunks run over.
    staged_rects: Vec<Rect<D>>,
    /// Tombstone bitmap over packed slots (one bit per slot, empty
    /// until the first tombstone); set bits are dead entries skipped at
    /// emission time.
    tombstones: Vec<u64>,
    /// Number of set bits in `tombstones`.
    tombstone_count: usize,
    /// Union of every rectangle ever staged since the last compaction
    /// (an over-approximation after staged removals); folded into
    /// [`PackedRTree::mbr`] so delta entries are never pruned away.
    staged_mbr: Option<Rect<D>>,
    /// Compaction trigger: see [`PackedRTree::needs_compaction`].
    delta_fraction: f64,
}

/// How [`PackedRTree::remove_entry`] realized a removal — callers
/// maintaining external slot- or stage-indexed structures (e.g. the
/// pub/sub stab grid) patch themselves from this.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeltaRemoval<const D: usize> {
    /// A staged entry was removed by swap-remove: `index` is the
    /// vacated staging index, and `moved` is the rectangle of the
    /// former last staged entry now living at `index` (`None` when the
    /// removed entry *was* the last).
    Unstaged {
        /// The staging index that was vacated.
        index: usize,
        /// Rectangle of the entry swapped into `index`, if any.
        moved: Option<Rect<D>>,
    },
    /// A packed entry was tombstoned in place.
    Tombstoned {
        /// The now-dead packed slot.
        slot: usize,
    },
}

/// What one [`PackedRTree::compact`] call absorbed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaCompaction {
    /// Staged entries merged into the packed levels.
    pub staged_absorbed: usize,
    /// Tombstoned slots reclaimed.
    pub tombstones_reclaimed: usize,
}

impl DeltaCompaction {
    /// `true` when the compaction had nothing to do.
    pub fn is_noop(&self) -> bool {
        self.staged_absorbed == 0 && self.tombstones_reclaimed == 0
    }
}

/// A violated packed-level invariant, reported by
/// [`PackedRTree::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum PackedValidationError {
    /// A level's length is not `ceil(len(below) / node_size)`.
    WrongLevelLength {
        /// Level index (0 = leaf nodes).
        level: usize,
        /// Nodes found at the level.
        found: usize,
        /// Nodes the implicit topology requires.
        expected: usize,
    },
    /// A node MBR is not the exact union of what it covers.
    WrongMbr {
        /// Level index (0 = leaf nodes).
        level: usize,
        /// Node index within the level.
        node: usize,
    },
    /// The key and rectangle arrays disagree in length, or a non-empty
    /// tree has no levels.
    Inconsistent,
    /// The delta layer violates an invariant: staged arrays of unequal
    /// length, a tombstone count disagreeing with the bitmap, a bitmap
    /// of the wrong width, or a staged rectangle outside the tracked
    /// staged MBR.
    DeltaInconsistent,
}

impl std::fmt::Display for PackedValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PackedValidationError::WrongLevelLength {
                level,
                found,
                expected,
            } => write!(
                f,
                "packed level {level} has {found} nodes, topology requires {expected}"
            ),
            PackedValidationError::WrongMbr { level, node } => {
                write!(f, "node {node} of level {level} has a non-exact MBR")
            }
            PackedValidationError::Inconsistent => {
                f.write_str("entry arrays inconsistent with level arrays")
            }
            PackedValidationError::DeltaInconsistent => {
                f.write_str("delta layer inconsistent with its bookkeeping")
            }
        }
    }
}

impl std::error::Error for PackedValidationError {}

impl<K, const D: usize> PackedRTree<K, D> {
    /// Hilbert bulk-load with the default node size.
    pub fn bulk_load(entries: Vec<(K, Rect<D>)>) -> Self {
        Self::bulk_load_with_node_size(DEFAULT_NODE_SIZE, entries)
    }

    /// Hilbert bulk-load with node capacity `node_size` (clamped to
    /// `[2, 32]`; the cap keeps node bitmasks in one machine word and
    /// bounds the traversal stack).
    pub fn bulk_load_with_node_size(node_size: usize, entries: Vec<(K, Rect<D>)>) -> Self {
        let node_size = node_size.clamp(2, MAX_NODE_SIZE);
        let n = entries.len();
        assert!(
            n <= u32::MAX as usize,
            "packed tree is limited to 2^32 entries"
        );
        if n == 0 {
            return Self {
                node_size,
                keys: Vec::new(),
                rects: Vec::new(),
                levels: Vec::new(),
                staged_keys: Vec::new(),
                staged_rects: Vec::new(),
                tombstones: Vec::new(),
                tombstone_count: 0,
                staged_mbr: None,
                delta_fraction: DEFAULT_DELTA_FRACTION,
            };
        }

        // Order entries along the Hilbert curve of their centers. The
        // sort permutes small scalar (key, index) packs, not the
        // entries themselves; ties keep insertion order via the index,
        // so construction is deterministic even on degenerate worlds.
        let world = GridMapper::world_of(entries.iter().map(|(_, r)| r))
            .unwrap_or_else(|| Rect::new([0.0; D], [1.0; D]));
        let mapper = GridMapper::new(&world);
        let order = curve_order(&mapper, &entries);
        let rects: Vec<Rect<D>> = order.iter().map(|&i| entries[i as usize].1).collect();
        // Apply the permutation to the keys as well (one O(N) move
        // pass, no `Clone` required), so hits read `keys[slot]` with
        // no indirection.
        let mut taken: Vec<Option<K>> = entries.into_iter().map(|(k, _)| Some(k)).collect();
        let keys: Vec<K> = order
            .iter()
            .map(|&i| taken[i as usize].take().expect("order is a permutation"))
            .collect();

        // Pack levels bottom-up until a single root remains.
        let mut levels: Vec<Vec<Rect<D>>> = Vec::new();
        let mut below: &[Rect<D>] = &rects;
        loop {
            let level: Vec<Rect<D>> = below
                .chunks(node_size)
                .map(|chunk| Rect::union_all(chunk.iter()).expect("chunks are non-empty"))
                .collect();
            let done = level.len() == 1;
            levels.push(level);
            if done {
                break;
            }
            below = levels.last().expect("just pushed");
        }

        Self {
            node_size,
            keys,
            rects,
            levels,
            staged_keys: Vec::new(),
            staged_rects: Vec::new(),
            tombstones: Vec::new(),
            tombstone_count: 0,
            staged_mbr: None,
            delta_fraction: DEFAULT_DELTA_FRACTION,
        }
    }

    /// Number of *live* entries: packed slots minus tombstones plus
    /// staged entries.
    pub fn len(&self) -> usize {
        self.keys.len() - self.tombstone_count + self.staged_keys.len()
    }

    /// `true` if the tree stores no live entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of packed slots, tombstoned ones included — the range
    /// valid for [`PackedRTree::entry`], [`PackedRTree::update`], and
    /// [`PackedRTree::tombstone`].
    pub fn packed_len(&self) -> usize {
        self.keys.len()
    }

    /// Node capacity the tree was packed with.
    pub fn node_size(&self) -> usize {
        self.node_size
    }

    /// Number of node levels, counting the leaf-node level as 1. An
    /// empty tree has height 1, mirroring [`crate::RTree::height`].
    pub fn height(&self) -> usize {
        self.levels.len().max(1)
    }

    /// The MBR of the whole tree — packed root unioned with the staged
    /// layer's MBR (`None` when no entry was ever stored since the last
    /// compaction). Tombstones never shrink it, so it may
    /// over-approximate; pruning against it stays conservative.
    pub fn mbr(&self) -> Option<Rect<D>> {
        let root = self.levels.last().map(|root| root[0]);
        match (root, self.staged_mbr) {
            (Some(a), Some(b)) => Some(a.union(&b)),
            (a, b) => a.or(b),
        }
    }

    /// The entry stored in packed `slot` (Hilbert order), tombstoned or
    /// not — check [`PackedRTree::is_live`] when it matters.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= self.packed_len()`.
    pub fn entry(&self, slot: usize) -> (&K, &Rect<D>) {
        (&self.keys[slot], &self.rects[slot])
    }

    /// All packed entry keys in slot order — the raw column behind
    /// [`PackedRTree::entry`], for consumers that index by slot in
    /// bulk (e.g. external acceleration structures keyed by slot).
    /// Includes tombstoned slots; excludes the staging buffer
    /// ([`PackedRTree::staged_keys`]).
    pub fn keys(&self) -> &[K] {
        &self.keys
    }

    /// All packed entry rectangles in slot order (parallel to
    /// [`PackedRTree::keys`]).
    pub fn rects(&self) -> &[Rect<D>] {
        &self.rects
    }

    /// All staged entry keys (delta layer, arbitrary order), parallel
    /// to [`PackedRTree::staged_rects`].
    pub fn staged_keys(&self) -> &[K] {
        &self.staged_keys
    }

    /// All staged entry rectangles (parallel to
    /// [`PackedRTree::staged_keys`]).
    pub fn staged_rects(&self) -> &[Rect<D>] {
        &self.staged_rects
    }

    /// Iterates over the *live* packed entries as `(slot, key, rect)`
    /// in Hilbert order, skipping tombstoned slots. Staged entries are
    /// not included ([`PackedRTree::staged_keys`] exposes them).
    pub fn entries(&self) -> impl Iterator<Item = (usize, &K, &Rect<D>)> {
        self.keys
            .iter()
            .zip(self.rects.iter())
            .enumerate()
            .filter(|&(slot, _)| self.is_live(slot))
            .map(|(slot, (k, r))| (slot, k, r))
    }

    /// The lowest live packed slot holding an entry with key `key`, if
    /// any.
    pub fn slot_of(&self, key: &K) -> Option<usize>
    where
        K: PartialEq,
    {
        self.keys
            .iter()
            .enumerate()
            .find(|&(slot, k)| k == key && self.is_live(slot))
            .map(|(slot, _)| slot)
    }

    /// Replaces the rectangle in `slot` and incrementally refits the
    /// `O(log N)` ancestor MBRs above it — the live-update path: no
    /// rebuild, no allocation.
    ///
    /// The entry keeps its slot, so a drifting subscription stays
    /// addressable; packing quality degrades only as far as the moved
    /// rectangle inflates its ancestors (refits are exact, shrinking
    /// included). Rebuild via [`PackedRTree::bulk_load`] when drift
    /// accumulates.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= self.packed_len()`.
    pub fn update(&mut self, slot: usize, rect: Rect<D>) {
        assert!(slot < self.keys.len(), "slot {slot} out of bounds");
        debug_assert!(self.is_live(slot), "updating a tombstoned slot");
        self.rects[slot] = rect;
        let mut node = slot / self.node_size;
        for level in 0..self.levels.len() {
            let exact = self
                .covered_union(level, node)
                .expect("covered range is non-empty");
            if self.levels[level][node] == exact {
                break; // ancestors above are unions of unchanged MBRs
            }
            self.levels[level][node] = exact;
            node /= self.node_size;
        }
    }

    /// The exact union of everything node `(level, node)` covers.
    fn covered_union(&self, level: usize, node: usize) -> Option<Rect<D>> {
        let lo = node * self.node_size;
        let below: &[Rect<D>] = if level == 0 {
            &self.rects
        } else {
            &self.levels[level - 1]
        };
        let hi = ((node + 1) * self.node_size).min(below.len());
        Rect::union_all(below[lo..hi].iter())
    }

    // ---- delta layer -------------------------------------------------

    /// Appends `(key, rect)` to the staging buffer. The entry is
    /// visible to every visitor immediately; it joins the packed levels
    /// at the next [`PackedRTree::compact`].
    pub fn stage_insert(&mut self, key: K, rect: Rect<D>) {
        self.staged_mbr = Some(match self.staged_mbr {
            Some(m) => m.union(&rect),
            None => rect,
        });
        self.staged_keys.push(key);
        self.staged_rects.push(rect);
    }

    /// Number of entries in the staging buffer.
    pub fn staged_len(&self) -> usize {
        self.staged_keys.len()
    }

    /// Number of tombstoned packed slots.
    pub fn tombstone_count(&self) -> usize {
        self.tombstone_count
    }

    /// Size of the delta layer: staged entries plus tombstones — the
    /// quantity [`PackedRTree::needs_compaction`] compares against the
    /// packed slot count.
    pub fn delta_len(&self) -> usize {
        self.staged_keys.len() + self.tombstone_count
    }

    /// `true` when packed slot `slot` has **not** been tombstoned.
    /// (Out-of-range slots read as live; the bitmap is only allocated
    /// once a tombstone exists.)
    #[inline]
    pub fn is_live(&self, slot: usize) -> bool {
        match self.tombstones.get(slot >> 6) {
            Some(word) => word & (1u64 << (slot & 63)) == 0,
            None => true,
        }
    }

    /// Tombstones packed slot `slot`: the entry stays in the arrays but
    /// no visitor will emit it again. Returns `false` when the slot was
    /// already dead. Node MBRs are *not* refitted (they only
    /// over-approximate); [`PackedRTree::compact`] reclaims the slot.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= self.packed_len()`.
    pub fn tombstone(&mut self, slot: usize) -> bool {
        assert!(slot < self.keys.len(), "slot {slot} out of bounds");
        if self.tombstones.is_empty() {
            self.tombstones = vec![0u64; self.keys.len().div_ceil(64)];
        }
        let (word, bit) = (slot >> 6, 1u64 << (slot & 63));
        if self.tombstones[word] & bit != 0 {
            return false;
        }
        self.tombstones[word] |= bit;
        self.tombstone_count += 1;
        true
    }

    /// Removes one live `(key, rect)` entry through the delta layer:
    /// staged entries are swap-removed, packed entries are tombstoned
    /// in place (located by a pruned traversal on the exact rectangle,
    /// not a linear scan). Returns what happened so callers maintaining
    /// stage- or slot-indexed side structures can patch themselves, or
    /// `None` when no live entry matches.
    pub fn remove_entry(&mut self, key: &K, rect: &Rect<D>) -> Option<DeltaRemoval<D>>
    where
        K: PartialEq,
    {
        // Staging buffer first: recently added entries are the
        // likeliest to churn right back out, and unstaging is cheaper
        // than a tombstone (the slot is reclaimed immediately).
        if let Some(index) = self
            .staged_keys
            .iter()
            .zip(&self.staged_rects)
            .position(|(k, r)| k == key && r == rect)
        {
            self.staged_keys.swap_remove(index);
            self.staged_rects.swap_remove(index);
            let moved = (index < self.staged_rects.len()).then(|| self.staged_rects[index]);
            if self.staged_keys.is_empty() {
                self.staged_mbr = None;
            }
            return Some(DeltaRemoval::Unstaged { index, moved });
        }
        let slot = self.find_packed_slot(key, rect)?;
        self.tombstone(slot);
        Some(DeltaRemoval::Tombstoned { slot })
    }

    /// The first live packed slot holding exactly `(key, rect)`, found
    /// by descending only nodes whose MBR intersects `rect`.
    fn find_packed_slot(&self, key: &K, rect: &Rect<D>) -> Option<usize>
    where
        K: PartialEq,
    {
        let mut found = None;
        self.traverse_packed_while(&|rects| mask_intersecting(rects, rect), &mut |slot| {
            if self.rects[slot] == *rect && self.keys[slot] == *key {
                found = Some(slot);
                false
            } else {
                true
            }
        });
        found
    }

    /// Sets the compaction trigger: the delta layer is considered
    /// oversized once it exceeds `fraction × packed_len()` entries.
    /// `0.0` compacts on any delta (rebuild-per-flush, the pre-delta
    /// behavior); large values defer compaction indefinitely. Defaults
    /// to [`DEFAULT_DELTA_FRACTION`].
    pub fn set_delta_fraction(&mut self, fraction: f64) {
        self.delta_fraction = fraction.max(0.0);
    }

    /// The configured compaction trigger fraction.
    pub fn delta_fraction(&self) -> f64 {
        self.delta_fraction
    }

    /// `true` once the delta layer exceeds the configured fraction of
    /// the packed slots — the cue to [`PackedRTree::compact`].
    pub fn needs_compaction(&self) -> bool {
        let delta = self.delta_len();
        delta > 0 && delta as f64 > self.delta_fraction * self.keys.len() as f64
    }

    /// Merges the staging buffer and reclaims tombstoned slots with one
    /// fresh Hilbert bulk-load of the live entries. A no-op (reported
    /// as such) when the delta layer is empty.
    pub fn compact(&mut self) -> DeltaCompaction {
        let stats = DeltaCompaction {
            staged_absorbed: self.staged_keys.len(),
            tombstones_reclaimed: self.tombstone_count,
        };
        if stats.is_noop() {
            return stats;
        }
        let node_size = self.node_size;
        let fraction = self.delta_fraction;
        let entries = self.drain_live();
        *self = Self::bulk_load_with_node_size(node_size, entries);
        self.delta_fraction = fraction;
        stats
    }

    /// [`PackedRTree::compact`] gated by
    /// [`PackedRTree::needs_compaction`]; returns `None` when the delta
    /// was within budget.
    pub fn maybe_compact(&mut self) -> Option<DeltaCompaction> {
        self.needs_compaction().then(|| self.compact())
    }

    /// Moves every live entry (packed minus tombstones, plus staged)
    /// out of the tree, leaving it empty. No `Clone` is required — keys
    /// are moved. This is the redistribution primitive of sharded
    /// consumers (rebalance = drain every shard, re-split, bulk-load).
    pub fn drain_live(&mut self) -> Vec<(K, Rect<D>)> {
        let keys = std::mem::take(&mut self.keys);
        let rects = std::mem::take(&mut self.rects);
        let staged_keys = std::mem::take(&mut self.staged_keys);
        let staged_rects = std::mem::take(&mut self.staged_rects);
        let tombstones = std::mem::take(&mut self.tombstones);
        self.levels.clear();
        self.tombstone_count = 0;
        self.staged_mbr = None;
        let mut out: Vec<(K, Rect<D>)> = Vec::with_capacity(keys.len() + staged_keys.len());
        for (slot, (k, r)) in keys.into_iter().zip(rects).enumerate() {
            let live = match tombstones.get(slot >> 6) {
                Some(word) => word & (1u64 << (slot & 63)) == 0,
                None => true,
            };
            if live {
                out.push((k, r));
            }
        }
        out.extend(staged_keys.into_iter().zip(staged_rects));
        out
    }

    /// Visits every entry whose rectangle contains `point` — the hot
    /// path of every matching oracle. Iterative (explicit fixed-size
    /// stack, zero heap allocation) with branchless bitmask scans over
    /// the contiguous MBR arrays.
    pub fn for_each_containing<'a, F>(&'a self, point: &Point<D>, visit: F)
    where
        F: FnMut(&'a K, &'a Rect<D>),
    {
        self.traverse(|rects| mask_containing(rects, point), visit);
    }

    /// Visits every entry whose rectangle intersects `window`; same
    /// allocation-free traversal as
    /// [`PackedRTree::for_each_containing`].
    pub fn for_each_intersecting<'a, F>(&'a self, window: &Rect<D>, visit: F)
    where
        F: FnMut(&'a K, &'a Rect<D>),
    {
        self.traverse(|rects| mask_intersecting(rects, window), visit);
    }

    /// Like [`PackedRTree::for_each_intersecting`], but the visitor
    /// returns `false` to abort the traversal early. This is the
    /// primitive for budgeted collection — "gather up to `N` entries
    /// in this window, stop if there are more" — where the plain
    /// visitor would pay for the full result set just to discard it.
    pub fn for_each_intersecting_while<'a, F>(&'a self, window: &Rect<D>, visit: F)
    where
        F: FnMut(&'a K, &'a Rect<D>) -> bool,
    {
        self.traverse_while(|rects| mask_intersecting(rects, window), visit);
    }

    /// Iterative pruned traversal over **both tiers**. `mask_of` maps a
    /// slice of ≤ 32 rectangles to a hit bitmask; nodes with set bits
    /// are descended, live entries with set bits are emitted, and the
    /// staging buffer is then scanned with the same bitmask chunks.
    fn traverse<'a>(
        &'a self,
        mask_of: impl Fn(&[Rect<D>]) -> u32,
        mut emit: impl FnMut(&'a K, &'a Rect<D>),
    ) {
        self.traverse_while(mask_of, |k, r| {
            emit(k, r);
            true
        });
    }

    /// [`PackedRTree::traverse`] with an abortable visitor: emitting
    /// `false` unwinds the whole traversal immediately (the staging
    /// scan included).
    fn traverse_while<'a>(
        &'a self,
        mask_of: impl Fn(&[Rect<D>]) -> u32,
        mut emit: impl FnMut(&'a K, &'a Rect<D>) -> bool,
    ) {
        if self.traverse_packed_while(&mask_of, &mut |slot| {
            emit(&self.keys[slot], &self.rects[slot])
        }) {
            self.scan_staged_while(&mask_of, &mut emit);
        }
    }

    /// The packed tier of [`PackedRTree::traverse_while`], emitting
    /// live slot indexes. The explicit stack is a fixed array
    /// ([`STACK_CAPACITY`] frames bounds every legal tree), so a query
    /// performs no heap allocation at all. Returns `false` when the
    /// visitor aborted.
    fn traverse_packed_while(
        &self,
        mask_of: &impl Fn(&[Rect<D>]) -> u32,
        emit: &mut impl FnMut(usize) -> bool,
    ) -> bool {
        let Some(root) = self.levels.last() else {
            return true;
        };
        if mask_of(&root[0..1]) == 0 {
            return true;
        }
        let mut stack = [(0u32, 0u32); STACK_CAPACITY];
        let mut top = 1usize;
        stack[0] = (self.levels.len() as u32 - 1, 0);
        while top > 0 {
            top -= 1;
            let (level, node) = stack[top];
            let lo = node as usize * self.node_size;
            if level == 0 {
                let hi = (lo + self.node_size).min(self.rects.len());
                let mut mask = mask_of(&self.rects[lo..hi]);
                while mask != 0 {
                    let slot = lo + mask.trailing_zeros() as usize;
                    if self.is_live(slot) && !emit(slot) {
                        return false;
                    }
                    mask &= mask - 1;
                }
            } else {
                let below = &self.levels[level as usize - 1];
                let hi = (lo + self.node_size).min(below.len());
                let mut mask = mask_of(&below[lo..hi]);
                while mask != 0 {
                    let child = lo as u32 + mask.trailing_zeros();
                    debug_assert!(top < STACK_CAPACITY);
                    stack[top] = (level - 1, child);
                    top += 1;
                    mask &= mask - 1;
                }
            }
        }
        true
    }

    /// The delta tier of [`PackedRTree::traverse_while`]: the staging
    /// buffer scanned in ≤ 32-wide chunks with the same branchless
    /// bitmask the leaf level uses. Returns `false` when the visitor
    /// aborted.
    fn scan_staged_while<'a>(
        &'a self,
        mask_of: &impl Fn(&[Rect<D>]) -> u32,
        emit: &mut impl FnMut(&'a K, &'a Rect<D>) -> bool,
    ) -> bool {
        for (chunk_idx, chunk) in self.staged_rects.chunks(MAX_NODE_SIZE).enumerate() {
            let mut mask = mask_of(chunk);
            while mask != 0 {
                let i = chunk_idx * MAX_NODE_SIZE + mask.trailing_zeros() as usize;
                if !emit(&self.staged_keys[i], &self.staged_rects[i]) {
                    return false;
                }
                mask &= mask - 1;
            }
        }
        true
    }

    /// Visits, for every probe in `points`, each entry whose rectangle
    /// contains it — in **one joint descent** of the tree instead of
    /// `points.len()` independent root-to-leaf walks.
    ///
    /// The traversal is node-major: each node MBR is loaded once and
    /// streamed against the batch's surviving probe subset (branchless
    /// filtering into reused index buffers), instead of every probe
    /// re-reading the level arrays on its own. The comparison count is
    /// identical to per-probe descents; the win is pure memory
    /// behavior, and it grows with batch size and probe locality
    /// (sorting probes along a space-filling curve first makes the
    /// surviving subsets coherent).
    ///
    /// Hits are delivered as `(probe_index, key, rect)`; probe order
    /// within a node follows the batch, but no global emission order is
    /// guaranteed. Probes are independent — duplicates are fine.
    ///
    /// # Panics
    ///
    /// Panics if `points.len() > u32::MAX` (probe indexes are `u32`,
    /// matching the tree's own 2^32-entry limit).
    pub fn for_each_containing_batch<'a, F>(&'a self, points: &[Point<D>], mut emit: F)
    where
        F: FnMut(u32, &'a K, &'a Rect<D>),
    {
        assert!(
            points.len() <= u32::MAX as usize,
            "batch is limited to 2^32 probes"
        );
        if let Some(root) = self.levels.last() {
            let active: Vec<u32> = (0..points.len() as u32)
                .filter(|&pi| root[0].contains_point_branchless(&points[pi as usize]))
                .collect();
            if !active.is_empty() {
                let mut pool: Vec<Vec<u32>> = Vec::new();
                self.walk_batch(
                    self.levels.len() - 1,
                    0,
                    &active,
                    points,
                    &mut pool,
                    &mut emit,
                );
            }
        }
        // Delta tier: every probe against the staging buffer (the root
        // MBR filter above does not apply — staged entries may lie
        // outside it).
        if self.staged_rects.is_empty() {
            return;
        }
        for (pi, point) in points.iter().enumerate() {
            for (chunk_idx, chunk) in self.staged_rects.chunks(MAX_NODE_SIZE).enumerate() {
                let mut mask = mask_containing(chunk, point);
                while mask != 0 {
                    let i = chunk_idx * MAX_NODE_SIZE + mask.trailing_zeros() as usize;
                    emit(pi as u32, &self.staged_keys[i], &self.staged_rects[i]);
                    mask &= mask - 1;
                }
            }
        }
    }

    /// One frame of the joint batch descent: `active` holds the probe
    /// indexes already known to lie inside node `(level, node)`'s MBR.
    fn walk_batch<'a, F>(
        &'a self,
        level: usize,
        node: usize,
        active: &[u32],
        points: &[Point<D>],
        pool: &mut Vec<Vec<u32>>,
        emit: &mut F,
    ) where
        F: FnMut(u32, &'a K, &'a Rect<D>),
    {
        let lo = node * self.node_size;
        if level == 0 {
            let hi = (lo + self.node_size).min(self.rects.len());
            let rects = &self.rects[lo..hi];
            for &pi in active {
                let mut mask = mask_containing(rects, &points[pi as usize]);
                while mask != 0 {
                    let slot = lo + mask.trailing_zeros() as usize;
                    if self.is_live(slot) {
                        emit(pi, &self.keys[slot], &self.rects[slot]);
                    }
                    mask &= mask - 1;
                }
            }
        } else {
            let below = &self.levels[level - 1];
            let hi = (lo + self.node_size).min(below.len());
            let mut subset = pool.pop().unwrap_or_default();
            for (child, mbr) in below.iter().enumerate().take(hi).skip(lo) {
                subset.clear();
                for &pi in active {
                    if mbr.contains_point_branchless(&points[pi as usize]) {
                        subset.push(pi);
                    }
                }
                if !subset.is_empty() {
                    self.walk_batch(level - 1, child, &subset, points, pool, emit);
                }
            }
            subset.clear();
            pool.push(subset);
        }
    }

    /// Keys whose rectangle contains `point`. Prefer
    /// [`PackedRTree::for_each_containing`] on hot paths; this
    /// convenience form allocates the result vector.
    pub fn search_point(&self, point: &Point<D>) -> Vec<&K> {
        let mut out = Vec::new();
        self.for_each_containing(point, |k, _| out.push(k));
        out
    }

    /// Keys whose rectangle intersects `window`.
    pub fn search_intersecting(&self, window: &Rect<D>) -> Vec<&K> {
        let mut out = Vec::new();
        self.for_each_intersecting(window, |k, _| out.push(k));
        out
    }

    /// Checks the packed-level invariants — implicit-topology level
    /// lengths, exact node MBRs at every level, array consistency —
    /// plus the delta layer's: staged arrays in step, tombstone count
    /// matching the bitmap, staged MBR covering every staged entry.
    ///
    /// # Errors
    ///
    /// Returns the first [`PackedValidationError`] found.
    pub fn validate(&self) -> Result<(), PackedValidationError> {
        if self.keys.len() != self.rects.len() {
            return Err(PackedValidationError::Inconsistent);
        }
        if self.staged_keys.len() != self.staged_rects.len() {
            return Err(PackedValidationError::DeltaInconsistent);
        }
        let popcount: usize = self
            .tombstones
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum();
        if popcount != self.tombstone_count {
            return Err(PackedValidationError::DeltaInconsistent);
        }
        if !self.tombstones.is_empty() && self.tombstones.len() != self.keys.len().div_ceil(64) {
            return Err(PackedValidationError::DeltaInconsistent);
        }
        match &self.staged_mbr {
            None if !self.staged_rects.is_empty() => {
                return Err(PackedValidationError::DeltaInconsistent);
            }
            Some(mbr) if !self.staged_rects.iter().all(|r| mbr.contains_rect(r)) => {
                return Err(PackedValidationError::DeltaInconsistent);
            }
            _ => {}
        }
        if self.keys.is_empty() {
            return if self.levels.is_empty() {
                Ok(())
            } else {
                Err(PackedValidationError::Inconsistent)
            };
        }
        if self.levels.is_empty() || self.levels.last().map(Vec::len) != Some(1) {
            return Err(PackedValidationError::Inconsistent);
        }
        let mut below_len = self.rects.len();
        for (level, nodes) in self.levels.iter().enumerate() {
            let expected = below_len.div_ceil(self.node_size);
            if nodes.len() != expected {
                return Err(PackedValidationError::WrongLevelLength {
                    level,
                    found: nodes.len(),
                    expected,
                });
            }
            for (node, mbr) in nodes.iter().enumerate() {
                if self.covered_union(level, node).as_ref() != Some(mbr) {
                    return Err(PackedValidationError::WrongMbr { level, node });
                }
            }
            below_len = nodes.len();
        }
        Ok(())
    }
}

impl<K, const D: usize> SpatialIndex<K, D> for PackedRTree<K, D> {
    fn len(&self) -> usize {
        PackedRTree::len(self)
    }

    fn for_each_containing<'a, F>(&'a self, point: &Point<D>, visit: F)
    where
        F: FnMut(&'a K, &'a Rect<D>),
        K: 'a,
    {
        PackedRTree::for_each_containing(self, point, visit);
    }

    fn for_each_intersecting<'a, F>(&'a self, window: &Rect<D>, visit: F)
    where
        F: FnMut(&'a K, &'a Rect<D>),
        K: 'a,
    {
        PackedRTree::for_each_intersecting(self, window, visit);
    }

    fn for_each_containing_batch<'a, F>(&'a self, points: &[Point<D>], visit: F)
    where
        F: FnMut(u32, &'a K, &'a Rect<D>),
        K: 'a,
    {
        PackedRTree::for_each_containing_batch(self, points, visit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize) -> Vec<(usize, Rect<2>)> {
        (0..n)
            .map(|i| {
                let x = (i % 32) as f64 * 3.0;
                let y = (i / 32) as f64 * 3.0;
                (i, Rect::new([x, y], [x + 2.0, y + 2.0]))
            })
            .collect()
    }

    #[test]
    fn empty_tree() {
        let tree: PackedRTree<u32, 2> = PackedRTree::bulk_load(Vec::new());
        assert!(tree.is_empty());
        assert_eq!(tree.height(), 1);
        assert_eq!(tree.mbr(), None);
        assert!(tree.search_point(&Point::new([0.0, 0.0])).is_empty());
        tree.validate().unwrap();
    }

    #[test]
    fn build_sizes_and_completeness() {
        for n in [1usize, 2, 15, 16, 17, 256, 257, 1000] {
            let tree = PackedRTree::bulk_load(grid(n));
            assert_eq!(tree.len(), n);
            tree.validate().unwrap_or_else(|e| panic!("n={n}: {e}"));
            for (k, r) in grid(n) {
                let hits = tree.search_point(&r.center());
                assert!(hits.contains(&&k), "n={n}: entry {k} lost");
            }
        }
    }

    #[test]
    fn matches_linear_scan_on_windows() {
        let entries = grid(500);
        let tree = PackedRTree::bulk_load_with_node_size(8, entries.clone());
        for window in [
            Rect::new([0.0, 0.0], [10.0, 10.0]),
            Rect::new([40.0, 10.0], [70.0, 30.0]),
            Rect::new([500.0, 500.0], [600.0, 600.0]),
        ] {
            let mut got: Vec<usize> = tree
                .search_intersecting(&window)
                .into_iter()
                .copied()
                .collect();
            got.sort_unstable();
            let mut want: Vec<usize> = entries
                .iter()
                .filter(|(_, r)| r.intersects(&window))
                .map(|(k, _)| *k)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn update_refits_ancestors() {
        let mut tree = PackedRTree::bulk_load_with_node_size(4, grid(200));
        let slot = tree.slot_of(&77).expect("entry 77 exists");
        let moved = Rect::new([900.0, 900.0], [901.0, 901.0]);
        tree.update(slot, moved);
        tree.validate().unwrap();
        let hits = tree.search_point(&Point::new([900.5, 900.5]));
        assert_eq!(hits, vec![&77]);
        // The old location no longer reports the moved entry.
        let (_, old) = grid(200)[77];
        assert!(!tree.search_point(&old.center()).contains(&&77));
        // Shrinking also refits exactly.
        tree.update(slot, Rect::new([900.2, 900.2], [900.4, 900.4]));
        tree.validate().unwrap();
    }

    #[test]
    fn unbounded_entries_are_searchable() {
        let mut entries = grid(50);
        entries.push((999, Rect::everything()));
        entries.push((998, Rect::new([0.0, 10.0], [f64::INFINITY, 12.0])));
        let tree = PackedRTree::bulk_load(entries);
        tree.validate().unwrap();
        let hits = tree.search_point(&Point::new([1_000_000.0, 11.0]));
        let mut keys: Vec<usize> = hits.into_iter().copied().collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![998, 999]);
    }

    #[test]
    fn high_dimensional_trees_work() {
        // 9 × HILBERT_ORDER exceeds 128 bits; the curve coarsens
        // instead of panicking, and searches stay exact.
        let entries: Vec<(usize, Rect<9>)> = (0..100)
            .map(|i| {
                let o = i as f64;
                (i, Rect::new([o; 9], [o + 0.5; 9]))
            })
            .collect();
        let tree = PackedRTree::bulk_load(entries);
        tree.validate().unwrap();
        let hits = tree.search_point(&Point::new([42.25; 9]));
        assert_eq!(hits, vec![&42]);
    }

    #[test]
    fn duplicate_rects_supported() {
        let r = Rect::new([0.0, 0.0], [1.0, 1.0]);
        let tree = PackedRTree::bulk_load((0..40usize).map(|i| (i, r)).collect());
        assert_eq!(tree.search_point(&Point::new([0.5, 0.5])).len(), 40);
        tree.validate().unwrap();
    }

    #[test]
    fn validate_catches_stale_mbr() {
        let mut tree = PackedRTree::bulk_load_with_node_size(4, grid(100));
        // Corrupt a leaf-node MBR behind validate's back.
        tree.levels[0][0] = Rect::new([0.0, 0.0], [0.1, 0.1]);
        assert!(matches!(
            tree.validate(),
            Err(PackedValidationError::WrongMbr { level: 0, node: 0 })
        ));
    }

    #[test]
    fn batch_visit_equals_per_point_visits() {
        let tree = PackedRTree::bulk_load_with_node_size(8, grid(400));
        let probes: Vec<Point<2>> = (0..250)
            .map(|i| Point::new([(i % 40) as f64 * 2.3, (i / 40) as f64 * 5.1]))
            .collect();
        let mut batched: Vec<Vec<usize>> = vec![Vec::new(); probes.len()];
        tree.for_each_containing_batch(&probes, |pi, &k, _| batched[pi as usize].push(k));
        for (p, got) in probes.iter().zip(batched.iter_mut()) {
            got.sort_unstable();
            let mut want: Vec<usize> = tree.search_point(p).into_iter().copied().collect();
            want.sort_unstable();
            assert_eq!(got, &want, "probe {p:?}");
        }
        // Empty batch and empty tree are both no-ops.
        tree.for_each_containing_batch(&[], |_, _, _| unreachable!());
        let empty: PackedRTree<usize, 2> = PackedRTree::bulk_load(Vec::new());
        empty.for_each_containing_batch(&probes, |_, _, _| unreachable!());
    }

    #[test]
    fn intersecting_while_aborts_early() {
        let tree = PackedRTree::bulk_load_with_node_size(4, grid(300));
        let window = Rect::new([0.0, 0.0], [100.0, 100.0]);
        let full = tree.search_intersecting(&window).len();
        assert!(full > 10);
        let mut seen = 0usize;
        tree.for_each_intersecting_while(&window, |_, _| {
            seen += 1;
            seen < 10
        });
        assert_eq!(seen, 10, "visitor stops the traversal at the 10th hit");
        // A never-aborting while-visitor sees everything.
        let mut all = 0usize;
        tree.for_each_intersecting_while(&window, |_, _| {
            all += 1;
            true
        });
        assert_eq!(all, full);
    }

    /// Live entries of a delta-bearing tree, straight from the model's
    /// definition.
    fn live_model(tree: &PackedRTree<usize, 2>) -> Vec<(usize, Rect<2>)> {
        let mut out: Vec<(usize, Rect<2>)> = tree.entries().map(|(_, &k, &r)| (k, r)).collect();
        out.extend(
            tree.staged_keys()
                .iter()
                .zip(tree.staged_rects())
                .map(|(&k, &r)| (k, r)),
        );
        out
    }

    #[test]
    fn staged_inserts_are_searchable_before_compaction() {
        let mut tree = PackedRTree::bulk_load_with_node_size(4, grid(100));
        // Stage entries both inside and far outside the packed world.
        tree.stage_insert(500, Rect::new([10.0, 10.0], [11.0, 11.0]));
        tree.stage_insert(501, Rect::new([5000.0, 5000.0], [5001.0, 5001.0]));
        tree.validate().unwrap();
        assert_eq!(tree.len(), 102);
        assert_eq!(tree.staged_len(), 2);
        assert!(tree.search_point(&Point::new([10.5, 10.5])).contains(&&500));
        // The out-of-world staged entry is visible to every visitor.
        assert_eq!(tree.search_point(&Point::new([5000.5, 5000.5])), vec![&501]);
        assert_eq!(
            tree.search_intersecting(&Rect::new([4999.0, 4999.0], [5002.0, 5002.0])),
            vec![&501]
        );
        let probes = [Point::new([5000.5, 5000.5])];
        let mut hits = Vec::new();
        tree.for_each_containing_batch(&probes, |pi, &k, _| hits.push((pi, k)));
        assert_eq!(hits, vec![(0, 501)]);
        assert!(tree.mbr().expect("non-empty").contains_point(&probes[0]));
    }

    #[test]
    fn tombstones_hide_entries_from_every_visitor() {
        let mut tree = PackedRTree::bulk_load_with_node_size(4, grid(100));
        let slot = tree.slot_of(&42).expect("entry exists");
        let center = grid(100)[42].1.center();
        assert!(tree.tombstone(slot));
        assert!(!tree.tombstone(slot), "double tombstone reports false");
        assert!(!tree.is_live(slot));
        tree.validate().unwrap();
        assert_eq!(tree.len(), 99);
        assert!(!tree.search_point(&center).contains(&&42));
        let mut batch_hits = Vec::new();
        tree.for_each_containing_batch(&[center], |_, &k, _| batch_hits.push(k));
        assert!(!batch_hits.contains(&42));
        let window = grid(100)[42].1;
        assert!(!tree.search_intersecting(&window).contains(&&42));
        assert_eq!(tree.slot_of(&42), None, "tombstoned entries are not found");
    }

    #[test]
    fn remove_entry_unstages_and_tombstones() {
        let mut tree = PackedRTree::bulk_load_with_node_size(4, grid(50));
        let extra = Rect::new([200.0, 200.0], [201.0, 201.0]);
        tree.stage_insert(900, extra);
        tree.stage_insert(901, Rect::new([210.0, 210.0], [211.0, 211.0]));
        // Unstage: the first staged entry goes, the second moves into
        // its index.
        match tree.remove_entry(&900, &extra) {
            Some(DeltaRemoval::Unstaged { index: 0, moved }) => {
                assert_eq!(moved, Some(Rect::new([210.0, 210.0], [211.0, 211.0])));
            }
            other => panic!("unexpected removal outcome {other:?}"),
        }
        // Tombstone: a packed entry.
        let (key, rect) = grid(50)[7];
        match tree.remove_entry(&key, &rect) {
            Some(DeltaRemoval::Tombstoned { slot }) => assert!(!tree.is_live(slot)),
            other => panic!("unexpected removal outcome {other:?}"),
        }
        // Gone entries are not found again.
        assert_eq!(tree.remove_entry(&900, &extra), None);
        assert_eq!(tree.remove_entry(&key, &rect), None);
        tree.validate().unwrap();
        assert_eq!(tree.len(), 50);
    }

    #[test]
    fn compact_folds_the_delta_layer_in() {
        let mut tree = PackedRTree::bulk_load_with_node_size(4, grid(60));
        for i in 0..10usize {
            let o = 300.0 + i as f64 * 5.0;
            tree.stage_insert(700 + i, Rect::new([o, o], [o + 2.0, o + 2.0]));
        }
        for (key, rect) in grid(60).iter().take(5) {
            assert!(tree.remove_entry(key, rect).is_some());
        }
        let before = live_model(&tree);
        let stats = tree.compact();
        assert_eq!(stats.staged_absorbed, 10);
        assert_eq!(stats.tombstones_reclaimed, 5);
        assert_eq!(tree.delta_len(), 0);
        assert_eq!(tree.len(), 65);
        tree.validate().unwrap();
        // Identical result sets after the merge.
        let mut after = live_model(&tree);
        let mut want = before;
        after.sort_unstable_by_key(|&(k, _)| k);
        want.sort_unstable_by_key(|&(k, _)| k);
        assert_eq!(after, want);
        // Compacting a clean tree is a no-op.
        assert!(tree.compact().is_noop());
    }

    #[test]
    fn compaction_threshold_follows_the_fraction() {
        let mut tree = PackedRTree::bulk_load(grid(100));
        tree.set_delta_fraction(0.1);
        // 10 staged over 100 packed is exactly the fraction — not yet
        // over it.
        for i in 0..10usize {
            tree.stage_insert(800 + i, Rect::new([0.0, 0.0], [1.0, 1.0]));
        }
        assert!(!tree.needs_compaction());
        tree.stage_insert(899, Rect::new([0.0, 0.0], [1.0, 1.0]));
        assert!(tree.needs_compaction());
        assert!(tree.maybe_compact().is_some());
        assert!(tree.maybe_compact().is_none());
        // Fraction 0: any delta triggers (the rebuild-per-flush mode).
        tree.set_delta_fraction(0.0);
        assert!(tree.tombstone(0));
        assert!(tree.needs_compaction());
    }

    #[test]
    fn empty_packed_tier_with_staged_entries_works() {
        let mut tree: PackedRTree<usize, 2> = PackedRTree::bulk_load(Vec::new());
        tree.stage_insert(1, Rect::new([0.0, 0.0], [10.0, 10.0]));
        tree.validate().unwrap();
        assert_eq!(tree.len(), 1);
        assert!(!tree.is_empty());
        assert_eq!(tree.search_point(&Point::new([5.0, 5.0])), vec![&1]);
        let mut batch_hits = Vec::new();
        tree.for_each_containing_batch(&[Point::new([5.0, 5.0])], |pi, &k, _| {
            batch_hits.push((pi, k));
        });
        assert_eq!(batch_hits, vec![(0, 1)]);
        assert_eq!(tree.mbr(), Some(Rect::new([0.0, 0.0], [10.0, 10.0])));
        tree.compact();
        assert_eq!(tree.packed_len(), 1);
        tree.validate().unwrap();
    }

    #[test]
    fn drain_live_moves_everything_out() {
        let mut tree = PackedRTree::bulk_load(grid(30));
        tree.stage_insert(500, Rect::new([1.0, 1.0], [2.0, 2.0]));
        let (key, rect) = grid(30)[3];
        assert!(tree.remove_entry(&key, &rect).is_some());
        let drained = tree.drain_live();
        assert_eq!(drained.len(), 30);
        assert!(drained.iter().any(|&(k, _)| k == 500));
        assert!(!drained.iter().any(|&(k, _)| k == 3));
        assert!(tree.is_empty());
        assert_eq!(tree.delta_len(), 0);
        tree.validate().unwrap();
    }

    #[test]
    fn abortable_walk_covers_the_staged_tier() {
        let mut tree = PackedRTree::bulk_load_with_node_size(4, grid(40));
        tree.stage_insert(600, Rect::new([0.0, 0.0], [1.0, 1.0]));
        let window = Rect::new([0.0, 0.0], [200.0, 200.0]);
        let mut seen_staged = false;
        let mut count = 0usize;
        tree.for_each_intersecting_while(&window, |&k, _| {
            seen_staged |= k == 600;
            count += 1;
            true
        });
        assert!(seen_staged, "staged entry visited by the abortable walk");
        assert_eq!(count, 41);
        // Aborting inside the staged scan stops immediately.
        let mut after_staged = 0usize;
        tree.for_each_intersecting_while(&window, |&k, _| {
            if k == 600 {
                return false;
            }
            after_staged += 1;
            true
        });
        assert!(after_staged <= 40);
    }

    #[test]
    fn visitor_counts_without_allocating_results() {
        let tree = PackedRTree::bulk_load(grid(300));
        let mut count = 0usize;
        tree.for_each_containing(&Point::new([1.0, 1.0]), |_, _| count += 1);
        assert_eq!(count, tree.search_point(&Point::new([1.0, 1.0])).len());
    }
}
