//! The packed, cache-friendly R-tree backend.
//!
//! [`PackedRTree`] stores the whole index in contiguous `Vec`-backed
//! level arrays — no per-node boxes, no pointer chasing. It is built
//! bottom-up in one pass: entries are sorted by the Hilbert index of
//! their center ([`drtree_spatial::hilbert`]), tiled into nodes of
//! `node_size` consecutive entries, and parent levels pack the level
//! below the same way until a single root remains (the flatbush /
//! geo-index construction).
//!
//! Topology is implicit: node `j` of level `l` always covers children
//! `j·B .. min((j+1)·B, len(l−1))` of the level below, so the only
//! stored data are the node MBRs themselves. Searches are iterative
//! (explicit stack, no recursion), and the visitor API delivers hits
//! through a callback so the hot path allocates nothing per result.
//!
//! The tree is static in *shape* but serves live workloads through
//! [`PackedRTree::update`], which rewrites one entry's rectangle and
//! incrementally refits the `O(log N)` ancestor MBRs above it.
//!
//! # The two-tier search: packed levels + delta layer
//!
//! Growing or shrinking the entry set does **not** require an
//! immediate rebuild. The tree carries a bounded *delta layer*:
//!
//! * **staging buffer** — [`PackedRTree::stage_insert`] appends new
//!   entries to a small unsorted side array. Every visitor
//!   ([`PackedRTree::for_each_containing`], the batched descent, the
//!   abortable window walk) searches the packed levels *and* then
//!   scans the staging buffer with the same branchless ≤32-wide
//!   bitmask chunks the leaf level uses, so staged entries are visible
//!   immediately and the scan stays cheap while the buffer is small.
//! * **tombstones** — [`PackedRTree::tombstone`] marks a packed slot
//!   dead in a bitmap ([`PackedRTree::is_live`]); traversals skip dead
//!   slots at emission time. Node MBRs are left untouched (they only
//!   over-approximate, which costs pruning quality, never
//!   correctness).
//!
//! [`PackedRTree::compact`] folds both back into a fresh Hilbert
//! bulk-load; [`PackedRTree::needs_compaction`] says when the delta
//! has outgrown the configured fraction of the packed slots
//! ([`PackedRTree::set_delta_fraction`]), so a churning consumer (the
//! pub/sub broker's subscription oracle) pays one `O(N log N)` merge
//! per *delta-fraction* worth of mutations instead of one full rebuild
//! per mutation batch.
//!
//! # Concurrent compaction: frozen snapshots
//!
//! The merge itself need not stall the serving path either. The packed
//! tier lives behind an [`Arc`]-shared immutable core, so
//! [`PackedRTree::freeze`] can hand a worker a [`FrozenShard`] — the
//! shared core plus a copy of the delta — in `O(delta)` time, while
//! the live tree keeps answering exact queries and absorbing new
//! mutations into a *second-generation* delta overlaid on the frozen
//! state. [`FrozenShard::merge`] performs the bulk-load off-path
//! (e.g. on a [`crate::parallel::Job`]), and
//! [`PackedRTree::install`] swaps the merged core in, re-applies the
//! removals that landed mid-compaction, and carries the
//! second-generation delta forward — the only on-path work is that
//! `O(mutations-during-merge)` fix-up.

use std::sync::{Arc, OnceLock};

use drtree_spatial::hilbert::GridMapper;
use drtree_spatial::{Point, Rect};

use crate::bytes::{self, AlignedBytes, QRect};
use crate::index::{SnapshotKey, SpatialIndex};
use crate::validate::SnapshotError;

/// Default node capacity; 16 balances depth against per-node scan cost
/// (the flatbush default).
pub const DEFAULT_NODE_SIZE: usize = 16;

/// Hard cap on node capacity: per-node hit bitmasks live in one `u32`
/// word, and the fixed traversal stack ([`STACK_CAPACITY`]) must cover
/// `(node_size − 1) · (height − 1) + 1` frames for any 2^32-entry tree.
const MAX_NODE_SIZE: usize = 32;

/// Worst-case traversal stack depth: `node_size = 32` gives height ≤ 7
/// at 2^32 entries, so `31 · 6 + 1 = 187` frames bound every legal
/// tree; 256 leaves margin.
const STACK_CAPACITY: usize = 256;

/// Default delta-layer budget: compact when staged entries plus
/// tombstones exceed this fraction of the packed slots. A quarter
/// keeps the staging scan a small constant of the packed search while
/// amortizing one `O(N log N)` merge over `N/4` mutations.
pub const DEFAULT_DELTA_FRACTION: f64 = 0.25;

/// The Hilbert-sorted permutation of `entries` (indexes into it),
/// plus — for `D ≤ 2`, where a curve key fits 32 bits — the keys in
/// slot order (empty otherwise), which the core retains to serve
/// sorted-splice merges.
///
/// The key/index pair is packed into one scalar wherever it fits —
/// `u64` for `D ≤ 2`, `u128` for `D ≤ 6` — so the dominant sort moves
/// machine words instead of tuples; wider dimensions fall back to
/// tuple sorting. All variants order by (curve key, insertion index),
/// and the caller applies the permutation once so every per-entry
/// array lives in slot order.
fn curve_order<K, const D: usize>(
    mapper: &GridMapper<D>,
    entries: &[(K, Rect<D>)],
) -> (Vec<u32>, Vec<u32>) {
    if D <= 2 {
        let mut tagged: Vec<u64> = entries
            .iter()
            .enumerate()
            .map(|(i, (_, r))| ((mapper.key(r) as u64) << 32) | i as u64)
            .collect();
        tagged.sort_unstable();
        let keys = tagged.iter().map(|&t| (t >> 32) as u32).collect();
        (tagged.into_iter().map(|t| t as u32).collect(), keys)
    } else if D <= 6 {
        let mut tagged: Vec<u128> = entries
            .iter()
            .enumerate()
            .map(|(i, (_, r))| (mapper.key(r) << 32) | i as u128)
            .collect();
        tagged.sort_unstable();
        (tagged.into_iter().map(|t| t as u32).collect(), Vec::new())
    } else {
        let mut tagged: Vec<(u128, u32)> = entries
            .iter()
            .enumerate()
            .map(|(i, (_, r))| (mapper.key(r), i as u32))
            .collect();
        tagged.sort_unstable();
        (tagged.into_iter().map(|(_, i)| i).collect(), Vec::new())
    }
}

/// `true` when bit `i` is set in the bitmap `words`. Out-of-range bits
/// read as unset — the delta-layer bitmaps (tombstones, staged-dead)
/// are lazily allocated and start empty, so "no word" means "no bit".
#[inline]
fn bit_set(words: &[u64], i: usize) -> bool {
    words
        .get(i >> 6)
        .is_some_and(|word| word & (1u64 << (i & 63)) != 0)
}

/// Bitmask of rectangles in `rects` (≤ 32 of them) containing `point`.
///
/// Branchless on purpose: every test runs to completion with bitwise
/// `&`, so the loop vectorizes over the contiguous MBR array and pays
/// no branch mispredictions — the payoff of the flat layout.
#[inline]
fn mask_containing<const D: usize>(rects: &[Rect<D>], point: &Point<D>) -> u32 {
    debug_assert!(rects.len() <= MAX_NODE_SIZE);
    let mut mask = 0u32;
    for (i, r) in rects.iter().enumerate() {
        let mut hit = true;
        for d in 0..D {
            let c = point.coord(d);
            hit &= (r.lo(d) <= c) & (c <= r.hi(d));
        }
        mask |= u32::from(hit) << i;
    }
    mask
}

/// [`mask_containing`] over quantized node MBRs. The f32 bounds widen
/// exactly to f64, so the comparisons run in f64 like the exact path;
/// quantization only ever rounds outward, keeping the mask
/// conservative.
#[inline]
fn mask_containing_q<const D: usize>(rects: &[QRect<D>], point: &Point<D>) -> u32 {
    debug_assert!(rects.len() <= MAX_NODE_SIZE);
    let mut mask = 0u32;
    for (i, r) in rects.iter().enumerate() {
        mask |= u32::from(r.contains_point_branchless(point)) << i;
    }
    mask
}

/// Bitmask of rectangles in `rects` (≤ 32 of them) intersecting
/// `window`; branchless like [`mask_containing`].
#[inline]
fn mask_intersecting<const D: usize>(rects: &[Rect<D>], window: &Rect<D>) -> u32 {
    debug_assert!(rects.len() <= MAX_NODE_SIZE);
    let mut mask = 0u32;
    for (i, r) in rects.iter().enumerate() {
        let mut hit = true;
        for d in 0..D {
            hit &= (r.lo(d) <= window.hi(d)) & (window.lo(d) <= r.hi(d));
        }
        mask |= u32::from(hit) << i;
    }
    mask
}

/// [`mask_intersecting`] over quantized node MBRs.
#[inline]
fn mask_intersecting_q<const D: usize>(rects: &[QRect<D>], window: &Rect<D>) -> u32 {
    debug_assert!(rects.len() <= MAX_NODE_SIZE);
    let mut mask = 0u32;
    for (i, r) in rects.iter().enumerate() {
        let mut hit = true;
        for d in 0..D {
            hit &= (r.lo(d) <= window.hi(d)) & (window.lo(d) <= r.hi(d));
        }
        mask |= u32::from(hit) << i;
    }
    mask
}

/// A node-mask predicate: maps a block of ≤ 32 stored node MBRs —
/// exact *or* quantized — to a hit bitmask. One static trait instead
/// of a closure, so the single traversal kernel serves both stored
/// layouts with no dynamic dispatch and no duplicated walkers.
trait MaskOf<const D: usize> {
    fn mask(&self, rects: &[Rect<D>]) -> u32;
    fn mask_q(&self, rects: &[QRect<D>]) -> u32;
}

/// The point-containment predicate of [`PackedRTree::for_each_containing`].
struct ContainsPoint<'a, const D: usize>(&'a Point<D>);

impl<const D: usize> MaskOf<D> for ContainsPoint<'_, D> {
    #[inline]
    fn mask(&self, rects: &[Rect<D>]) -> u32 {
        mask_containing(rects, self.0)
    }
    #[inline]
    fn mask_q(&self, rects: &[QRect<D>]) -> u32 {
        mask_containing_q(rects, self.0)
    }
}

/// The window predicate of [`PackedRTree::for_each_intersecting`].
struct IntersectsRect<'a, const D: usize>(&'a Rect<D>);

impl<const D: usize> MaskOf<D> for IntersectsRect<'_, D> {
    #[inline]
    fn mask(&self, rects: &[Rect<D>]) -> u32 {
        mask_intersecting(rects, self.0)
    }
    #[inline]
    fn mask_q(&self, rects: &[QRect<D>]) -> u32 {
        mask_intersecting_q(rects, self.0)
    }
}

/// Iterative pruned descent over a packed core, emitting live slot
/// indexes — the traversal kernel shared by the owning
/// [`PackedRTree`] and read-only [`FrozenShard`] snapshots (which hold
/// the same `Arc`-shared core plus their own tombstone copy). The
/// explicit stack is a fixed array ([`STACK_CAPACITY`] frames bounds
/// every legal tree), so a query performs no heap allocation at all.
/// Serves owned and flat-buffer cores alike: interior masks run over
/// whichever representation is stored ([`LevelSlice`]), while leaf
/// emission always tests the exact f64 entry rectangles — quantized
/// interior MBRs cost pruning quality at worst, never exactness.
/// Returns `false` when the visitor aborted.
fn traverse_core_while<K, const D: usize>(
    core: &PackedCore<K, D>,
    tombstones: &[u64],
    mask_of: &impl MaskOf<D>,
    emit: &mut impl FnMut(usize) -> bool,
) -> bool {
    let num_levels = core.num_levels();
    if num_levels == 0 {
        return true;
    }
    if core.level_group(num_levels - 1, 0).mask(mask_of) == 0 {
        return true;
    }
    let node_size = core.node_size;
    let entry_rects = core.rects();
    let mut stack = [(0u32, 0u32); STACK_CAPACITY];
    let mut top = 1usize;
    stack[0] = (num_levels as u32 - 1, 0);
    while top > 0 {
        top -= 1;
        let (level, node) = stack[top];
        let lo = node as usize * node_size;
        if level == 0 {
            let hi = (lo + node_size).min(entry_rects.len());
            let mut mask = mask_of.mask(&entry_rects[lo..hi]);
            while mask != 0 {
                let slot = lo + mask.trailing_zeros() as usize;
                if !bit_set(tombstones, slot) && !emit(slot) {
                    return false;
                }
                mask &= mask - 1;
            }
        } else {
            let mut mask = core
                .level_group(level as usize - 1, node as usize)
                .mask(mask_of);
            while mask != 0 {
                let child = lo as u32 + mask.trailing_zeros();
                debug_assert!(top < STACK_CAPACITY);
                stack[top] = (level - 1, child);
                top += 1;
                mask &= mask - 1;
            }
        }
    }
    true
}

/// A packed R-tree: all MBRs in flat per-level arrays, Hilbert
/// bulk-loaded, with iterative allocation-free searches.
///
/// `K` is the caller's key type; duplicates are permitted. Entry order
/// after construction follows the Hilbert curve, and every entry is
/// addressed by its *slot* (index in that order) for `O(log N)`
/// in-place updates.
///
/// # Example
///
/// ```
/// use drtree_rtree::{PackedRTree, SpatialIndex};
/// use drtree_spatial::{Point, Rect};
///
/// let entries: Vec<(u32, Rect<2>)> = (0..100)
///     .map(|i| {
///         let x = f64::from(i % 10) * 10.0;
///         let y = f64::from(i / 10) * 10.0;
///         (i, Rect::new([x, y], [x + 5.0, y + 5.0]))
///     })
///     .collect();
/// let tree = PackedRTree::bulk_load(entries);
/// assert_eq!(tree.len(), 100);
/// let hits = tree.search_point(&Point::new([2.0, 2.0]));
/// assert_eq!(hits, vec![&0]);
/// tree.validate()?;
/// # Ok::<(), drtree_rtree::PackedValidationError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PackedRTree<K, const D: usize> {
    /// The immutable packed tier, shared by `Arc` with any outstanding
    /// [`FrozenShard`] compaction snapshot. Cloning the tree (or
    /// freezing it) is `O(1)` on this tier; the rare mutating paths
    /// ([`PackedRTree::update`], [`PackedRTree::drain_live`]) go
    /// through [`Arc::make_mut`] and stay in-place whenever no
    /// snapshot is outstanding.
    core: Arc<PackedCore<K, D>>,
    /// Delta-layer staging buffer: keys of entries inserted since the
    /// last bulk load / compaction, parallel to `staged_rects`.
    staged_keys: Vec<K>,
    /// Staged rectangles — the contiguous array the staging-scan
    /// bitmask chunks run over.
    staged_rects: Vec<Rect<D>>,
    /// Tombstone bitmap over packed slots (one bit per slot, empty
    /// until the first tombstone); set bits are dead entries skipped at
    /// emission time.
    tombstones: Vec<u64>,
    /// Number of set bits in `tombstones`.
    tombstone_count: usize,
    /// Union of every rectangle ever staged since the last compaction
    /// (an over-approximation after staged removals); folded into
    /// [`PackedRTree::mbr`] so delta entries are never pruned away.
    staged_mbr: Option<Rect<D>>,
    /// Compaction trigger: see [`PackedRTree::needs_compaction`].
    delta_fraction: f64,
    /// `Some` while a [`PackedRTree::freeze`] snapshot is outstanding:
    /// the bookkeeping [`PackedRTree::install`] needs to reconcile the
    /// merged core with mutations that landed mid-compaction.
    epoch: Option<CompactionEpoch>,
    /// TTL lease records, identity-keyed by `(key, rect)`. Owners
    /// drive expiry via [`PackedRTree::pop_expired_lease`]; records
    /// whose entry was removed out-of-band are swept at the next
    /// compaction. In-memory only — snapshots do not serialize leases.
    leases: Vec<LeaseRecord<K, D>>,
}

/// One TTL lease over an entry, identity-keyed by `(key, rect)` so a
/// lease follows the entry through [`PackedRTree::update_entry`]
/// moves but dies with the entry it covers.
#[derive(Debug, Clone)]
struct LeaseRecord<K, const D: usize> {
    key: K,
    rect: Rect<D>,
    deadline: u64,
}

/// The immutable packed tier: slot-ordered entry arrays plus the
/// implicit-topology level MBRs. Shared by [`Arc`] between a live
/// [`PackedRTree`] and its frozen compaction snapshots, so freezing is
/// a reference-count bump, not a copy.
///
/// The columns live in one of two representations ([`Cols`]): native
/// `Vec`s (what bulk loads build), or typed views into one flat,
/// versioned, 64-byte-aligned snapshot buffer ([`FlatCols`]) — the
/// zero-copy restore path, serving queries directly off the loaded
/// bytes with no per-node deserialization.
#[derive(Debug, Clone)]
struct PackedCore<K, const D: usize> {
    node_size: usize,
    /// The world rectangle the build's [`GridMapper`] quantized
    /// against — what [`FrozenShard::merge`] compares to decide
    /// whether the sorted-splice fast path applies.
    world: Option<Rect<D>>,
    /// The column storage, owned or flat-buffer-backed.
    cols: Cols<K, D>,
}

/// The two storage modes of a [`PackedCore`]'s columns.
#[derive(Debug, Clone)]
enum Cols<K, const D: usize> {
    /// Native `Vec`-backed columns — what bulk loads construct and
    /// what every mutating path operates on ([`PackedCore::make_owned`]
    /// converts on demand).
    Owned {
        /// Entry keys in slot (Hilbert) order, parallel to `rects`: a
        /// hit at `slot` reads `keys[slot]` directly, and because
        /// search results come out as runs of nearby slots, those
        /// reads stay on the same cache lines instead of bouncing
        /// through a permutation array.
        keys: Vec<K>,
        /// Entry rectangles in slot (Hilbert) order — the contiguous
        /// array the leaf-level mask scans run over.
        rects: Vec<Rect<D>>,
        /// Per-slot Hilbert curve keys, parallel to `rects`, kept for
        /// `D ≤ 2` (where a key fits 32 bits; empty otherwise). They
        /// make a compaction merge an `O(N + S log S)` sorted splice
        /// instead of an `O(N log N)` re-sort. Key *quality* (not
        /// correctness — searches never depend on entry order)
        /// degrades with [`PackedRTree::update`] drift, exactly like
        /// the node MBRs do.
        curve_keys: Vec<u32>,
        /// `levels[0]` holds the leaf-node MBRs, each covering
        /// `node_size` consecutive entries; each further level packs
        /// the one below; the last level is the root (length 1).
        /// Empty iff the packed tier is empty.
        levels: Vec<Vec<Rect<D>>>,
    },
    /// Columns served directly out of a loaded snapshot buffer.
    Flat(FlatCols<K, D>),
}

impl<K, const D: usize> Cols<K, D> {
    fn empty_owned() -> Self {
        Cols::Owned {
            keys: Vec::new(),
            rects: Vec::new(),
            curve_keys: Vec::new(),
            levels: Vec::new(),
        }
    }
}

/// Byte-range bookkeeping of one level inside a flat snapshot buffer.
#[derive(Debug, Clone, Copy)]
struct FlatLevel {
    /// Absolute byte offset of the level's MBR array (64-byte-aligned).
    off: usize,
    /// Logical node count (what the implicit topology addresses).
    nodes: usize,
    /// Physical MBR slots stored — `nodes` plus aligned-fanout padding
    /// sentinels, when the `ALIGNED_FANOUT` layout flag is set.
    phys: usize,
    /// Physical slots per parent's child block: `node_size` normally,
    /// rounded up so each block spans whole cache lines under
    /// aligned fanout. Logical node `c` lives in physical slot
    /// `(c / node_size) · group + c % node_size`.
    group: usize,
}

/// Columns backed by one shared, immutable, checksummed snapshot
/// buffer — the zero-copy restore representation. All spans are
/// absolute `(offset, byte_len)` ranges into `buf`, validated (bounds,
/// alignment, structural consistency) once at load, so accessors can
/// cast without re-checking.
struct FlatCols<K, const D: usize> {
    /// The snapshot buffer; one oracle-level buffer can back many
    /// shard cores, so restores share a single allocation.
    buf: Arc<AlignedBytes>,
    num_entries: usize,
    rects: (usize, usize),
    raw_keys: (usize, usize),
    curve_keys: (usize, usize),
    levels: Vec<FlatLevel>,
    /// Interior node MBRs are stored as outward-rounded [`QRect`]s.
    quantized: bool,
    /// Stored checksum over the bulk sections (entry rects, raw keys,
    /// curve keys), verified on demand by
    /// [`PackedRTree::verify_snapshot`] — loading verifies the header
    /// and the small structural sections eagerly and defers this
    /// multi-megabyte scan, which is what makes restore a
    /// memory-bandwidth-free constant instead of a full-buffer pass.
    bulk_checksum: u64,
    /// Typed keys, materialized from `raw_keys` on first access — the
    /// one column queries need that cannot be served as a byte view
    /// for arbitrary `K`. (`K = u64` still skips any copy until a
    /// query actually emits.)
    keys: OnceLock<Vec<K>>,
    /// The wire-to-key converter the buffer was loaded with.
    from_raw: Arc<dyn Fn(u64) -> K + Send + Sync>,
}

impl<K, const D: usize> Clone for FlatCols<K, D>
where
    K: Clone,
{
    fn clone(&self) -> Self {
        Self {
            buf: Arc::clone(&self.buf),
            num_entries: self.num_entries,
            rects: self.rects,
            raw_keys: self.raw_keys,
            curve_keys: self.curve_keys,
            levels: self.levels.clone(),
            quantized: self.quantized,
            bulk_checksum: self.bulk_checksum,
            keys: self.keys.clone(),
            from_raw: Arc::clone(&self.from_raw),
        }
    }
}

impl<K, const D: usize> std::fmt::Debug for FlatCols<K, D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlatCols")
            .field("num_entries", &self.num_entries)
            .field("rects", &self.rects)
            .field("raw_keys", &self.raw_keys)
            .field("curve_keys", &self.curve_keys)
            .field("levels", &self.levels)
            .field("quantized", &self.quantized)
            .field("bulk_checksum", &self.bulk_checksum)
            .finish_non_exhaustive()
    }
}

impl<K, const D: usize> FlatCols<K, D> {
    fn span(&self, (off, len): (usize, usize)) -> &[u8] {
        &self.buf.as_slice()[off..off + len]
    }

    fn rects(&self) -> &[Rect<D>] {
        bytes::cast_slice(self.span(self.rects)).expect("rect section verified at load")
    }

    fn raw_keys(&self) -> &[u64] {
        bytes::cast_slice(self.span(self.raw_keys)).expect("key section verified at load")
    }

    fn raw_key_bytes(&self) -> &[u8] {
        self.span(self.raw_keys)
    }

    fn curve_keys(&self) -> &[u32] {
        bytes::cast_slice(self.span(self.curve_keys)).expect("curve section verified at load")
    }

    fn keys(&self) -> &[K] {
        self.keys.get_or_init(|| {
            self.raw_keys()
                .iter()
                .map(|&raw| (self.from_raw)(raw))
                .collect()
        })
    }

    fn rect_bytes(&self) -> usize {
        if self.quantized {
            std::mem::size_of::<QRect<D>>()
        } else {
            std::mem::size_of::<Rect<D>>()
        }
    }

    /// `count` stored MBRs of `level` starting at physical slot
    /// `phys_lo` (the caller guarantees the range stays inside one
    /// parent's block, so it is physically contiguous).
    fn level_slice(&self, level: usize, phys_lo: usize, count: usize) -> LevelSlice<'_, D> {
        let fl = &self.levels[level];
        debug_assert!(phys_lo + count <= fl.phys);
        let rb = self.rect_bytes();
        let raw = &self.buf.as_slice()[fl.off + phys_lo * rb..fl.off + (phys_lo + count) * rb];
        if self.quantized {
            LevelSlice::Quant(bytes::cast_slice(raw).expect("level section verified at load"))
        } else {
            LevelSlice::Exact(bytes::cast_slice(raw).expect("level section verified at load"))
        }
    }

    /// Recomputes the bulk-section checksum and compares it to the
    /// stored one — the deferred half of load-time verification.
    fn verify_bulk(&self) -> Result<(), SnapshotError> {
        let found = combine_checksums(
            [self.rects, self.raw_keys, self.curve_keys]
                .into_iter()
                .map(|span| bytes::checksum(self.span(span))),
        );
        if found == self.bulk_checksum {
            Ok(())
        } else {
            Err(SnapshotError::ChecksumMismatch)
        }
    }
}

/// A block of stored node MBRs, in whichever representation the core
/// holds — what [`PackedCore::level_group`] hands the traversal.
enum LevelSlice<'a, const D: usize> {
    Exact(&'a [Rect<D>]),
    Quant(&'a [QRect<D>]),
}

impl<const D: usize> LevelSlice<'_, D> {
    fn len(&self) -> usize {
        match self {
            LevelSlice::Exact(rects) => rects.len(),
            LevelSlice::Quant(rects) => rects.len(),
        }
    }

    fn mask(&self, mask_of: &impl MaskOf<D>) -> u32 {
        match self {
            LevelSlice::Exact(rects) => mask_of.mask(rects),
            LevelSlice::Quant(rects) => mask_of.mask_q(rects),
        }
    }

    fn contains_point(&self, i: usize, point: &Point<D>) -> bool {
        match self {
            LevelSlice::Exact(rects) => rects[i].contains_point_branchless(point),
            LevelSlice::Quant(rects) => rects[i].contains_point_branchless(point),
        }
    }

    /// The union of the block in f64 — exact for exact storage; for
    /// quantized storage the widened union (widening is exact, so this
    /// equals the f32-domain union).
    fn union_widened(&self) -> Option<Rect<D>> {
        match self {
            LevelSlice::Exact(rects) => Rect::union_all(rects.iter()),
            LevelSlice::Quant(rects) => rects.iter().map(QRect::widen).reduce(|a, b| a.union(&b)),
        }
    }
}

/// Packs `rects` bottom-up into implicit-topology level MBR arrays
/// until a single root remains — the construction tail shared by the
/// full Hilbert bulk-load and the sorted-splice merge.
fn pack_levels<const D: usize>(rects: &[Rect<D>], node_size: usize) -> Vec<Vec<Rect<D>>> {
    let mut levels: Vec<Vec<Rect<D>>> = Vec::new();
    let mut below: &[Rect<D>] = rects;
    loop {
        let level: Vec<Rect<D>> = below
            .chunks(node_size)
            .map(|chunk| Rect::union_all(chunk.iter()).expect("chunks are non-empty"))
            .collect();
        let done = level.len() == 1;
        levels.push(level);
        if done {
            return levels;
        }
        below = levels.last().expect("just pushed");
    }
}

impl<K, const D: usize> PackedCore<K, D> {
    /// Number of packed entries (tombstoned or not).
    fn len(&self) -> usize {
        match &self.cols {
            Cols::Owned { rects, .. } => rects.len(),
            Cols::Flat(flat) => flat.num_entries,
        }
    }

    /// Entry keys in slot order. Flat cores materialize the typed keys
    /// from the raw `u64` column on first call (then cache them), so
    /// the cost lands on the first query after a restore, not on the
    /// restore itself.
    fn keys(&self) -> &[K] {
        match &self.cols {
            Cols::Owned { keys, .. } => keys,
            Cols::Flat(flat) => flat.keys(),
        }
    }

    /// Entry rectangles in slot order — always exact f64, whatever the
    /// interior-MBR representation.
    fn rects(&self) -> &[Rect<D>] {
        match &self.cols {
            Cols::Owned { rects, .. } => rects,
            Cols::Flat(flat) => flat.rects(),
        }
    }

    /// Per-slot Hilbert curve keys (empty when not retained).
    fn curve_keys(&self) -> &[u32] {
        match &self.cols {
            Cols::Owned { curve_keys, .. } => curve_keys,
            Cols::Flat(flat) => flat.curve_keys(),
        }
    }

    fn num_levels(&self) -> usize {
        match &self.cols {
            Cols::Owned { levels, .. } => levels.len(),
            Cols::Flat(flat) => flat.levels.len(),
        }
    }

    fn level_nodes(&self, level: usize) -> usize {
        match &self.cols {
            Cols::Owned { levels, .. } => levels[level].len(),
            Cols::Flat(flat) => flat.levels[level].nodes,
        }
    }

    /// The children block of `parent` at `level` (logical nodes
    /// `parent·B .. min((parent+1)·B, len(level))`), in stored form.
    /// Padding sentinels of an aligned-fanout layout are never part of
    /// the returned block — the count clamps to logical nodes.
    fn level_group(&self, level: usize, parent: usize) -> LevelSlice<'_, D> {
        let lo = parent * self.node_size;
        match &self.cols {
            Cols::Owned { levels, .. } => {
                let nodes = &levels[level];
                let hi = (lo + self.node_size).min(nodes.len());
                LevelSlice::Exact(&nodes[lo..hi])
            }
            Cols::Flat(flat) => {
                let fl = &flat.levels[level];
                let count = (lo + self.node_size).min(fl.nodes) - lo;
                flat.level_slice(level, parent * fl.group, count)
            }
        }
    }

    /// One node's stored MBR in f64 (quantized storage widens — the
    /// result only ever over-covers).
    fn node_mbr(&self, level: usize, node: usize) -> Rect<D> {
        match &self.cols {
            Cols::Owned { levels, .. } => levels[level][node],
            Cols::Flat(flat) => {
                let fl = &flat.levels[level];
                let phys = (node / self.node_size) * fl.group + node % self.node_size;
                match flat.level_slice(level, phys, 1) {
                    LevelSlice::Exact(rects) => rects[0],
                    LevelSlice::Quant(rects) => rects[0].widen(),
                }
            }
        }
    }

    /// The root MBR, if the packed tier is non-empty.
    fn root_mbr(&self) -> Option<Rect<D>> {
        let top = self.num_levels().checked_sub(1)?;
        Some(self.node_mbr(top, 0))
    }

    /// `true` when the interior MBRs are stored f32-quantized.
    fn is_quantized(&self) -> bool {
        matches!(&self.cols, Cols::Flat(flat) if flat.quantized)
    }

    /// Converts flat-buffer columns back into owned `Vec`s in place —
    /// the escape hatch of every mutating path. Quantized interior
    /// MBRs are re-derived *exactly* from the (always-f64) entry
    /// rectangles, so a restored-then-mutated tree is
    /// indistinguishable from a built one. No-op for owned cores.
    fn make_owned(&mut self) {
        let node_size = self.node_size;
        let Cols::Flat(flat) = &mut self.cols else {
            return;
        };
        let keys: Vec<K> = match flat.keys.take() {
            Some(keys) => keys,
            None => flat
                .raw_keys()
                .iter()
                .map(|&raw| (flat.from_raw)(raw))
                .collect(),
        };
        let rects: Vec<Rect<D>> = flat.rects().to_vec();
        let curve_keys: Vec<u32> = flat.curve_keys().to_vec();
        let levels: Vec<Vec<Rect<D>>> = if rects.is_empty() {
            Vec::new()
        } else if flat.quantized {
            pack_levels(&rects, node_size)
        } else {
            (0..flat.levels.len())
                .map(|level| {
                    let fl = flat.levels[level];
                    (0..fl.nodes)
                        .map(|node| {
                            let phys = (node / node_size) * fl.group + node % node_size;
                            match flat.level_slice(level, phys, 1) {
                                LevelSlice::Exact(rects) => rects[0],
                                LevelSlice::Quant(_) => unreachable!("exact layout"),
                            }
                        })
                        .collect()
                })
                .collect()
        };
        self.cols = Cols::Owned {
            keys,
            rects,
            curve_keys,
            levels,
        };
    }

    /// The exact union of everything node `(level, node)` covers.
    /// Owned columns only (mutating paths call
    /// [`PackedCore::make_owned`] first).
    fn covered_union(&self, level: usize, node: usize) -> Option<Rect<D>> {
        let (rects, levels) = match &self.cols {
            Cols::Owned { rects, levels, .. } => (rects, levels),
            Cols::Flat(_) => unreachable!("covered_union runs on owned columns"),
        };
        let lo = node * self.node_size;
        let below: &[Rect<D>] = if level == 0 {
            rects
        } else {
            &levels[level - 1]
        };
        let hi = ((node + 1) * self.node_size).min(below.len());
        Rect::union_all(below[lo..hi].iter())
    }
}

// ---- flat snapshot format -----------------------------------------

/// Magic tag of a serialized [`PackedCore`] ("DRTC").
const CORE_MAGIC: u32 = u32::from_le_bytes(*b"DRTC");

/// Magic tag of a serialized [`PackedRTree`] ("DRTT"): a tree header
/// wrapping a core buffer plus the staged delta and tombstone bitmap.
const TREE_MAGIC: u32 = u32::from_le_bytes(*b"DRTT");

/// The one format version this build writes and reads.
const SNAPSHOT_VERSION: u16 = 1;

/// Core header flag: interior MBRs stored as f32 [`QRect`]s.
const FLAG_QUANTIZED: u16 = 1;

/// Core header flag: per-parent child blocks padded to whole cache
/// lines ([`fanout_group`]).
const FLAG_ALIGNED_FANOUT: u16 = 1 << 1;

/// Fixed header size of both the core and the tree format, one cache
/// line each.
const HEADER_LEN: usize = 64;

/// Layout knobs of the snapshot hot path, recorded in the buffer
/// header — a reader never guesses the layout.
///
/// Both default to off, which reproduces the in-memory layout
/// byte-for-byte. They are *experiments* the bench suite compares; the
/// format carries them so the winning layout needs no format bump.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotOptions {
    /// Store interior (non-leaf) node MBRs as outward-rounded `f32`
    /// pairs: half the bytes per node, twice the MBRs per cache line
    /// in the mask descent. Conservative by construction — the f32 box
    /// always contains the f64 box — and **exactness-preserving**:
    /// entry (leaf) rectangles stay f64 and every emission tests the
    /// exact rectangle, so result sets are identical; only pruning
    /// sharpness can differ.
    pub quantize_interior: bool,
    /// Pad each parent's child block to a whole number of cache lines,
    /// so no node's mask scan straddles a line it wouldn't at offset
    /// zero. Padding slots hold unhittable sentinels and are never
    /// exposed to traversal.
    pub aligned_fanout: bool,
}

/// Byte layout of one serialized core: section spans (relative to the
/// buffer start) derived from the counts in the header — the single
/// source of truth shared by the writer and the parser, so they cannot
/// drift apart.
struct CoreLayout {
    level_table: (usize, usize),
    world: (usize, usize),
    rects: (usize, usize),
    keys: (usize, usize),
    curve_keys: (usize, usize),
    levels: Vec<FlatLevel>,
    /// Total buffer length (64-byte multiple, so tree/oracle wrappers
    /// can embed cores back-to-back at aligned offsets).
    total: usize,
}

/// Smallest child-block stride `≥ node_size` whose byte size is a
/// whole number of cache lines.
fn fanout_group(node_size: usize, rect_bytes: usize) -> usize {
    if rect_bytes == 0 {
        return node_size;
    }
    let mut group = node_size;
    while !(group * rect_bytes).is_multiple_of(bytes::SECTION_ALIGN) {
        group += 1;
    }
    group
}

/// Computes every section span of a core with the given shape.
/// `level_nodes` is the logical node count per level, bottom-up.
fn core_layout<const D: usize>(
    n: usize,
    node_size: usize,
    level_nodes: &[usize],
    has_world: bool,
    has_curve: bool,
    quantized: bool,
    aligned_fanout: bool,
) -> CoreLayout {
    let rect_bytes = if quantized {
        std::mem::size_of::<QRect<D>>()
    } else {
        std::mem::size_of::<Rect<D>>()
    };
    let group = if aligned_fanout {
        fanout_group(node_size, rect_bytes)
    } else {
        node_size
    };
    let mut off = HEADER_LEN;
    let mut section = |len: usize| {
        let start = off;
        off = bytes::align_up(start + len);
        (start, len)
    };
    let level_table = section(level_nodes.len() * 8);
    let world = section(if has_world {
        std::mem::size_of::<Rect<D>>()
    } else {
        0
    });
    let rects = section(n * std::mem::size_of::<Rect<D>>());
    let keys = section(n * 8);
    let curve_keys = section(if has_curve { n * 4 } else { 0 });
    let mut levels = Vec::with_capacity(level_nodes.len());
    for &nodes in level_nodes {
        let parents = nodes.div_ceil(node_size);
        let last = nodes - (parents - 1) * node_size;
        let phys = (parents - 1) * group + last;
        let (level_off, _) = section(phys * rect_bytes);
        levels.push(FlatLevel {
            off: level_off,
            nodes,
            phys,
            group,
        });
    }
    CoreLayout {
        level_table,
        world,
        rects,
        keys,
        curve_keys,
        levels,
        total: off,
    }
}

/// Folds per-section checksums (in section order) into one header
/// word, order-sensitively.
fn combine_checksums(parts: impl IntoIterator<Item = u64>) -> u64 {
    let mut acc = 0xcbf2_9ce4_8422_2325u64;
    for part in parts {
        acc = (acc ^ part).wrapping_mul(0x0000_0100_0000_01b3);
    }
    acc
}

fn write_u16(out: &mut [u8], off: usize, v: u16) {
    out[off..off + 2].copy_from_slice(&v.to_le_bytes());
}

fn write_u32(out: &mut [u8], off: usize, v: u32) {
    out[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

fn write_u64(out: &mut [u8], off: usize, v: u64) {
    out[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

impl<K, const D: usize> PackedCore<K, D> {
    /// Serializes the core into one flat, versioned, little-endian,
    /// 64-byte-aligned buffer in the layout `options` selects.
    ///
    /// Header (one cache line):
    ///
    /// | off | field | | off | field |
    /// |----:|-------|-|----:|-------|
    /// | 0 | magic `"DRTC"` (u32) | | 24 | num_levels (u32) |
    /// | 4 | version (u16) | | 28 | has_world (u16) |
    /// | 6 | layout flags (u16) | | 30 | has_curve_keys (u16) |
    /// | 8 | dims (u32) | | 32 | payload_len (u64) |
    /// | 12 | node_size (u32) | | 40 | meta checksum (u64) |
    /// | 16 | num_entries (u64) | | 48 | bulk checksum (u64) |
    /// | | | | 56 | reserved (u64) |
    ///
    /// followed by the sections of [`core_layout`], each at a 64-byte
    /// boundary: level table, world, entry rects, raw keys, curve
    /// keys, then the level MBR arrays bottom-up.
    fn to_bytes_with(&self, options: SnapshotOptions, to_raw: &dyn Fn(&K) -> u64) -> Vec<u8> {
        let n = self.len();
        let level_nodes: Vec<usize> = (0..self.num_levels())
            .map(|l| self.level_nodes(l))
            .collect();
        let has_world = self.world.is_some();
        let has_curve = !self.curve_keys().is_empty();
        let layout = core_layout::<D>(
            n,
            self.node_size,
            &level_nodes,
            has_world,
            has_curve,
            options.quantize_interior,
            options.aligned_fanout,
        );
        let mut out = Vec::with_capacity(layout.total);
        out.resize(HEADER_LEN, 0);
        for &nodes in &level_nodes {
            out.extend_from_slice(&(nodes as u64).to_le_bytes());
        }
        bytes::pad_to_section(&mut out);
        if let Some(world) = &self.world {
            debug_assert_eq!(out.len(), layout.world.0);
            out.extend_from_slice(bytes::as_bytes(std::slice::from_ref(world)));
            bytes::pad_to_section(&mut out);
        }
        debug_assert_eq!(out.len(), layout.rects.0);
        out.extend_from_slice(bytes::as_bytes(self.rects()));
        bytes::pad_to_section(&mut out);
        match &self.cols {
            // A flat source ships its raw key column verbatim — no
            // key materialization on a load→save round trip.
            Cols::Flat(flat) => out.extend_from_slice(flat.raw_key_bytes()),
            Cols::Owned { keys, .. } => {
                for key in keys {
                    out.extend_from_slice(&to_raw(key).to_le_bytes());
                }
            }
        }
        bytes::pad_to_section(&mut out);
        if has_curve {
            out.extend_from_slice(bytes::as_bytes(self.curve_keys()));
            bytes::pad_to_section(&mut out);
        }
        // Exact MBRs cannot be recovered from a quantized source;
        // re-derive them from the (always-exact) entry rectangles.
        let recomputed: Option<Vec<Vec<Rect<D>>>> =
            (n > 0 && !options.quantize_interior && self.is_quantized())
                .then(|| pack_levels(self.rects(), self.node_size));
        for (level, fl) in layout.levels.iter().enumerate() {
            debug_assert_eq!(out.len(), fl.off);
            if options.quantize_interior {
                // quantize(widen(q)) == q, so a quantized source round
                // trips exactly through the widened node_mbr.
                let mut tmp = vec![QRect::<D>::sentinel(); fl.phys];
                for node in 0..fl.nodes {
                    let phys = (node / self.node_size) * fl.group + node % self.node_size;
                    tmp[phys] = QRect::quantize(&self.node_mbr(level, node));
                }
                out.extend_from_slice(bytes::as_bytes(&tmp));
            } else {
                let pad = Rect::new([f64::INFINITY; D], [f64::INFINITY; D]);
                let mut tmp = vec![pad; fl.phys];
                for node in 0..fl.nodes {
                    let phys = (node / self.node_size) * fl.group + node % self.node_size;
                    tmp[phys] = match &recomputed {
                        Some(levels) => levels[level][node],
                        None => self.node_mbr(level, node),
                    };
                }
                out.extend_from_slice(bytes::as_bytes(&tmp));
            }
            bytes::pad_to_section(&mut out);
        }
        debug_assert_eq!(out.len(), layout.total);
        let rect_bytes = if options.quantize_interior {
            std::mem::size_of::<QRect<D>>()
        } else {
            std::mem::size_of::<Rect<D>>()
        };
        let meta = combine_checksums(
            [layout.level_table, layout.world]
                .into_iter()
                .map(|(off, len)| bytes::checksum(&out[off..off + len]))
                .chain(
                    layout
                        .levels
                        .iter()
                        .map(|fl| bytes::checksum(&out[fl.off..fl.off + fl.phys * rect_bytes])),
                )
                .collect::<Vec<u64>>(),
        );
        let bulk = combine_checksums(
            [layout.rects, layout.keys, layout.curve_keys]
                .into_iter()
                .map(|(off, len)| bytes::checksum(&out[off..off + len]))
                .collect::<Vec<u64>>(),
        );
        let mut flags = 0u16;
        if options.quantize_interior {
            flags |= FLAG_QUANTIZED;
        }
        if options.aligned_fanout {
            flags |= FLAG_ALIGNED_FANOUT;
        }
        let header = &mut out[..HEADER_LEN];
        write_u32(header, 0, CORE_MAGIC);
        write_u16(header, 4, SNAPSHOT_VERSION);
        write_u16(header, 6, flags);
        write_u32(header, 8, D as u32);
        write_u32(header, 12, self.node_size as u32);
        write_u64(header, 16, n as u64);
        write_u32(header, 24, level_nodes.len() as u32);
        write_u16(header, 28, u16::from(has_world));
        write_u16(header, 30, u16::from(has_curve));
        write_u64(header, 32, (layout.total - HEADER_LEN) as u64);
        write_u64(header, 40, meta);
        write_u64(header, 48, bulk);
        write_u64(header, 56, 0);
        out
    }

    /// Parses `length` bytes at `start` of `buf` into a flat-backed
    /// core, zero-copy: every section becomes a typed view into `buf`.
    ///
    /// Validation is structural and eager for everything cheap —
    /// magic, version, dims, node size, entry/level counts, every
    /// section bound, the meta checksum over the small sections (level
    /// table, world, level MBR arrays) — and deferred for the bulk
    /// checksum over the multi-megabyte entry sections
    /// ([`FlatCols::verify_bulk`]). A corrupt or truncated buffer is
    /// always a clean [`SnapshotError`], never a panic or an
    /// out-of-bounds view: offsets are re-derived from validated
    /// counts via [`core_layout`] and checked against the real length
    /// before any cast.
    fn from_flat(
        buf: &Arc<AlignedBytes>,
        start: usize,
        length: usize,
        from_raw: &Arc<dyn Fn(u64) -> K + Send + Sync>,
    ) -> Result<Self, SnapshotError> {
        let whole = buf.as_slice();
        let end = start
            .checked_add(length)
            .ok_or(SnapshotError::Corrupt("core range overflows"))?;
        if end > whole.len() {
            return Err(SnapshotError::Truncated {
                needed: end,
                have: whole.len(),
            });
        }
        if !start.is_multiple_of(bytes::SECTION_ALIGN) {
            return Err(SnapshotError::Corrupt("core offset not 64-byte aligned"));
        }
        let data = &whole[start..end];
        if data.len() < HEADER_LEN {
            return Err(SnapshotError::Truncated {
                needed: HEADER_LEN,
                have: data.len(),
            });
        }
        let magic = bytes::read_u32(data, 0).expect("header bounds checked");
        if magic != CORE_MAGIC {
            return Err(SnapshotError::BadMagic { found: magic });
        }
        let version = bytes::read_u16(data, 4).expect("header bounds checked");
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::WrongVersion {
                found: version,
                supported: SNAPSHOT_VERSION,
            });
        }
        let flags = bytes::read_u16(data, 6).expect("header bounds checked");
        if flags & !(FLAG_QUANTIZED | FLAG_ALIGNED_FANOUT) != 0 {
            return Err(SnapshotError::Corrupt("unknown layout flags"));
        }
        let quantized = flags & FLAG_QUANTIZED != 0;
        let aligned_fanout = flags & FLAG_ALIGNED_FANOUT != 0;
        let dims = bytes::read_u32(data, 8).expect("header bounds checked");
        if dims as usize != D {
            return Err(SnapshotError::WrongDims {
                found: dims,
                expected: D as u32,
            });
        }
        let node_size = bytes::read_u32(data, 12).expect("header bounds checked") as usize;
        if !(2..=MAX_NODE_SIZE).contains(&node_size) {
            return Err(SnapshotError::Corrupt("node size out of range"));
        }
        let n = usize::try_from(bytes::read_u64(data, 16).expect("header bounds checked"))
            .map_err(|_| SnapshotError::Corrupt("entry count overflows"))?;
        if n > u32::MAX as usize {
            return Err(SnapshotError::Corrupt("entry count exceeds 2^32"));
        }
        let num_levels = bytes::read_u32(data, 24).expect("header bounds checked") as usize;
        let has_world = match bytes::read_u16(data, 28).expect("header bounds checked") {
            0 => false,
            1 => true,
            _ => return Err(SnapshotError::Corrupt("has_world is not a boolean")),
        };
        let has_curve = match bytes::read_u16(data, 30).expect("header bounds checked") {
            0 => false,
            1 => true,
            _ => return Err(SnapshotError::Corrupt("has_curve_keys is not a boolean")),
        };
        let payload_len = bytes::read_u64(data, 32).expect("header bounds checked");
        let meta_checksum = bytes::read_u64(data, 40).expect("header bounds checked");
        let bulk_checksum = bytes::read_u64(data, 48).expect("header bounds checked");
        // The level structure is fully determined by (n, node_size);
        // the stored table must agree.
        let mut expect: Vec<usize> = Vec::new();
        if n > 0 {
            let mut below = n;
            loop {
                let nodes = below.div_ceil(node_size);
                expect.push(nodes);
                if nodes == 1 {
                    break;
                }
                below = nodes;
            }
        }
        if expect.len() != num_levels {
            return Err(SnapshotError::Corrupt(
                "level count disagrees with entry count",
            ));
        }
        let layout = core_layout::<D>(
            n,
            node_size,
            &expect,
            has_world,
            has_curve,
            quantized,
            aligned_fanout,
        );
        if layout.total != data.len() {
            return Err(SnapshotError::Truncated {
                needed: layout.total,
                have: data.len(),
            });
        }
        if payload_len != (layout.total - HEADER_LEN) as u64 {
            return Err(SnapshotError::Corrupt(
                "payload length disagrees with layout",
            ));
        }
        let rect_bytes = if quantized {
            std::mem::size_of::<QRect<D>>()
        } else {
            std::mem::size_of::<Rect<D>>()
        };
        let meta = combine_checksums(
            [layout.level_table, layout.world]
                .into_iter()
                .map(|(off, len)| bytes::checksum(&data[off..off + len]))
                .chain(
                    layout
                        .levels
                        .iter()
                        .map(|fl| bytes::checksum(&data[fl.off..fl.off + fl.phys * rect_bytes])),
                )
                .collect::<Vec<u64>>(),
        );
        if meta != meta_checksum {
            return Err(SnapshotError::ChecksumMismatch);
        }
        for (level, &nodes) in expect.iter().enumerate() {
            let stored = bytes::read_u64(data, layout.level_table.0 + level * 8)
                .expect("level table inside verified layout");
            if stored != nodes as u64 {
                return Err(SnapshotError::Corrupt("level table mismatch"));
            }
        }
        let world = if has_world {
            let mut lo = [0.0f64; D];
            let mut hi = [0.0f64; D];
            for d in 0..D {
                lo[d] = bytes::read_f64(data, layout.world.0 + 8 * d)
                    .expect("world inside verified layout");
                hi[d] = bytes::read_f64(data, layout.world.0 + 8 * (D + d))
                    .expect("world inside verified layout");
            }
            Some(
                Rect::try_new(lo, hi)
                    .map_err(|_| SnapshotError::Corrupt("invalid world rectangle"))?,
            )
        } else {
            None
        };
        if n == 0 {
            return Ok(PackedCore {
                node_size,
                world,
                cols: Cols::empty_owned(),
            });
        }
        // Absolute spans, then one cast per section now so accessors
        // never re-check (construction makes misalignment impossible;
        // this is the load-time proof of that).
        let abs = |(off, len): (usize, usize)| (start + off, len);
        let rects_span = abs(layout.rects);
        let keys_span = abs(layout.keys);
        let curve_span = abs(layout.curve_keys);
        let levels: Vec<FlatLevel> = layout
            .levels
            .iter()
            .map(|fl| FlatLevel {
                off: start + fl.off,
                ..*fl
            })
            .collect();
        let misaligned = |_| SnapshotError::Corrupt("misaligned section");
        bytes::cast_slice::<Rect<D>>(&whole[rects_span.0..rects_span.0 + rects_span.1])
            .map_err(misaligned)?;
        bytes::cast_slice::<u64>(&whole[keys_span.0..keys_span.0 + keys_span.1])
            .map_err(misaligned)?;
        bytes::cast_slice::<u32>(&whole[curve_span.0..curve_span.0 + curve_span.1])
            .map_err(misaligned)?;
        for fl in &levels {
            let raw = &whole[fl.off..fl.off + fl.phys * rect_bytes];
            if quantized {
                bytes::cast_slice::<QRect<D>>(raw).map_err(misaligned)?;
            } else {
                bytes::cast_slice::<Rect<D>>(raw).map_err(misaligned)?;
            }
        }
        Ok(PackedCore {
            node_size,
            world,
            cols: Cols::Flat(FlatCols {
                buf: Arc::clone(buf),
                num_entries: n,
                rects: rects_span,
                raw_keys: keys_span,
                curve_keys: curve_span,
                levels,
                quantized,
                bulk_checksum,
                keys: OnceLock::new(),
                from_raw: Arc::clone(from_raw),
            }),
        })
    }
}

/// Mid-compaction bookkeeping: what changed since the freeze, so
/// [`PackedRTree::install`] can reconcile the worker's merged core
/// with the live tree.
#[derive(Debug, Clone)]
struct CompactionEpoch {
    /// Staged entries `[0..frozen_staged_len)` were shipped to the
    /// worker; later stagings are the second-generation delta that
    /// survives the install.
    frozen_staged_len: usize,
    /// Tombstone bitmap as of the freeze — bits set *since* are
    /// removals the merged core never saw, re-applied on install.
    frozen_tombstones: Vec<u64>,
    /// Set bits in `frozen_tombstones` (what the merge reclaims).
    frozen_tombstone_count: usize,
    /// Dead bits over the frozen staged prefix: frozen staged entries
    /// removed mid-compaction. They stay in the buffer (the prefix is
    /// index-stable while frozen) but no visitor emits them, and the
    /// install re-removes them from the merged core.
    staged_dead: Vec<u64>,
    /// Set bits in `staged_dead`.
    staged_dead_count: usize,
}

impl CompactionEpoch {
    fn is_staged_dead(&self, index: usize) -> bool {
        bit_set(&self.staged_dead, index)
    }
}

/// An immutable compaction snapshot of one [`PackedRTree`], produced
/// by [`PackedRTree::freeze`]: the `Arc`-shared packed core plus a
/// copy of the delta layer as of the freeze.
///
/// The snapshot owns everything it needs, so it can be moved to a
/// worker thread (e.g. via [`crate::parallel::Job`]) and merged there
/// with [`FrozenShard::merge`] while the originating tree keeps
/// serving reads and absorbing new mutations. Hand the merged tree
/// back to [`PackedRTree::install`] to complete the compaction.
#[derive(Debug, Clone)]
pub struct FrozenShard<K, const D: usize> {
    core: Arc<PackedCore<K, D>>,
    staged_keys: Vec<K>,
    staged_rects: Vec<Rect<D>>,
    tombstones: Vec<u64>,
    tombstone_count: usize,
    delta_fraction: f64,
}

impl<K, const D: usize> FrozenShard<K, D> {
    /// Live entries in the snapshot (packed slots minus tombstones
    /// plus frozen staged entries) — the size of the merge's input.
    pub fn len(&self) -> usize {
        self.core.len() - self.tombstone_count + self.staged_keys.len()
    }

    /// `true` when the snapshot holds no live entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Heap bytes held by the snapshot's delta copies (staged entries
    /// and the tombstone bitmap). Zero when the snapshot was taken
    /// with an empty delta — [`PackedRTree::snapshot`] then shares the
    /// core and allocates nothing.
    pub fn delta_heap_bytes(&self) -> usize {
        self.staged_keys.capacity() * std::mem::size_of::<K>()
            + self.staged_rects.capacity() * std::mem::size_of::<Rect<D>>()
            + self.tombstones.capacity() * std::mem::size_of::<u64>()
    }

    /// Visits every entry whose rectangle contains `point`, exactly as
    /// the source tree would have at snapshot time — the read path that
    /// makes a [`FrozenShard`] a *query* snapshot, not just merge
    /// input. Same allocation-free pruned descent as
    /// [`PackedRTree::for_each_containing`] (the kernel is shared), and
    /// `&self` only: an `Arc<FrozenShard>` can serve concurrent readers
    /// while the live tree keeps mutating.
    ///
    /// Tombstones frozen with the snapshot are skipped; every staged
    /// entry in the snapshot is live by construction
    /// ([`PackedRTree::snapshot`] filters retired ones out).
    pub fn for_each_containing<'a, F>(&'a self, point: &Point<D>, mut visit: F)
    where
        F: FnMut(&'a K, &'a Rect<D>),
    {
        let mask_of = ContainsPoint(point);
        let keys = self.core.keys();
        let rects = self.core.rects();
        let aborted = !traverse_core_while(&self.core, &self.tombstones, &mask_of, &mut |slot| {
            visit(&keys[slot], &rects[slot]);
            true
        });
        if aborted {
            return;
        }
        for (chunk_idx, chunk) in self.staged_rects.chunks(MAX_NODE_SIZE).enumerate() {
            let mut mask = mask_of.mask(chunk);
            while mask != 0 {
                let i = chunk_idx * MAX_NODE_SIZE + mask.trailing_zeros() as usize;
                visit(&self.staged_keys[i], &self.staged_rects[i]);
                mask &= mask - 1;
            }
        }
    }

    /// Folds the snapshot's staging buffer and tombstones into a fresh
    /// packed tree of its live entries — the merge work, run wherever
    /// the caller likes (typically a background
    /// [`crate::parallel::Job`]). The returned tree has an empty delta
    /// layer and inherits the frozen tree's node size and delta
    /// fraction.
    ///
    /// The snapshot's structure makes the common case cheap: the
    /// packed tier is already in Hilbert order, so when the merged
    /// entry set's world is unchanged (and the core retains its curve
    /// keys — `D ≤ 2`), the merge sorts only the staged delta and
    /// **splices** the two sorted streams in `O(N + S log S)` — no
    /// per-entry key derivation, no `O(N log N)` re-sort of the base.
    /// A grown world (or missing keys) falls back to the full Hilbert
    /// bulk-load.
    pub fn merge(&self) -> PackedRTree<K, D>
    where
        K: Clone,
    {
        let core = &*self.core;
        let core_keys = core.keys();
        let core_rects = core.rects();
        let core_curve = core.curve_keys();
        let is_live = |slot: usize| !bit_set(&self.tombstones, slot);
        let total = self.len();
        let live_rects = core_rects
            .iter()
            .enumerate()
            .filter(|&(slot, _)| is_live(slot))
            .map(|(_, r)| r);
        let world = GridMapper::world_of(live_rects.chain(self.staged_rects.iter()))
            .unwrap_or_else(|| Rect::new([0.0; D], [1.0; D]));

        if total > 0 && core_curve.len() == core.len() && core.world == Some(world) {
            // Sorted splice. Stage tags pack (key, index) into one u64
            // exactly like the bulk-load sort; ties land *after* the
            // equal-keyed base slots, matching the bulk-load's
            // insertion-order tiebreak (base entries precede staged).
            let mapper = GridMapper::new(&world);
            let mut staged: Vec<u64> = self
                .staged_rects
                .iter()
                .enumerate()
                .map(|(i, r)| ((mapper.key(r) as u64) << 32) | i as u64)
                .collect();
            staged.sort_unstable();
            let mut keys: Vec<K> = Vec::with_capacity(total);
            let mut rects: Vec<Rect<D>> = Vec::with_capacity(total);
            let mut curve_keys: Vec<u32> = Vec::with_capacity(total);
            let push_staged = |tag: u64,
                               keys: &mut Vec<K>,
                               rects: &mut Vec<Rect<D>>,
                               curve_keys: &mut Vec<u32>| {
                let i = tag as u32 as usize;
                keys.push(self.staged_keys[i].clone());
                rects.push(self.staged_rects[i]);
                curve_keys.push((tag >> 32) as u32);
            };
            let mut si = 0usize;
            for slot in 0..core.len() {
                if !is_live(slot) {
                    continue;
                }
                let base_key = core_curve[slot];
                while si < staged.len() && ((staged[si] >> 32) as u32) < base_key {
                    push_staged(staged[si], &mut keys, &mut rects, &mut curve_keys);
                    si += 1;
                }
                keys.push(core_keys[slot].clone());
                rects.push(core_rects[slot]);
                curve_keys.push(base_key);
            }
            while si < staged.len() {
                push_staged(staged[si], &mut keys, &mut rects, &mut curve_keys);
                si += 1;
            }
            debug_assert_eq!(keys.len(), total);
            let levels = pack_levels(&rects, core.node_size);
            return PackedRTree {
                core: Arc::new(PackedCore {
                    node_size: core.node_size,
                    world: Some(world),
                    cols: Cols::Owned {
                        keys,
                        rects,
                        curve_keys,
                        levels,
                    },
                }),
                staged_keys: Vec::new(),
                staged_rects: Vec::new(),
                tombstones: Vec::new(),
                tombstone_count: 0,
                staged_mbr: None,
                delta_fraction: self.delta_fraction,
                epoch: None,
                leases: Vec::new(),
            };
        }

        let mut entries: Vec<(K, Rect<D>)> = Vec::with_capacity(total);
        for (slot, (k, r)) in core_keys.iter().zip(core_rects).enumerate() {
            if is_live(slot) {
                entries.push((k.clone(), *r));
            }
        }
        entries.extend(
            self.staged_keys
                .iter()
                .cloned()
                .zip(self.staged_rects.iter().copied()),
        );
        let mut merged = PackedRTree::bulk_load_with_node_size(core.node_size, entries);
        merged.delta_fraction = self.delta_fraction;
        merged
    }
}

/// How [`PackedRTree::remove_entry`] realized a removal — callers
/// maintaining external slot- or stage-indexed structures (e.g. the
/// pub/sub stab grid) patch themselves from this.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeltaRemoval<const D: usize> {
    /// A staged entry was removed by swap-remove: `index` is the
    /// vacated staging index, and `moved` is the rectangle of the
    /// former last staged entry now living at `index` (`None` when the
    /// removed entry *was* the last).
    Unstaged {
        /// The staging index that was vacated.
        index: usize,
        /// Rectangle of the entry swapped into `index`, if any.
        moved: Option<Rect<D>>,
    },
    /// A packed entry was tombstoned in place.
    Tombstoned {
        /// The now-dead packed slot.
        slot: usize,
    },
    /// A *frozen* staged entry was retired in place mid-compaction:
    /// the staging buffer keeps its slot (the frozen prefix is
    /// index-stable while a snapshot is outstanding) but the entry is
    /// dead to every visitor, and [`PackedRTree::install`] will
    /// re-remove it from the merged core.
    Retired {
        /// The now-dead staging index.
        index: usize,
    },
}

/// How [`PackedRTree::update_entry`] realized a move — callers
/// maintaining slot- or stage-indexed side structures (e.g. the
/// pub/sub stab grid) patch themselves from this, mirroring
/// [`DeltaRemoval`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EntryUpdate<const D: usize> {
    /// The packed entry moved in place: the slot kept its identity and
    /// the `O(log N)` ancestor MBRs above it were refitted exactly.
    InPlace {
        /// The packed slot now holding the new rectangle.
        slot: usize,
    },
    /// A staged entry's rectangle was rewritten in place.
    Staged {
        /// The staging index that was rewritten.
        index: usize,
    },
    /// The move fell back to remove+reinsert through the delta layer —
    /// the new rectangle escaped its leaf subtree, or a compaction
    /// snapshot froze the entry's tier.
    Restaged {
        /// How the old entry went away.
        removal: DeltaRemoval<D>,
        /// Staging index where the new rectangle was inserted.
        index: usize,
    },
}

/// What one [`PackedRTree::compact`] call absorbed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaCompaction {
    /// Staged entries merged into the packed levels.
    pub staged_absorbed: usize,
    /// Tombstoned slots reclaimed.
    pub tombstones_reclaimed: usize,
}

impl DeltaCompaction {
    /// `true` when the compaction had nothing to do.
    pub fn is_noop(&self) -> bool {
        self.staged_absorbed == 0 && self.tombstones_reclaimed == 0
    }
}

/// A violated packed-level invariant, reported by
/// [`PackedRTree::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum PackedValidationError {
    /// A level's length is not `ceil(len(below) / node_size)`.
    WrongLevelLength {
        /// Level index (0 = leaf nodes).
        level: usize,
        /// Nodes found at the level.
        found: usize,
        /// Nodes the implicit topology requires.
        expected: usize,
    },
    /// A node MBR is not the exact union of what it covers.
    WrongMbr {
        /// Level index (0 = leaf nodes).
        level: usize,
        /// Node index within the level.
        node: usize,
    },
    /// The key and rectangle arrays disagree in length, or a non-empty
    /// tree has no levels.
    Inconsistent,
    /// The delta layer violates an invariant: staged arrays of unequal
    /// length, a tombstone count disagreeing with the bitmap, a bitmap
    /// of the wrong width, or a staged rectangle outside the tracked
    /// staged MBR.
    DeltaInconsistent,
    /// A flat-buffer core failed its deferred payload checksum — the
    /// snapshot bytes were corrupted after load.
    CorruptBuffer,
    /// A retained curve key disagrees with the key its slot's current
    /// rectangle maps to — an in-place move skipped its re-key, so a
    /// sorted-splice merge would order the entry by where it *was*.
    StaleCurveKey {
        /// The packed slot holding the stale key.
        slot: usize,
    },
}

impl std::fmt::Display for PackedValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PackedValidationError::WrongLevelLength {
                level,
                found,
                expected,
            } => write!(
                f,
                "packed level {level} has {found} nodes, topology requires {expected}"
            ),
            PackedValidationError::WrongMbr { level, node } => {
                write!(f, "node {node} of level {level} has a non-exact MBR")
            }
            PackedValidationError::Inconsistent => {
                f.write_str("entry arrays inconsistent with level arrays")
            }
            PackedValidationError::DeltaInconsistent => {
                f.write_str("delta layer inconsistent with its bookkeeping")
            }
            PackedValidationError::CorruptBuffer => {
                f.write_str("flat-buffer core failed its payload checksum")
            }
            PackedValidationError::StaleCurveKey { slot } => {
                write!(f, "slot {slot} holds a curve key stale for its rectangle")
            }
        }
    }
}

impl std::error::Error for PackedValidationError {}

impl<K, const D: usize> PackedRTree<K, D> {
    /// Hilbert bulk-load with the default node size.
    pub fn bulk_load(entries: Vec<(K, Rect<D>)>) -> Self {
        Self::bulk_load_with_node_size(DEFAULT_NODE_SIZE, entries)
    }

    /// Hilbert bulk-load with node capacity `node_size` (clamped to
    /// `[2, 32]`; the cap keeps node bitmasks in one machine word and
    /// bounds the traversal stack).
    pub fn bulk_load_with_node_size(node_size: usize, entries: Vec<(K, Rect<D>)>) -> Self {
        let node_size = node_size.clamp(2, MAX_NODE_SIZE);
        let n = entries.len();
        assert!(
            n <= u32::MAX as usize,
            "packed tree is limited to 2^32 entries"
        );
        if n == 0 {
            return Self {
                core: Arc::new(PackedCore {
                    node_size,
                    world: None,
                    cols: Cols::empty_owned(),
                }),
                staged_keys: Vec::new(),
                staged_rects: Vec::new(),
                tombstones: Vec::new(),
                tombstone_count: 0,
                staged_mbr: None,
                delta_fraction: DEFAULT_DELTA_FRACTION,
                epoch: None,
                leases: Vec::new(),
            };
        }

        // Order entries along the Hilbert curve of their centers. The
        // sort permutes small scalar (key, index) packs, not the
        // entries themselves; ties keep insertion order via the index,
        // so construction is deterministic even on degenerate worlds.
        let world = GridMapper::world_of(entries.iter().map(|(_, r)| r))
            .unwrap_or_else(|| Rect::new([0.0; D], [1.0; D]));
        let mapper = GridMapper::new(&world);
        let (order, curve_keys) = curve_order(&mapper, &entries);
        let rects: Vec<Rect<D>> = order.iter().map(|&i| entries[i as usize].1).collect();
        // Apply the permutation to the keys as well (one O(N) move
        // pass, no `Clone` required), so hits read `keys[slot]` with
        // no indirection.
        let mut taken: Vec<Option<K>> = entries.into_iter().map(|(k, _)| Some(k)).collect();
        let keys: Vec<K> = order
            .iter()
            .map(|&i| taken[i as usize].take().expect("order is a permutation"))
            .collect();

        // Pack levels bottom-up until a single root remains.
        let levels = pack_levels(&rects, node_size);

        Self {
            core: Arc::new(PackedCore {
                node_size,
                world: Some(world),
                cols: Cols::Owned {
                    keys,
                    rects,
                    curve_keys,
                    levels,
                },
            }),
            staged_keys: Vec::new(),
            staged_rects: Vec::new(),
            tombstones: Vec::new(),
            tombstone_count: 0,
            staged_mbr: None,
            delta_fraction: DEFAULT_DELTA_FRACTION,
            epoch: None,
            leases: Vec::new(),
        }
    }

    /// Number of *live* entries: packed slots minus tombstones plus
    /// live staged entries.
    pub fn len(&self) -> usize {
        let staged_dead = self.epoch.as_ref().map_or(0, |e| e.staged_dead_count);
        self.core.len() - self.tombstone_count + self.staged_keys.len() - staged_dead
    }

    /// `true` if the tree stores no live entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of packed slots, tombstoned ones included — the range
    /// valid for [`PackedRTree::entry`], [`PackedRTree::update`], and
    /// [`PackedRTree::tombstone`].
    pub fn packed_len(&self) -> usize {
        self.core.len()
    }

    /// Node capacity the tree was packed with.
    pub fn node_size(&self) -> usize {
        self.core.node_size
    }

    /// Number of node levels, counting the leaf-node level as 1. An
    /// empty tree has height 1, mirroring [`crate::RTree::height`].
    pub fn height(&self) -> usize {
        self.core.num_levels().max(1)
    }

    /// The MBR of the whole tree — packed root unioned with the staged
    /// layer's MBR (`None` when no entry was ever stored since the last
    /// compaction). Tombstones never shrink it, so it may
    /// over-approximate; pruning against it stays conservative.
    pub fn mbr(&self) -> Option<Rect<D>> {
        let root = self.core.root_mbr();
        match (root, self.staged_mbr) {
            (Some(a), Some(b)) => Some(a.union(&b)),
            (a, b) => a.or(b),
        }
    }

    /// The entry stored in packed `slot` (Hilbert order), tombstoned or
    /// not — check [`PackedRTree::is_live`] when it matters.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= self.packed_len()`.
    pub fn entry(&self, slot: usize) -> (&K, &Rect<D>) {
        (&self.core.keys()[slot], &self.core.rects()[slot])
    }

    /// All packed entry keys in slot order — the raw column behind
    /// [`PackedRTree::entry`], for consumers that index by slot in
    /// bulk (e.g. external acceleration structures keyed by slot).
    /// Includes tombstoned slots; excludes the staging buffer
    /// ([`PackedRTree::staged_keys`]). On a tree restored from a flat
    /// snapshot, the first call materializes (and caches) the typed
    /// key column from the buffer's raw `u64`s.
    pub fn keys(&self) -> &[K] {
        self.core.keys()
    }

    /// All packed entry rectangles in slot order (parallel to
    /// [`PackedRTree::keys`]).
    pub fn rects(&self) -> &[Rect<D>] {
        self.core.rects()
    }

    /// All staged entry keys (delta layer, arbitrary order), parallel
    /// to [`PackedRTree::staged_rects`]. Mid-compaction the buffer may
    /// contain retired (dead) frozen entries — check
    /// [`PackedRTree::is_staged_live`] when it matters.
    pub fn staged_keys(&self) -> &[K] {
        &self.staged_keys
    }

    /// All staged entry rectangles (parallel to
    /// [`PackedRTree::staged_keys`]).
    pub fn staged_rects(&self) -> &[Rect<D>] {
        &self.staged_rects
    }

    /// Iterates over the *live* packed entries as `(slot, key, rect)`
    /// in Hilbert order, skipping tombstoned slots. Staged entries are
    /// not included ([`PackedRTree::staged_keys`] exposes them).
    pub fn entries(&self) -> impl Iterator<Item = (usize, &K, &Rect<D>)> {
        self.core
            .keys()
            .iter()
            .zip(self.core.rects().iter())
            .enumerate()
            .filter(|&(slot, _)| self.is_live(slot))
            .map(|(slot, (k, r))| (slot, k, r))
    }

    /// The lowest live packed slot holding an entry with key `key`, if
    /// any.
    pub fn slot_of(&self, key: &K) -> Option<usize>
    where
        K: PartialEq,
    {
        self.core
            .keys()
            .iter()
            .enumerate()
            .find(|&(slot, k)| k == key && self.is_live(slot))
            .map(|(slot, _)| slot)
    }

    /// Replaces the rectangle in `slot` and incrementally refits the
    /// `O(log N)` ancestor MBRs above it — the live-update path: no
    /// rebuild, no allocation.
    ///
    /// The entry keeps its slot, so a drifting subscription stays
    /// addressable; packing quality degrades only as far as the moved
    /// rectangle inflates its ancestors (refits are exact, shrinking
    /// included). Rebuild via [`PackedRTree::bulk_load`] when drift
    /// accumulates.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= self.packed_len()`, or while a
    /// [`PackedRTree::freeze`] snapshot is outstanding (the merged
    /// core could not see the moved rectangle; finish or abort the
    /// compaction first).
    pub fn update(&mut self, slot: usize, rect: Rect<D>)
    where
        K: Clone,
    {
        assert!(
            self.epoch.is_none(),
            "update during an outstanding compaction snapshot"
        );
        let core = Arc::make_mut(&mut self.core);
        core.make_owned();
        assert!(slot < core.len(), "slot {slot} out of bounds");
        debug_assert!(
            !bit_set(&self.tombstones, slot),
            "updating a tombstoned slot"
        );
        let world = core.world;
        let node_size = core.node_size;
        // If the outgoing rect defines no bound of its leaf MBR
        // (strictly interior on every axis, so every leaf bound is
        // achieved by some *other* covered rect) and the incoming rect
        // stays inside that MBR, the leaf union — and therefore every
        // ancestor union — is provably unchanged: skip the refit walk.
        let skip_refit = core.num_levels() > 0 && {
            let mbr = core.node_mbr(0, slot / node_size);
            let old = &core.rects()[slot];
            (0..D).all(|d| {
                old.lo(d) > mbr.lo(d)
                    && old.hi(d) < mbr.hi(d)
                    && rect.lo(d) >= mbr.lo(d)
                    && rect.hi(d) <= mbr.hi(d)
            })
        };
        {
            let Cols::Owned {
                rects, curve_keys, ..
            } = &mut core.cols
            else {
                unreachable!("make_owned above")
            };
            rects[slot] = rect;
            // Keep the stored curve key in step so a later
            // sorted-splice merge orders the moved entry by where it
            // *is*, not where it was packed (quality only — order
            // never affects correctness).
            if !curve_keys.is_empty() {
                if let Some(world) = &world {
                    curve_keys[slot] = GridMapper::new(world).key(&rect) as u32;
                }
            }
        }
        if skip_refit {
            return;
        }
        let mut node = slot / node_size;
        for level in 0..core.num_levels() {
            let exact = core
                .covered_union(level, node)
                .expect("covered range is non-empty");
            if core.node_mbr(level, node) == exact {
                break; // ancestors above are unions of unchanged MBRs
            }
            let Cols::Owned { levels, .. } = &mut core.cols else {
                unreachable!("make_owned above")
            };
            levels[level][node] = exact;
            node /= node_size;
        }
    }

    // ---- delta layer -------------------------------------------------

    /// Appends `(key, rect)` to the staging buffer. The entry is
    /// visible to every visitor immediately; it joins the packed levels
    /// at the next [`PackedRTree::compact`].
    pub fn stage_insert(&mut self, key: K, rect: Rect<D>) {
        self.staged_mbr = Some(match self.staged_mbr {
            Some(m) => m.union(&rect),
            None => rect,
        });
        self.staged_keys.push(key);
        self.staged_rects.push(rect);
    }

    /// Number of entries in the staging buffer.
    pub fn staged_len(&self) -> usize {
        self.staged_keys.len()
    }

    /// Number of tombstoned packed slots.
    pub fn tombstone_count(&self) -> usize {
        self.tombstone_count
    }

    /// Size of the delta layer: staged entries plus tombstones — the
    /// quantity [`PackedRTree::needs_compaction`] compares against the
    /// packed slot count.
    pub fn delta_len(&self) -> usize {
        self.staged_keys.len() + self.tombstone_count
    }

    /// `true` when packed slot `slot` has **not** been tombstoned.
    /// (Out-of-range slots read as live; the bitmap is only allocated
    /// once a tombstone exists.)
    #[inline]
    pub fn is_live(&self, slot: usize) -> bool {
        !bit_set(&self.tombstones, slot)
    }

    /// Tombstones packed slot `slot`: the entry stays in the arrays but
    /// no visitor will emit it again. Returns `false` when the slot was
    /// already dead. Node MBRs are *not* refitted (they only
    /// over-approximate); [`PackedRTree::compact`] reclaims the slot.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= self.packed_len()`.
    pub fn tombstone(&mut self, slot: usize) -> bool {
        assert!(slot < self.core.len(), "slot {slot} out of bounds");
        if self.tombstones.is_empty() {
            self.tombstones = vec![0u64; self.core.len().div_ceil(64)];
        }
        let (word, bit) = (slot >> 6, 1u64 << (slot & 63));
        if self.tombstones[word] & bit != 0 {
            return false;
        }
        self.tombstones[word] |= bit;
        self.tombstone_count += 1;
        true
    }

    /// `true` when staging index `index` has **not** been retired by a
    /// mid-compaction removal. Without an outstanding snapshot every
    /// staged entry is live.
    #[inline]
    pub fn is_staged_live(&self, index: usize) -> bool {
        match &self.epoch {
            None => true,
            Some(epoch) => !epoch.is_staged_dead(index),
        }
    }

    /// Removes one live `(key, rect)` entry through the delta layer:
    /// staged entries are swap-removed (or, for the index-stable
    /// frozen prefix of an outstanding compaction snapshot, retired in
    /// place), packed entries are tombstoned in place (located by a
    /// pruned traversal on the exact rectangle, not a linear scan).
    /// Returns what happened so callers maintaining stage- or
    /// slot-indexed side structures can patch themselves, or `None`
    /// when no live entry matches.
    pub fn remove_entry(&mut self, key: &K, rect: &Rect<D>) -> Option<DeltaRemoval<D>>
    where
        K: PartialEq,
    {
        // Packed tier first: the pruned traversal is `O(log N)`
        // whatever the delta's depth, while the staging scan is linear
        // in it — and under steady churn most removals target
        // long-lived (packed) entries, so paying the full staged scan
        // before even looking at the packed tier dominated removal
        // cost exactly when the delta was deep (mid-compaction).
        if let Some(slot) = self.find_packed_slot(key, rect) {
            self.tombstone(slot);
            return Some(DeltaRemoval::Tombstoned { slot });
        }
        if let Some(index) = self
            .staged_keys
            .iter()
            .zip(&self.staged_rects)
            .enumerate()
            .position(|(i, (k, r))| k == key && r == rect && self.is_staged_live(i))
        {
            if let Some(epoch) = &mut self.epoch {
                if index < epoch.frozen_staged_len {
                    // The frozen prefix is index-stable while the
                    // snapshot is outstanding: retire in place and let
                    // the install re-remove it from the merged core.
                    epoch.staged_dead[index >> 6] |= 1u64 << (index & 63);
                    epoch.staged_dead_count += 1;
                    return Some(DeltaRemoval::Retired { index });
                }
            }
            self.staged_keys.swap_remove(index);
            self.staged_rects.swap_remove(index);
            let moved = (index < self.staged_rects.len()).then(|| self.staged_rects[index]);
            if self.staged_keys.is_empty() {
                self.staged_mbr = None;
            }
            return Some(DeltaRemoval::Unstaged { index, moved });
        }
        None
    }

    /// The first live packed slot holding exactly `(key, rect)`, found
    /// by descending only nodes whose MBR intersects `rect`.
    fn find_packed_slot(&self, key: &K, rect: &Rect<D>) -> Option<usize>
    where
        K: PartialEq,
    {
        let mut found = None;
        let keys = self.core.keys();
        let rects = self.core.rects();
        self.traverse_packed_while(&IntersectsRect(rect), &mut |slot| {
            if rects[slot] == *rect && keys[slot] == *key {
                found = Some(slot);
                false
            } else {
                true
            }
        });
        found
    }

    /// Moves one live `(key, old)` entry to rectangle `new` — the
    /// mobility fast path. Packed entries whose new rectangle stays
    /// inside their leaf subtree's region move **in place** via
    /// [`PackedRTree::update`] (`O(log N)`, no allocation, slot
    /// identity kept); everything else falls back to remove+reinsert
    /// through the delta layer (tombstone or retire the old entry,
    /// stage the new rectangle). A lease covering the entry follows it
    /// to the new rectangle. Returns what happened so callers
    /// maintaining slot- or stage-indexed side structures can patch
    /// themselves, or `None` when no live entry matches.
    pub fn update_entry(&mut self, key: &K, old: &Rect<D>, new: Rect<D>) -> Option<EntryUpdate<D>>
    where
        K: Clone + PartialEq,
    {
        if let Some(slot) = self.find_packed_slot(key, old) {
            return Some(self.update_packed(slot, key, old, new));
        }
        let index = self
            .staged_keys
            .iter()
            .zip(&self.staged_rects)
            .enumerate()
            .position(|(i, (k, r))| k == key && r == old && self.is_staged_live(i))?;
        Some(self.update_staged_at(index, key, old, new))
    }

    /// [`PackedRTree::update_entry`] with the staged-tier linear scan
    /// skipped: the delta-layer counterpart of
    /// [`PackedRTree::update_slot`], for callers that cached `index`
    /// from an earlier [`EntryUpdate::Staged`] / restage. The index is
    /// re-verified against live `(key, old)` before acting, so a stale
    /// cache (the buffer swap-removed or merged since) is a miss,
    /// never a wrong move.
    pub fn update_staged(
        &mut self,
        index: usize,
        key: &K,
        old: &Rect<D>,
        new: Rect<D>,
    ) -> Option<EntryUpdate<D>>
    where
        K: Clone + PartialEq,
    {
        if index >= self.staged_keys.len()
            || !self.is_staged_live(index)
            || self.staged_rects[index] != *old
            || self.staged_keys[index] != *key
        {
            return None;
        }
        Some(self.update_staged_at(index, key, old, new))
    }

    /// The staged-tier move itself, after `index` is known to hold
    /// live `(key, old)`.
    fn update_staged_at(
        &mut self,
        index: usize,
        key: &K,
        old: &Rect<D>,
        new: Rect<D>,
    ) -> EntryUpdate<D>
    where
        K: Clone + PartialEq,
    {
        let frozen = matches!(&self.epoch, Some(e) if index < e.frozen_staged_len);
        let result = if frozen {
            // The frozen prefix is index-stable mid-compaction: retire
            // the old rectangle in place (install re-removes it from
            // the merged core) and stage the new one past the prefix.
            let epoch = self.epoch.as_mut().expect("frozen implies epoch");
            epoch.staged_dead[index >> 6] |= 1u64 << (index & 63);
            epoch.staged_dead_count += 1;
            let new_index = self.staged_keys.len();
            self.stage_insert(key.clone(), new);
            EntryUpdate::Restaged {
                removal: DeltaRemoval::Retired { index },
                index: new_index,
            }
        } else {
            self.staged_rects[index] = new;
            self.staged_mbr = Some(match self.staged_mbr {
                Some(m) => m.union(&new),
                None => new,
            });
            EntryUpdate::Staged { index }
        };
        self.move_lease(key, old, &new);
        result
    }

    /// [`PackedRTree::update_entry`] with the packed-tier search
    /// skipped: callers that cached `slot` from an earlier
    /// [`EntryUpdate::InPlace`] verify it still holds live `(key, old)`
    /// and move without any traversal — the hot path of a mover that
    /// relocates every tick. Returns `None` (and touches nothing) when
    /// the slot no longer matches, so a stale cache is a cache miss,
    /// never a wrong move.
    pub fn update_slot(
        &mut self,
        slot: usize,
        key: &K,
        old: &Rect<D>,
        new: Rect<D>,
    ) -> Option<EntryUpdate<D>>
    where
        K: Clone + PartialEq,
    {
        if slot >= self.core.len()
            || bit_set(&self.tombstones, slot)
            || self.core.rects()[slot] != *old
            || self.core.keys()[slot] != *key
        {
            return None;
        }
        Some(self.update_packed(slot, key, old, new))
    }

    /// The packed-tier move itself, after `slot` is known to hold live
    /// `(key, old)`: in place when eligible, tombstone + restage
    /// otherwise, lease following either way.
    fn update_packed(&mut self, slot: usize, key: &K, old: &Rect<D>, new: Rect<D>) -> EntryUpdate<D>
    where
        K: Clone + PartialEq,
    {
        // In-place needs an idle compaction (the merged core could
        // not see the move) and a new rectangle that keeps packing
        // degradation local to the slot's leaf subtree.
        let result = if self.epoch.is_none() && self.stays_in_subtree(slot, &new) {
            self.update(slot, new);
            EntryUpdate::InPlace { slot }
        } else {
            self.tombstone(slot);
            let index = self.staged_keys.len();
            self.stage_insert(key.clone(), new);
            EntryUpdate::Restaged {
                removal: DeltaRemoval::Tombstoned { slot },
                index,
            }
        };
        self.move_lease(key, old, &new);
        result
    }

    /// `true` when `rect` fits inside the region of `slot`'s leaf
    /// subtree — the eligibility test for an in-place move. The tested
    /// region is the slot's level-1 ancestor MBR (the root for one- or
    /// zero-level trees), so an in-place move inflates at most the
    /// leaf node under an unchanged subtree bound.
    fn stays_in_subtree(&self, slot: usize, rect: &Rect<D>) -> bool {
        let core = &*self.core;
        let num_levels = core.num_levels();
        if num_levels == 0 {
            return false;
        }
        let level = 1.min(num_levels - 1);
        let node = slot / core.node_size.pow(level as u32 + 1);
        core.node_mbr(level, node).contains_rect(rect)
    }

    // ---- TTL leases --------------------------------------------------

    /// Arms (or re-arms) a TTL lease on the entry `(key, rect)`: once a
    /// caller-supplied logical clock reaches `deadline`,
    /// [`PackedRTree::pop_expired_lease`] surfaces the entry for
    /// eviction. One lease per entry identity — re-arming replaces the
    /// deadline. The tree never evicts on its own; leases are
    /// metadata until an owner drives expiry.
    pub fn set_lease(&mut self, key: K, rect: Rect<D>, deadline: u64)
    where
        K: PartialEq,
    {
        if let Some(lease) = self
            .leases
            .iter_mut()
            .find(|l| l.key == key && l.rect == rect)
        {
            lease.deadline = deadline;
            return;
        }
        self.leases.push(LeaseRecord {
            key,
            rect,
            deadline,
        });
    }

    /// Removes the lease on `(key, rect)` and returns its deadline, if
    /// one was armed.
    pub fn take_lease(&mut self, key: &K, rect: &Rect<D>) -> Option<u64>
    where
        K: PartialEq,
    {
        let i = self
            .leases
            .iter()
            .position(|l| l.key == *key && l.rect == *rect)?;
        Some(self.leases.swap_remove(i).deadline)
    }

    /// Removes and returns one lease whose deadline is `<= now`
    /// (arbitrary order), or `None` when nothing expired. The covered
    /// entry itself is untouched — callers evict it through their
    /// regular removal path, keeping side structures consistent.
    pub fn pop_expired_lease(&mut self, now: u64) -> Option<(K, Rect<D>)> {
        let i = self.leases.iter().position(|l| l.deadline <= now)?;
        let lease = self.leases.swap_remove(i);
        Some((lease.key, lease.rect))
    }

    /// Number of armed lease records (dangling ones awaiting a
    /// compaction sweep included).
    pub fn lease_count(&self) -> usize {
        self.leases.len()
    }

    /// Moves every lease record out of the tree as
    /// `(key, rect, deadline)` triples — the redistribute companion of
    /// [`PackedRTree::drain_live`], which drops leases.
    pub fn take_leases(&mut self) -> Vec<(K, Rect<D>, u64)> {
        std::mem::take(&mut self.leases)
            .into_iter()
            .map(|l| (l.key, l.rect, l.deadline))
            .collect()
    }

    /// `true` when a live entry `(key, rect)` exists in either tier.
    pub fn contains_entry(&self, key: &K, rect: &Rect<D>) -> bool
    where
        K: PartialEq,
    {
        if self.find_packed_slot(key, rect).is_some() {
            return true;
        }
        self.staged_keys
            .iter()
            .zip(&self.staged_rects)
            .enumerate()
            .any(|(i, (k, r))| k == key && r == rect && self.is_staged_live(i))
    }

    /// Re-points the lease on `(key, old)` (if any) at the entry's new
    /// rectangle, keeping lease identity in step with a move.
    fn move_lease(&mut self, key: &K, old: &Rect<D>, new: &Rect<D>)
    where
        K: PartialEq,
    {
        if let Some(lease) = self
            .leases
            .iter_mut()
            .find(|l| l.key == *key && l.rect == *old)
        {
            lease.rect = *new;
        }
    }

    /// Drops lease records whose entry no longer exists — the
    /// compaction-time sweep ([`PackedRTree::compact`] /
    /// [`PackedRTree::install`] call this after rebuilding).
    fn sweep_leases(&mut self)
    where
        K: PartialEq,
    {
        if self.leases.is_empty() {
            return;
        }
        let leases = std::mem::take(&mut self.leases);
        self.leases = leases
            .into_iter()
            .filter(|l| self.contains_entry(&l.key, &l.rect))
            .collect();
    }

    /// Deliberately flips a bit of packed `slot`'s stored curve key —
    /// a test-only hook for exercising the
    /// [`PackedValidationError::StaleCurveKey`] detector.
    #[doc(hidden)]
    pub fn debug_corrupt_curve_key(&mut self, slot: usize)
    where
        K: Clone,
    {
        let core = Arc::make_mut(&mut self.core);
        core.make_owned();
        let Cols::Owned { curve_keys, .. } = &mut core.cols else {
            unreachable!("make_owned above")
        };
        if slot < curve_keys.len() {
            curve_keys[slot] ^= 1;
        }
    }

    /// Sets the compaction trigger: the delta layer is considered
    /// oversized once it exceeds `fraction × packed_len()` entries.
    /// `0.0` compacts on any delta (rebuild-per-flush, the pre-delta
    /// behavior); large values defer compaction indefinitely. Defaults
    /// to [`DEFAULT_DELTA_FRACTION`].
    pub fn set_delta_fraction(&mut self, fraction: f64) {
        self.delta_fraction = fraction.max(0.0);
    }

    /// The configured compaction trigger fraction.
    pub fn delta_fraction(&self) -> f64 {
        self.delta_fraction
    }

    /// `true` once the delta layer exceeds the configured fraction of
    /// the packed slots — the cue to [`PackedRTree::compact`].
    pub fn needs_compaction(&self) -> bool {
        let delta = self.delta_len();
        delta > 0 && delta as f64 > self.delta_fraction * self.core.len() as f64
    }

    /// Merges the staging buffer and reclaims tombstoned slots with one
    /// fresh Hilbert bulk-load of the live entries, **inline** — the
    /// synchronous path (the [`PackedRTree::freeze`] /
    /// [`PackedRTree::install`] pair is the pause-free one). A no-op
    /// (reported as such) when the delta layer is empty.
    ///
    /// # Panics
    ///
    /// Panics while a freeze snapshot is outstanding.
    pub fn compact(&mut self) -> DeltaCompaction
    where
        K: Clone + PartialEq,
    {
        assert!(
            self.epoch.is_none(),
            "synchronous compact during an outstanding compaction snapshot"
        );
        let stats = DeltaCompaction {
            staged_absorbed: self.staged_keys.len(),
            tombstones_reclaimed: self.tombstone_count,
        };
        if stats.is_noop() {
            return stats;
        }
        let node_size = self.core.node_size;
        let fraction = self.delta_fraction;
        let leases = std::mem::take(&mut self.leases);
        let entries = self.drain_live();
        *self = Self::bulk_load_with_node_size(node_size, entries);
        self.delta_fraction = fraction;
        self.leases = leases;
        self.sweep_leases();
        stats
    }

    /// [`PackedRTree::compact`] gated by
    /// [`PackedRTree::needs_compaction`]; returns `None` when the
    /// delta was within budget — or when a freeze snapshot is
    /// outstanding (the compaction is already underway; installing it
    /// is the snapshot holder's job).
    pub fn maybe_compact(&mut self) -> Option<DeltaCompaction>
    where
        K: Clone + PartialEq,
    {
        (!self.is_compacting() && self.needs_compaction()).then(|| self.compact())
    }

    // ---- concurrent compaction: freeze / install ---------------------

    /// `true` while a [`PackedRTree::freeze`] snapshot is outstanding.
    pub fn is_compacting(&self) -> bool {
        self.epoch.is_some()
    }

    /// Freezes the current state into a [`FrozenShard`] compaction
    /// snapshot: the `Arc`-shared packed core (a reference-count bump)
    /// plus a copy of the delta layer (bounded by the compaction
    /// fraction), in `O(delta)` time — the pause-free begin of a
    /// two-phase compaction.
    ///
    /// Until [`PackedRTree::install`] (or
    /// [`PackedRTree::abort_compaction`]), the tree keeps serving
    /// exact reads and absorbing mutations: new entries stage past the
    /// frozen prefix, packed removals tombstone as usual, and removals
    /// of frozen staged entries retire them in place
    /// ([`DeltaRemoval::Retired`]) — every post-freeze removal is
    /// re-applied to the merged core at install.
    ///
    /// # Panics
    ///
    /// Panics if a snapshot is already outstanding.
    pub fn freeze(&mut self) -> FrozenShard<K, D>
    where
        K: Clone,
    {
        assert!(
            self.epoch.is_none(),
            "freeze while a compaction snapshot is already outstanding"
        );
        self.epoch = Some(CompactionEpoch {
            frozen_staged_len: self.staged_keys.len(),
            frozen_tombstones: self.tombstones.clone(),
            frozen_tombstone_count: self.tombstone_count,
            staged_dead: vec![0u64; self.staged_keys.len().div_ceil(64)],
            staged_dead_count: 0,
        });
        FrozenShard {
            core: Arc::clone(&self.core),
            staged_keys: self.staged_keys.clone(),
            staged_rects: self.staged_rects.clone(),
            tombstones: self.tombstones.clone(),
            tombstone_count: self.tombstone_count,
            delta_fraction: self.delta_fraction,
        }
    }

    /// A point-in-time read snapshot as a [`FrozenShard`], **without**
    /// starting a compaction epoch: `&self`, no outstanding-freeze
    /// assertion, composable with an in-flight [`PackedRTree::freeze`]
    /// (retired staged entries are filtered out so the snapshot holds
    /// exactly the live entry set). Cost is an `Arc` bump on the packed
    /// core plus a copy of the delta layer — `O(delta)`, like `freeze`.
    ///
    /// This is the publication primitive for lock-free readers: an
    /// owner produces a snapshot after each batch of mutations, shares
    /// it behind an `Arc`, and readers query it with
    /// [`FrozenShard::for_each_containing`] while the owner keeps
    /// writing. The snapshot is also valid [`FrozenShard::merge`]
    /// input, but unlike `freeze` it leaves no epoch behind, so it must
    /// not be fed to [`PackedRTree::install`].
    pub fn snapshot(&self) -> FrozenShard<K, D>
    where
        K: Clone,
    {
        // Empty delta — the steady state between churn bursts — is an
        // `Arc` bump and nothing else: no Vec clones, no allocation.
        if self.staged_keys.is_empty() && self.tombstone_count == 0 {
            return FrozenShard {
                core: Arc::clone(&self.core),
                staged_keys: Vec::new(),
                staged_rects: Vec::new(),
                tombstones: Vec::new(),
                tombstone_count: 0,
                delta_fraction: self.delta_fraction,
            };
        }
        let (staged_keys, staged_rects) = match &self.epoch {
            Some(epoch) if epoch.staged_dead_count > 0 => {
                let mut keys = Vec::with_capacity(self.staged_keys.len());
                let mut rects = Vec::with_capacity(self.staged_rects.len());
                for (i, (k, r)) in self.staged_keys.iter().zip(&self.staged_rects).enumerate() {
                    if !epoch.is_staged_dead(i) {
                        keys.push(k.clone());
                        rects.push(*r);
                    }
                }
                (keys, rects)
            }
            _ => (self.staged_keys.clone(), self.staged_rects.clone()),
        };
        FrozenShard {
            core: Arc::clone(&self.core),
            staged_keys,
            staged_rects,
            tombstones: self.tombstones.clone(),
            tombstone_count: self.tombstone_count,
            delta_fraction: self.delta_fraction,
        }
    }

    /// Completes a two-phase compaction: swaps in `merged` (the
    /// [`FrozenShard::merge`] result of this tree's own freeze),
    /// re-applies every removal that landed mid-compaction to the
    /// merged core, and carries the second-generation staged entries
    /// forward as the new delta layer. The on-path cost is
    /// `O(mutations since the freeze)`, not `O(N)`.
    ///
    /// Reports what the *merge* absorbed (the frozen delta), mirroring
    /// [`PackedRTree::compact`].
    ///
    /// # Panics
    ///
    /// Panics if no freeze snapshot is outstanding. Installing a tree
    /// that is not the merge of this tree's own latest freeze loses
    /// entries silently — don't.
    pub fn install(&mut self, merged: PackedRTree<K, D>) -> DeltaCompaction
    where
        K: Clone + PartialEq,
    {
        let epoch = self
            .epoch
            .take()
            .expect("install without an outstanding freeze");
        let stats = DeltaCompaction {
            staged_absorbed: epoch.frozen_staged_len,
            tombstones_reclaimed: epoch.frozen_tombstone_count,
        };
        // Collect the removals the merge never saw, from the old tiers
        // *before* swapping them out: packed slots tombstoned since
        // the freeze, and frozen staged entries retired since.
        let mut fixups: Vec<(K, Rect<D>)> = Vec::with_capacity(
            self.tombstone_count - epoch.frozen_tombstone_count + epoch.staged_dead_count,
        );
        let core_keys = self.core.keys();
        let core_rects = self.core.rects();
        for (w, &word) in self.tombstones.iter().enumerate() {
            let frozen = epoch.frozen_tombstones.get(w).copied().unwrap_or(0);
            let mut fresh = word & !frozen;
            while fresh != 0 {
                let slot = w * 64 + fresh.trailing_zeros() as usize;
                fixups.push((core_keys[slot].clone(), core_rects[slot]));
                fresh &= fresh - 1;
            }
        }
        for (w, &word) in epoch.staged_dead.iter().enumerate() {
            let mut dead = word;
            while dead != 0 {
                let i = w * 64 + dead.trailing_zeros() as usize;
                fixups.push((self.staged_keys[i].clone(), self.staged_rects[i]));
                dead &= dead - 1;
            }
        }
        // The second-generation delta survives the swap (re-indexed
        // from zero; stage-index-tracking callers re-stage from here).
        let gen2_keys = self.staged_keys.split_off(epoch.frozen_staged_len);
        let gen2_rects = self.staged_rects.split_off(epoch.frozen_staged_len);
        let fraction = self.delta_fraction;
        let leases = std::mem::take(&mut self.leases);
        *self = merged;
        self.delta_fraction = fraction;
        self.leases = leases;
        self.staged_mbr = Rect::union_all(gen2_rects.iter());
        self.staged_keys = gen2_keys;
        self.staged_rects = gen2_rects;
        for (key, rect) in &fixups {
            // Straight to the packed tier: every fix-up is a
            // frozen-region entry, and the merge folded each of those
            // into the new core exactly once.
            match self.find_packed_slot(key, rect) {
                Some(slot) => {
                    self.tombstone(slot);
                }
                None => debug_assert!(false, "mid-compaction removal lost by the merge"),
            }
        }
        self.sweep_leases();
        stats
    }

    /// Abandons an outstanding freeze: the merge result (if any) is
    /// simply never installed, and the live tree — which remained
    /// complete throughout — drops the epoch bookkeeping. Frozen
    /// staged entries retired mid-compaction are physically removed
    /// here, which **renumbers staging indexes**; callers tracking
    /// them must rebuild their side structures (the sharded oracle
    /// only aborts right before a full redistribute).
    pub fn abort_compaction(&mut self) {
        let Some(epoch) = self.epoch.take() else {
            return;
        };
        if epoch.staged_dead_count == 0 {
            return;
        }
        let mut write = 0usize;
        for read in 0..self.staged_keys.len() {
            if !epoch.is_staged_dead(read) {
                self.staged_keys.swap(read, write);
                self.staged_rects.swap(read, write);
                write += 1;
            }
        }
        self.staged_keys.truncate(write);
        self.staged_rects.truncate(write);
        self.staged_mbr = Rect::union_all(self.staged_rects.iter());
    }

    /// Moves every live entry (packed minus tombstones, plus live
    /// staged) out of the tree, leaving it empty. An outstanding
    /// freeze snapshot is aborted first (the snapshot itself, owning
    /// the shared core, stays readable by its holder). This is the
    /// redistribution primitive of sharded consumers (rebalance =
    /// drain every shard, re-split, bulk-load). `Clone` is only
    /// exercised when a snapshot still shares the core; the common
    /// unique-`Arc` case moves keys.
    pub fn drain_live(&mut self) -> Vec<(K, Rect<D>)>
    where
        K: Clone,
    {
        self.abort_compaction();
        let core = Arc::make_mut(&mut self.core);
        core.make_owned();
        let (keys, rects) = {
            let Cols::Owned {
                keys,
                rects,
                curve_keys,
                levels,
            } = &mut core.cols
            else {
                unreachable!("make_owned above")
            };
            levels.clear();
            curve_keys.clear();
            (std::mem::take(keys), std::mem::take(rects))
        };
        core.world = None;
        let staged_keys = std::mem::take(&mut self.staged_keys);
        let staged_rects = std::mem::take(&mut self.staged_rects);
        let tombstones = std::mem::take(&mut self.tombstones);
        self.tombstone_count = 0;
        self.staged_mbr = None;
        // The entries leave the tree, so the leases covering them die
        // with it; callers re-arming after a redistribute collect them
        // first via [`PackedRTree::take_leases`].
        self.leases.clear();
        let mut out: Vec<(K, Rect<D>)> = Vec::with_capacity(keys.len() + staged_keys.len());
        for (slot, (k, r)) in keys.into_iter().zip(rects).enumerate() {
            if !bit_set(&tombstones, slot) {
                out.push((k, r));
            }
        }
        out.extend(staged_keys.into_iter().zip(staged_rects));
        out
    }

    /// Visits every entry whose rectangle contains `point` — the hot
    /// path of every matching oracle. Iterative (explicit fixed-size
    /// stack, zero heap allocation) with branchless bitmask scans over
    /// the contiguous MBR arrays.
    pub fn for_each_containing<'a, F>(&'a self, point: &Point<D>, visit: F)
    where
        F: FnMut(&'a K, &'a Rect<D>),
    {
        self.traverse(&ContainsPoint(point), visit);
    }

    /// Visits every entry whose rectangle intersects `window`; same
    /// allocation-free traversal as
    /// [`PackedRTree::for_each_containing`].
    pub fn for_each_intersecting<'a, F>(&'a self, window: &Rect<D>, visit: F)
    where
        F: FnMut(&'a K, &'a Rect<D>),
    {
        self.traverse(&IntersectsRect(window), visit);
    }

    /// Like [`PackedRTree::for_each_intersecting`], but the visitor
    /// returns `false` to abort the traversal early. This is the
    /// primitive for budgeted collection — "gather up to `N` entries
    /// in this window, stop if there are more" — where the plain
    /// visitor would pay for the full result set just to discard it.
    pub fn for_each_intersecting_while<'a, F>(&'a self, window: &Rect<D>, visit: F)
    where
        F: FnMut(&'a K, &'a Rect<D>) -> bool,
    {
        self.traverse_while(&IntersectsRect(window), visit);
    }

    /// Iterative pruned traversal over **both tiers**. `mask_of` maps a
    /// slice of ≤ 32 rectangles to a hit bitmask; nodes with set bits
    /// are descended, live entries with set bits are emitted, and the
    /// staging buffer is then scanned with the same bitmask chunks.
    fn traverse<'a>(&'a self, mask_of: &impl MaskOf<D>, mut emit: impl FnMut(&'a K, &'a Rect<D>)) {
        self.traverse_while(mask_of, |k, r| {
            emit(k, r);
            true
        });
    }

    /// [`PackedRTree::traverse`] with an abortable visitor: emitting
    /// `false` unwinds the whole traversal immediately (the staging
    /// scan included).
    fn traverse_while<'a>(
        &'a self,
        mask_of: &impl MaskOf<D>,
        mut emit: impl FnMut(&'a K, &'a Rect<D>) -> bool,
    ) {
        let keys = self.core.keys();
        let rects = self.core.rects();
        if self.traverse_packed_while(mask_of, &mut |slot| emit(&keys[slot], &rects[slot])) {
            self.scan_staged_while(mask_of, &mut emit);
        }
    }

    /// The packed tier of [`PackedRTree::traverse_while`], emitting
    /// live slot indexes. Shared with the frozen-snapshot read path via
    /// [`traverse_core_while`]. Returns `false` when the visitor
    /// aborted.
    fn traverse_packed_while(
        &self,
        mask_of: &impl MaskOf<D>,
        emit: &mut impl FnMut(usize) -> bool,
    ) -> bool {
        traverse_core_while(&self.core, &self.tombstones, mask_of, emit)
    }

    /// The delta tier of [`PackedRTree::traverse_while`]: the staging
    /// buffer scanned in ≤ 32-wide chunks with the same branchless
    /// bitmask the leaf level uses (retired frozen entries filtered at
    /// emission, like tombstones on the packed tier). Returns `false`
    /// when the visitor aborted.
    fn scan_staged_while<'a>(
        &'a self,
        mask_of: &impl MaskOf<D>,
        emit: &mut impl FnMut(&'a K, &'a Rect<D>) -> bool,
    ) -> bool {
        for (chunk_idx, chunk) in self.staged_rects.chunks(MAX_NODE_SIZE).enumerate() {
            let mut mask = mask_of.mask(chunk);
            while mask != 0 {
                let i = chunk_idx * MAX_NODE_SIZE + mask.trailing_zeros() as usize;
                if self.is_staged_live(i) && !emit(&self.staged_keys[i], &self.staged_rects[i]) {
                    return false;
                }
                mask &= mask - 1;
            }
        }
        true
    }

    /// Visits, for every probe in `points`, each entry whose rectangle
    /// contains it — in **one joint descent** of the tree instead of
    /// `points.len()` independent root-to-leaf walks.
    ///
    /// The traversal is node-major: each node MBR is loaded once and
    /// streamed against the batch's surviving probe subset (branchless
    /// filtering into reused index buffers), instead of every probe
    /// re-reading the level arrays on its own. The comparison count is
    /// identical to per-probe descents; the win is pure memory
    /// behavior, and it grows with batch size and probe locality
    /// (sorting probes along a space-filling curve first makes the
    /// surviving subsets coherent).
    ///
    /// Hits are delivered as `(probe_index, key, rect)`; probe order
    /// within a node follows the batch, but no global emission order is
    /// guaranteed. Probes are independent — duplicates are fine.
    ///
    /// # Panics
    ///
    /// Panics if `points.len() > u32::MAX` (probe indexes are `u32`,
    /// matching the tree's own 2^32-entry limit).
    pub fn for_each_containing_batch<'a, F>(&'a self, points: &[Point<D>], mut emit: F)
    where
        F: FnMut(u32, &'a K, &'a Rect<D>),
    {
        assert!(
            points.len() <= u32::MAX as usize,
            "batch is limited to 2^32 probes"
        );
        if let Some(root) = self.core.root_mbr() {
            let active: Vec<u32> = (0..points.len() as u32)
                .filter(|&pi| root.contains_point_branchless(&points[pi as usize]))
                .collect();
            if !active.is_empty() {
                let keys = self.core.keys();
                let rects = self.core.rects();
                let mut pool: Vec<Vec<u32>> = Vec::new();
                self.walk_batch(
                    self.core.num_levels() - 1,
                    0,
                    &active,
                    points,
                    keys,
                    rects,
                    &mut pool,
                    &mut emit,
                );
            }
        }
        // Delta tier: every probe against the staging buffer (the root
        // MBR filter above does not apply — staged entries may lie
        // outside it).
        if self.staged_rects.is_empty() {
            return;
        }
        for (pi, point) in points.iter().enumerate() {
            for (chunk_idx, chunk) in self.staged_rects.chunks(MAX_NODE_SIZE).enumerate() {
                let mut mask = mask_containing(chunk, point);
                while mask != 0 {
                    let i = chunk_idx * MAX_NODE_SIZE + mask.trailing_zeros() as usize;
                    if self.is_staged_live(i) {
                        emit(pi as u32, &self.staged_keys[i], &self.staged_rects[i]);
                    }
                    mask &= mask - 1;
                }
            }
        }
    }

    /// One frame of the joint batch descent: `active` holds the probe
    /// indexes already known to lie inside node `(level, node)`'s MBR.
    /// `keys`/`rects` are the hoisted entry columns (one accessor
    /// resolution per batch, not per frame).
    #[allow(clippy::too_many_arguments)]
    fn walk_batch<'a, F>(
        &'a self,
        level: usize,
        node: usize,
        active: &[u32],
        points: &[Point<D>],
        keys: &'a [K],
        rects: &'a [Rect<D>],
        pool: &mut Vec<Vec<u32>>,
        emit: &mut F,
    ) where
        F: FnMut(u32, &'a K, &'a Rect<D>),
    {
        let node_size = self.core.node_size;
        let lo = node * node_size;
        if level == 0 {
            let hi = (lo + node_size).min(rects.len());
            let node_rects = &rects[lo..hi];
            for &pi in active {
                let mut mask = mask_containing(node_rects, &points[pi as usize]);
                while mask != 0 {
                    let slot = lo + mask.trailing_zeros() as usize;
                    if self.is_live(slot) {
                        emit(pi, &keys[slot], &rects[slot]);
                    }
                    mask &= mask - 1;
                }
            }
        } else {
            let children = self.core.level_group(level - 1, node);
            let mut subset = pool.pop().unwrap_or_default();
            for ci in 0..children.len() {
                subset.clear();
                for &pi in active {
                    if children.contains_point(ci, &points[pi as usize]) {
                        subset.push(pi);
                    }
                }
                if !subset.is_empty() {
                    self.walk_batch(level - 1, lo + ci, &subset, points, keys, rects, pool, emit);
                }
            }
            subset.clear();
            pool.push(subset);
        }
    }

    /// Keys whose rectangle contains `point`. Prefer
    /// [`PackedRTree::for_each_containing`] on hot paths; this
    /// convenience form allocates the result vector.
    pub fn search_point(&self, point: &Point<D>) -> Vec<&K> {
        let mut out = Vec::new();
        self.for_each_containing(point, |k, _| out.push(k));
        out
    }

    /// Keys whose rectangle intersects `window`.
    pub fn search_intersecting(&self, window: &Rect<D>) -> Vec<&K> {
        let mut out = Vec::new();
        self.for_each_intersecting(window, |k, _| out.push(k));
        out
    }

    /// Checks the packed-level invariants — implicit-topology level
    /// lengths, exact node MBRs at every level, array consistency,
    /// curve keys fresh for their slot's current rectangle — plus the
    /// delta layer's: staged arrays in step, tombstone count matching
    /// the bitmap, staged MBR covering every staged entry.
    ///
    /// # Errors
    ///
    /// Returns the first [`PackedValidationError`] found.
    pub fn validate(&self) -> Result<(), PackedValidationError> {
        let core = &*self.core;
        if core.keys().len() != core.rects().len() {
            return Err(PackedValidationError::Inconsistent);
        }
        if !core.curve_keys().is_empty() && core.curve_keys().len() != core.len() {
            return Err(PackedValidationError::Inconsistent);
        }
        if let Cols::Flat(flat) = &core.cols {
            if flat.verify_bulk().is_err() {
                return Err(PackedValidationError::CorruptBuffer);
            }
        }
        if self.staged_keys.len() != self.staged_rects.len() {
            return Err(PackedValidationError::DeltaInconsistent);
        }
        let popcount: usize = self
            .tombstones
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum();
        if popcount != self.tombstone_count {
            return Err(PackedValidationError::DeltaInconsistent);
        }
        if !self.tombstones.is_empty() && self.tombstones.len() != core.len().div_ceil(64) {
            return Err(PackedValidationError::DeltaInconsistent);
        }
        match &self.staged_mbr {
            None if !self.staged_rects.is_empty() => {
                return Err(PackedValidationError::DeltaInconsistent);
            }
            Some(mbr) if !self.staged_rects.iter().all(|r| mbr.contains_rect(r)) => {
                return Err(PackedValidationError::DeltaInconsistent);
            }
            _ => {}
        }
        if let Some(epoch) = &self.epoch {
            // Mid-compaction bookkeeping: the frozen prefix exists, the
            // dead bitmap covers exactly it, its count matches, and
            // every tombstone frozen at the freeze is still set (bits
            // are never cleared mid-epoch).
            let dead_pop: usize = epoch
                .staged_dead
                .iter()
                .map(|w| w.count_ones() as usize)
                .sum();
            if epoch.frozen_staged_len > self.staged_keys.len()
                || epoch.staged_dead.len() != epoch.frozen_staged_len.div_ceil(64)
                || dead_pop != epoch.staged_dead_count
                || epoch.staged_dead_count > epoch.frozen_staged_len
            {
                return Err(PackedValidationError::DeltaInconsistent);
            }
            if (0..self.staged_keys.len())
                .any(|i| i >= epoch.frozen_staged_len && epoch.is_staged_dead(i))
            {
                return Err(PackedValidationError::DeltaInconsistent);
            }
            let frozen_ok = epoch
                .frozen_tombstones
                .iter()
                .enumerate()
                .all(|(w, &bits)| bits & !self.tombstones.get(w).copied().unwrap_or(0) == 0);
            if !frozen_ok || epoch.frozen_tombstone_count > self.tombstone_count {
                return Err(PackedValidationError::DeltaInconsistent);
            }
        }
        if core.len() == 0 {
            return if core.num_levels() == 0 {
                Ok(())
            } else {
                Err(PackedValidationError::Inconsistent)
            };
        }
        if core.num_levels() == 0 || core.level_nodes(core.num_levels() - 1) != 1 {
            return Err(PackedValidationError::Inconsistent);
        }
        // Per-node MBR exactness, checked in the *stored* domain: for
        // an exact layout every node must equal the exact union of
        // what it covers; for a quantized layout it must equal the
        // outward-rounded f32 image of that union (quantization is
        // monotone, so the f32 union of stored children matches the
        // quantized exact union — no information is lost to check
        // against).
        let node_size = core.node_size;
        let entry_rects = core.rects();
        let mut below_len = core.len();
        for level in 0..core.num_levels() {
            let expected_nodes = below_len.div_ceil(node_size);
            let found = core.level_nodes(level);
            if found != expected_nodes {
                return Err(PackedValidationError::WrongLevelLength {
                    level,
                    found,
                    expected: expected_nodes,
                });
            }
            for node in 0..found {
                let expected = if level == 0 {
                    let lo = node * node_size;
                    let hi = (lo + node_size).min(entry_rects.len());
                    let exact = Rect::union_all(entry_rects[lo..hi].iter())
                        .expect("covered range is non-empty");
                    if core.is_quantized() {
                        QRect::quantize(&exact).widen()
                    } else {
                        exact
                    }
                } else {
                    core.level_group(level - 1, node)
                        .union_widened()
                        .expect("covered range is non-empty")
                };
                if core.node_mbr(level, node) != expected {
                    return Err(PackedValidationError::WrongMbr { level, node });
                }
            }
            below_len = found;
        }
        // Retained curve keys must stay fresh for their slot's current
        // rectangle: bulk loads derive them at pack time and
        // [`PackedRTree::update`] re-derives on every in-place move,
        // so a mismatch means a move skipped its re-key and a later
        // sorted-splice merge would order the entry by a stale
        // position.
        if !core.curve_keys().is_empty() {
            if let Some(world) = &core.world {
                let mapper = GridMapper::new(world);
                for (slot, rect) in core.rects().iter().enumerate() {
                    if core.curve_keys()[slot] != mapper.key(rect) as u32 {
                        return Err(PackedValidationError::StaleCurveKey { slot });
                    }
                }
            }
        }
        Ok(())
    }
}

impl<K: SnapshotKey, const D: usize> PackedRTree<K, D> {
    /// Serializes the whole tree — packed core, live staged delta, and
    /// tombstone bitmap — into one flat, versioned, checksummed buffer
    /// ([`SnapshotOptions::default`] layout: exact f64 MBRs, natural
    /// fanout). A mid-churn tree restores exactly: [`PackedRTree::load`]
    /// reproduces the live entry set, staged tier included.
    pub fn save(&self) -> Vec<u8> {
        self.save_with_options(SnapshotOptions::default())
    }

    /// [`PackedRTree::save`] with an explicit hot-layout choice.
    pub fn save_with_options(&self, options: SnapshotOptions) -> Vec<u8> {
        self.save_with(options, |k| (*k).to_raw())
    }

    /// Restores a tree from [`PackedRTree::save`] bytes, zero-copy:
    /// the packed columns stay in the (adopted) buffer and queries run
    /// directly off it; only the staged delta and tombstones are
    /// copied out. Cheap structural validation plus a checksum over
    /// the small metadata sections runs eagerly; the bulk payload
    /// checksum is deferred to [`PackedRTree::verify_snapshot`] (or
    /// [`PackedRTree::load_verified`]) so the restore itself stays in
    /// the millisecond range at hundreds of thousands of entries.
    ///
    /// # Errors
    ///
    /// Any malformed input — wrong magic, unsupported version or
    /// layout flags, mismatched dimensionality, truncation anywhere,
    /// a failed checksum, or structurally impossible counts — returns
    /// a [`SnapshotError`]; no input panics.
    pub fn load(bytes: Vec<u8>) -> Result<Self, SnapshotError>
    where
        K: Send + Sync + 'static,
    {
        Self::load_with(bytes, K::from_raw)
    }

    /// [`PackedRTree::load`] plus the deferred bulk-payload checksum —
    /// full integrity at load time, for untrusted or long-at-rest
    /// buffers.
    pub fn load_verified(bytes: Vec<u8>) -> Result<Self, SnapshotError>
    where
        K: Send + Sync + 'static,
    {
        let tree = Self::load(bytes)?;
        tree.verify_snapshot()?;
        Ok(tree)
    }
}

impl<K, const D: usize> PackedRTree<K, D> {
    /// [`PackedRTree::save`] for key types outside the
    /// [`SnapshotKey`] impl list: `to_raw` maps each key to its 64-bit
    /// wire form.
    ///
    /// Tree buffer layout (all little-endian, sections at 64-byte
    /// boundaries): a `"DRTT"` header — magic u32, version u16, flags
    /// u16, dims u32, reserved u32, core length u64, staged count u64,
    /// tombstone words u64, tombstone count u64, delta checksum u64,
    /// delta fraction f64-bits — then the serialized core
    /// (`PackedCore::to_bytes_with`), the live staged rectangles,
    /// the staged raw keys, and the tombstone bitmap.
    pub fn save_with(&self, options: SnapshotOptions, to_raw: impl Fn(&K) -> u64) -> Vec<u8> {
        let core_bytes = self.core.to_bytes_with(options, &|k| to_raw(k));
        debug_assert_eq!(core_bytes.len() % bytes::SECTION_ALIGN, 0);
        // Serialize the *live* logical view: retired frozen staged
        // entries are dropped, so the restored tree equals the live
        // entry set with no epoch to carry.
        let live: Vec<usize> = (0..self.staged_keys.len())
            .filter(|&i| self.is_staged_live(i))
            .collect();
        let mut out = Vec::with_capacity(
            HEADER_LEN
                + core_bytes.len()
                + live.len() * (std::mem::size_of::<Rect<D>>() + 8)
                + self.tombstones.len() * 8
                + 3 * bytes::SECTION_ALIGN,
        );
        out.resize(HEADER_LEN, 0);
        out.extend_from_slice(&core_bytes);
        let delta_start = out.len();
        for &i in &live {
            out.extend_from_slice(bytes::as_bytes(std::slice::from_ref(&self.staged_rects[i])));
        }
        bytes::pad_to_section(&mut out);
        for &i in &live {
            out.extend_from_slice(&to_raw(&self.staged_keys[i]).to_le_bytes());
        }
        bytes::pad_to_section(&mut out);
        out.extend_from_slice(bytes::as_bytes(&self.tombstones));
        bytes::pad_to_section(&mut out);
        let delta_checksum = bytes::checksum(&out[delta_start..]);
        let header = &mut out[..HEADER_LEN];
        write_u32(header, 0, TREE_MAGIC);
        write_u16(header, 4, SNAPSHOT_VERSION);
        write_u16(header, 6, 0);
        write_u32(header, 8, D as u32);
        write_u32(header, 12, 0);
        write_u64(header, 16, core_bytes.len() as u64);
        write_u64(header, 24, live.len() as u64);
        write_u64(header, 32, self.tombstones.len() as u64);
        write_u64(header, 40, self.tombstone_count as u64);
        write_u64(header, 48, delta_checksum);
        write_u64(header, 56, self.delta_fraction.to_bits());
        out
    }

    /// [`PackedRTree::load`] for key types outside the
    /// [`SnapshotKey`] impl list: `from_raw` rebuilds a key from its
    /// 64-bit wire form.
    pub fn load_with<F>(bytes: Vec<u8>, from_raw: F) -> Result<Self, SnapshotError>
    where
        F: Fn(u64) -> K + Send + Sync + 'static,
    {
        let buf = AlignedBytes::adopt(bytes);
        let length = buf.len();
        Self::load_shared(&buf, 0, length, Arc::new(from_raw))
    }

    /// Restores a tree from `length` bytes at `offset` of a shared
    /// buffer — the multi-tree form behind the sharded oracle's
    /// restore, where one `Arc<AlignedBytes>` backs every shard's core
    /// with no per-shard copy. `offset` must be 64-byte aligned.
    pub fn load_shared(
        buf: &Arc<AlignedBytes>,
        offset: usize,
        length: usize,
        from_raw: Arc<dyn Fn(u64) -> K + Send + Sync>,
    ) -> Result<Self, SnapshotError> {
        let whole = buf.as_slice();
        let end = offset
            .checked_add(length)
            .ok_or(SnapshotError::Corrupt("tree range overflows"))?;
        if end > whole.len() {
            return Err(SnapshotError::Truncated {
                needed: end,
                have: whole.len(),
            });
        }
        if !offset.is_multiple_of(bytes::SECTION_ALIGN) {
            return Err(SnapshotError::Corrupt("tree offset not 64-byte aligned"));
        }
        let data = &whole[offset..end];
        if data.len() < HEADER_LEN {
            return Err(SnapshotError::Truncated {
                needed: HEADER_LEN,
                have: data.len(),
            });
        }
        let magic = bytes::read_u32(data, 0).expect("header bounds checked");
        if magic != TREE_MAGIC {
            return Err(SnapshotError::BadMagic { found: magic });
        }
        let version = bytes::read_u16(data, 4).expect("header bounds checked");
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::WrongVersion {
                found: version,
                supported: SNAPSHOT_VERSION,
            });
        }
        if bytes::read_u16(data, 6).expect("header bounds checked") != 0 {
            return Err(SnapshotError::Corrupt("unknown tree flags"));
        }
        let dims = bytes::read_u32(data, 8).expect("header bounds checked");
        if dims as usize != D {
            return Err(SnapshotError::WrongDims {
                found: dims,
                expected: D as u32,
            });
        }
        let overflow = |_| SnapshotError::Corrupt("header count overflows");
        let core_len = usize::try_from(bytes::read_u64(data, 16).expect("header bounds checked"))
            .map_err(overflow)?;
        if !core_len.is_multiple_of(bytes::SECTION_ALIGN) {
            return Err(SnapshotError::Corrupt("core length not 64-byte aligned"));
        }
        let staged_len = usize::try_from(bytes::read_u64(data, 24).expect("header bounds checked"))
            .map_err(overflow)?;
        let tombstone_words =
            usize::try_from(bytes::read_u64(data, 32).expect("header bounds checked"))
                .map_err(overflow)?;
        let tombstone_count =
            usize::try_from(bytes::read_u64(data, 40).expect("header bounds checked"))
                .map_err(overflow)?;
        // Bound the counts by what the buffer could physically hold
        // *before* any multiplication, so attacker-controlled headers
        // cannot overflow the offset arithmetic.
        if staged_len > length / 16 {
            return Err(SnapshotError::Corrupt("staged count exceeds buffer"));
        }
        if tombstone_words > length / 8 {
            return Err(SnapshotError::Corrupt("tombstone bitmap exceeds buffer"));
        }
        let delta_checksum = bytes::read_u64(data, 48).expect("header bounds checked");
        let delta_fraction =
            f64::from_bits(bytes::read_u64(data, 56).expect("header bounds checked"));
        if delta_fraction.is_nan() || delta_fraction < 0.0 {
            return Err(SnapshotError::Corrupt("invalid delta fraction"));
        }
        let rects_off = HEADER_LEN
            .checked_add(core_len)
            .ok_or(SnapshotError::Corrupt("core length overflows"))?;
        let rects_len = staged_len * std::mem::size_of::<Rect<D>>();
        let keys_off = bytes::align_up(
            rects_off
                .checked_add(rects_len)
                .ok_or(SnapshotError::Corrupt("staged bytes overflow"))?,
        );
        let keys_len = staged_len * 8;
        let tomb_off = bytes::align_up(keys_off + keys_len);
        let tomb_len = tombstone_words * 8;
        let total = bytes::align_up(tomb_off + tomb_len);
        if total != length {
            return Err(SnapshotError::Truncated {
                needed: total,
                have: length,
            });
        }
        if bytes::checksum(&data[rects_off..]) != delta_checksum {
            return Err(SnapshotError::ChecksumMismatch);
        }
        let core = PackedCore::from_flat(buf, offset + HEADER_LEN, core_len, &from_raw)?;
        let misaligned = |_| SnapshotError::Corrupt("misaligned section");
        let staged_rects: Vec<Rect<D>> = bytes::cast_slice::<Rect<D>>(
            &whole[offset + rects_off..offset + rects_off + rects_len],
        )
        .map_err(misaligned)?
        .to_vec();
        let staged_keys: Vec<K> =
            bytes::cast_slice::<u64>(&whole[offset + keys_off..offset + keys_off + keys_len])
                .map_err(misaligned)?
                .iter()
                .map(|&raw| (from_raw)(raw))
                .collect();
        let tombstones: Vec<u64> =
            bytes::cast_slice::<u64>(&whole[offset + tomb_off..offset + tomb_off + tomb_len])
                .map_err(misaligned)?
                .to_vec();
        let popcount: usize = tombstones.iter().map(|w| w.count_ones() as usize).sum();
        if popcount != tombstone_count {
            return Err(SnapshotError::Corrupt(
                "tombstone count disagrees with bitmap",
            ));
        }
        if !tombstones.is_empty() {
            if tombstones.len() != core.len().div_ceil(64) {
                return Err(SnapshotError::Corrupt("tombstone bitmap width mismatch"));
            }
            let used = core.len() - (tombstones.len() - 1) * 64;
            if used < 64 && (*tombstones.last().expect("non-empty") >> used) != 0 {
                return Err(SnapshotError::Corrupt(
                    "tombstone bit past the packed range",
                ));
            }
        }
        let staged_mbr = Rect::union_all(staged_rects.iter());
        Ok(Self {
            core: Arc::new(core),
            staged_keys,
            staged_rects,
            tombstones,
            tombstone_count,
            staged_mbr,
            delta_fraction,
            epoch: None,
            leases: Vec::new(),
        })
    }

    /// Runs the deferred bulk-payload checksum of a flat-buffer core —
    /// the integrity check [`PackedRTree::load`] postpones to keep
    /// cold-start in budget. A no-op `Ok` on trees with owned columns.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::ChecksumMismatch`] when the entry columns were
    /// corrupted after the save.
    pub fn verify_snapshot(&self) -> Result<(), SnapshotError> {
        match &self.core.cols {
            Cols::Flat(flat) => flat.verify_bulk(),
            Cols::Owned { .. } => Ok(()),
        }
    }

    /// Overwrites one stored node MBR, bypassing every invariant —
    /// lets tests prove `validate` catches stale MBRs.
    #[cfg(test)]
    fn corrupt_level_mbr(&mut self, level: usize, node: usize, rect: Rect<D>)
    where
        K: Clone,
    {
        let core = Arc::make_mut(&mut self.core);
        core.make_owned();
        let Cols::Owned { levels, .. } = &mut core.cols else {
            unreachable!("make_owned above")
        };
        levels[level][node] = rect;
    }
}

impl<K, const D: usize> SpatialIndex<K, D> for PackedRTree<K, D> {
    fn len(&self) -> usize {
        PackedRTree::len(self)
    }

    fn for_each_containing<'a, F>(&'a self, point: &Point<D>, visit: F)
    where
        F: FnMut(&'a K, &'a Rect<D>),
        K: 'a,
    {
        PackedRTree::for_each_containing(self, point, visit);
    }

    fn for_each_intersecting<'a, F>(&'a self, window: &Rect<D>, visit: F)
    where
        F: FnMut(&'a K, &'a Rect<D>),
        K: 'a,
    {
        PackedRTree::for_each_intersecting(self, window, visit);
    }

    fn for_each_containing_batch<'a, F>(&'a self, points: &[Point<D>], visit: F)
    where
        F: FnMut(u32, &'a K, &'a Rect<D>),
        K: 'a,
    {
        PackedRTree::for_each_containing_batch(self, points, visit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize) -> Vec<(usize, Rect<2>)> {
        (0..n)
            .map(|i| {
                let x = (i % 32) as f64 * 3.0;
                let y = (i / 32) as f64 * 3.0;
                (i, Rect::new([x, y], [x + 2.0, y + 2.0]))
            })
            .collect()
    }

    #[test]
    fn empty_tree() {
        let tree: PackedRTree<u32, 2> = PackedRTree::bulk_load(Vec::new());
        assert!(tree.is_empty());
        assert_eq!(tree.height(), 1);
        assert_eq!(tree.mbr(), None);
        assert!(tree.search_point(&Point::new([0.0, 0.0])).is_empty());
        tree.validate().unwrap();
    }

    #[test]
    fn build_sizes_and_completeness() {
        for n in [1usize, 2, 15, 16, 17, 256, 257, 1000] {
            let tree = PackedRTree::bulk_load(grid(n));
            assert_eq!(tree.len(), n);
            tree.validate().unwrap_or_else(|e| panic!("n={n}: {e}"));
            for (k, r) in grid(n) {
                let hits = tree.search_point(&r.center());
                assert!(hits.contains(&&k), "n={n}: entry {k} lost");
            }
        }
    }

    #[test]
    fn matches_linear_scan_on_windows() {
        let entries = grid(500);
        let tree = PackedRTree::bulk_load_with_node_size(8, entries.clone());
        for window in [
            Rect::new([0.0, 0.0], [10.0, 10.0]),
            Rect::new([40.0, 10.0], [70.0, 30.0]),
            Rect::new([500.0, 500.0], [600.0, 600.0]),
        ] {
            let mut got: Vec<usize> = tree
                .search_intersecting(&window)
                .into_iter()
                .copied()
                .collect();
            got.sort_unstable();
            let mut want: Vec<usize> = entries
                .iter()
                .filter(|(_, r)| r.intersects(&window))
                .map(|(k, _)| *k)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn update_refits_ancestors() {
        let mut tree = PackedRTree::bulk_load_with_node_size(4, grid(200));
        let slot = tree.slot_of(&77).expect("entry 77 exists");
        let moved = Rect::new([900.0, 900.0], [901.0, 901.0]);
        tree.update(slot, moved);
        tree.validate().unwrap();
        let hits = tree.search_point(&Point::new([900.5, 900.5]));
        assert_eq!(hits, vec![&77]);
        // The old location no longer reports the moved entry.
        let (_, old) = grid(200)[77];
        assert!(!tree.search_point(&old.center()).contains(&&77));
        // Shrinking also refits exactly.
        tree.update(slot, Rect::new([900.2, 900.2], [900.4, 900.4]));
        tree.validate().unwrap();
    }

    #[test]
    fn unbounded_entries_are_searchable() {
        let mut entries = grid(50);
        entries.push((999, Rect::everything()));
        entries.push((998, Rect::new([0.0, 10.0], [f64::INFINITY, 12.0])));
        let tree = PackedRTree::bulk_load(entries);
        tree.validate().unwrap();
        let hits = tree.search_point(&Point::new([1_000_000.0, 11.0]));
        let mut keys: Vec<usize> = hits.into_iter().copied().collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![998, 999]);
    }

    #[test]
    fn high_dimensional_trees_work() {
        // 9 × HILBERT_ORDER exceeds 128 bits; the curve coarsens
        // instead of panicking, and searches stay exact.
        let entries: Vec<(usize, Rect<9>)> = (0..100)
            .map(|i| {
                let o = i as f64;
                (i, Rect::new([o; 9], [o + 0.5; 9]))
            })
            .collect();
        let tree = PackedRTree::bulk_load(entries);
        tree.validate().unwrap();
        let hits = tree.search_point(&Point::new([42.25; 9]));
        assert_eq!(hits, vec![&42]);
    }

    #[test]
    fn duplicate_rects_supported() {
        let r = Rect::new([0.0, 0.0], [1.0, 1.0]);
        let tree = PackedRTree::bulk_load((0..40usize).map(|i| (i, r)).collect());
        assert_eq!(tree.search_point(&Point::new([0.5, 0.5])).len(), 40);
        tree.validate().unwrap();
    }

    #[test]
    fn validate_catches_stale_mbr() {
        let mut tree = PackedRTree::bulk_load_with_node_size(4, grid(100));
        // Corrupt a leaf-node MBR behind validate's back.
        tree.corrupt_level_mbr(0, 0, Rect::new([0.0, 0.0], [0.1, 0.1]));
        assert!(matches!(
            tree.validate(),
            Err(PackedValidationError::WrongMbr { level: 0, node: 0 })
        ));
    }

    #[test]
    fn batch_visit_equals_per_point_visits() {
        let tree = PackedRTree::bulk_load_with_node_size(8, grid(400));
        let probes: Vec<Point<2>> = (0..250)
            .map(|i| Point::new([(i % 40) as f64 * 2.3, (i / 40) as f64 * 5.1]))
            .collect();
        let mut batched: Vec<Vec<usize>> = vec![Vec::new(); probes.len()];
        tree.for_each_containing_batch(&probes, |pi, &k, _| batched[pi as usize].push(k));
        for (p, got) in probes.iter().zip(batched.iter_mut()) {
            got.sort_unstable();
            let mut want: Vec<usize> = tree.search_point(p).into_iter().copied().collect();
            want.sort_unstable();
            assert_eq!(got, &want, "probe {p:?}");
        }
        // Empty batch and empty tree are both no-ops.
        tree.for_each_containing_batch(&[], |_, _, _| unreachable!());
        let empty: PackedRTree<usize, 2> = PackedRTree::bulk_load(Vec::new());
        empty.for_each_containing_batch(&probes, |_, _, _| unreachable!());
    }

    #[test]
    fn intersecting_while_aborts_early() {
        let tree = PackedRTree::bulk_load_with_node_size(4, grid(300));
        let window = Rect::new([0.0, 0.0], [100.0, 100.0]);
        let full = tree.search_intersecting(&window).len();
        assert!(full > 10);
        let mut seen = 0usize;
        tree.for_each_intersecting_while(&window, |_, _| {
            seen += 1;
            seen < 10
        });
        assert_eq!(seen, 10, "visitor stops the traversal at the 10th hit");
        // A never-aborting while-visitor sees everything.
        let mut all = 0usize;
        tree.for_each_intersecting_while(&window, |_, _| {
            all += 1;
            true
        });
        assert_eq!(all, full);
    }

    /// Live entries of a delta-bearing tree, straight from the model's
    /// definition.
    fn live_model(tree: &PackedRTree<usize, 2>) -> Vec<(usize, Rect<2>)> {
        let mut out: Vec<(usize, Rect<2>)> = tree.entries().map(|(_, &k, &r)| (k, r)).collect();
        out.extend(
            tree.staged_keys()
                .iter()
                .zip(tree.staged_rects())
                .map(|(&k, &r)| (k, r)),
        );
        out
    }

    #[test]
    fn staged_inserts_are_searchable_before_compaction() {
        let mut tree = PackedRTree::bulk_load_with_node_size(4, grid(100));
        // Stage entries both inside and far outside the packed world.
        tree.stage_insert(500, Rect::new([10.0, 10.0], [11.0, 11.0]));
        tree.stage_insert(501, Rect::new([5000.0, 5000.0], [5001.0, 5001.0]));
        tree.validate().unwrap();
        assert_eq!(tree.len(), 102);
        assert_eq!(tree.staged_len(), 2);
        assert!(tree.search_point(&Point::new([10.5, 10.5])).contains(&&500));
        // The out-of-world staged entry is visible to every visitor.
        assert_eq!(tree.search_point(&Point::new([5000.5, 5000.5])), vec![&501]);
        assert_eq!(
            tree.search_intersecting(&Rect::new([4999.0, 4999.0], [5002.0, 5002.0])),
            vec![&501]
        );
        let probes = [Point::new([5000.5, 5000.5])];
        let mut hits = Vec::new();
        tree.for_each_containing_batch(&probes, |pi, &k, _| hits.push((pi, k)));
        assert_eq!(hits, vec![(0, 501)]);
        assert!(tree.mbr().expect("non-empty").contains_point(&probes[0]));
    }

    #[test]
    fn tombstones_hide_entries_from_every_visitor() {
        let mut tree = PackedRTree::bulk_load_with_node_size(4, grid(100));
        let slot = tree.slot_of(&42).expect("entry exists");
        let center = grid(100)[42].1.center();
        assert!(tree.tombstone(slot));
        assert!(!tree.tombstone(slot), "double tombstone reports false");
        assert!(!tree.is_live(slot));
        tree.validate().unwrap();
        assert_eq!(tree.len(), 99);
        assert!(!tree.search_point(&center).contains(&&42));
        let mut batch_hits = Vec::new();
        tree.for_each_containing_batch(&[center], |_, &k, _| batch_hits.push(k));
        assert!(!batch_hits.contains(&42));
        let window = grid(100)[42].1;
        assert!(!tree.search_intersecting(&window).contains(&&42));
        assert_eq!(tree.slot_of(&42), None, "tombstoned entries are not found");
    }

    #[test]
    fn remove_entry_unstages_and_tombstones() {
        let mut tree = PackedRTree::bulk_load_with_node_size(4, grid(50));
        let extra = Rect::new([200.0, 200.0], [201.0, 201.0]);
        tree.stage_insert(900, extra);
        tree.stage_insert(901, Rect::new([210.0, 210.0], [211.0, 211.0]));
        // Unstage: the first staged entry goes, the second moves into
        // its index.
        match tree.remove_entry(&900, &extra) {
            Some(DeltaRemoval::Unstaged { index: 0, moved }) => {
                assert_eq!(moved, Some(Rect::new([210.0, 210.0], [211.0, 211.0])));
            }
            other => panic!("unexpected removal outcome {other:?}"),
        }
        // Tombstone: a packed entry.
        let (key, rect) = grid(50)[7];
        match tree.remove_entry(&key, &rect) {
            Some(DeltaRemoval::Tombstoned { slot }) => assert!(!tree.is_live(slot)),
            other => panic!("unexpected removal outcome {other:?}"),
        }
        // Gone entries are not found again.
        assert_eq!(tree.remove_entry(&900, &extra), None);
        assert_eq!(tree.remove_entry(&key, &rect), None);
        tree.validate().unwrap();
        assert_eq!(tree.len(), 50);
    }

    #[test]
    fn compact_folds_the_delta_layer_in() {
        let mut tree = PackedRTree::bulk_load_with_node_size(4, grid(60));
        for i in 0..10usize {
            let o = 300.0 + i as f64 * 5.0;
            tree.stage_insert(700 + i, Rect::new([o, o], [o + 2.0, o + 2.0]));
        }
        for (key, rect) in grid(60).iter().take(5) {
            assert!(tree.remove_entry(key, rect).is_some());
        }
        let before = live_model(&tree);
        let stats = tree.compact();
        assert_eq!(stats.staged_absorbed, 10);
        assert_eq!(stats.tombstones_reclaimed, 5);
        assert_eq!(tree.delta_len(), 0);
        assert_eq!(tree.len(), 65);
        tree.validate().unwrap();
        // Identical result sets after the merge.
        let mut after = live_model(&tree);
        let mut want = before;
        after.sort_unstable_by_key(|&(k, _)| k);
        want.sort_unstable_by_key(|&(k, _)| k);
        assert_eq!(after, want);
        // Compacting a clean tree is a no-op.
        assert!(tree.compact().is_noop());
    }

    #[test]
    fn compaction_threshold_follows_the_fraction() {
        let mut tree = PackedRTree::bulk_load(grid(100));
        tree.set_delta_fraction(0.1);
        // 10 staged over 100 packed is exactly the fraction — not yet
        // over it.
        for i in 0..10usize {
            tree.stage_insert(800 + i, Rect::new([0.0, 0.0], [1.0, 1.0]));
        }
        assert!(!tree.needs_compaction());
        tree.stage_insert(899, Rect::new([0.0, 0.0], [1.0, 1.0]));
        assert!(tree.needs_compaction());
        assert!(tree.maybe_compact().is_some());
        assert!(tree.maybe_compact().is_none());
        // Fraction 0: any delta triggers (the rebuild-per-flush mode).
        tree.set_delta_fraction(0.0);
        assert!(tree.tombstone(0));
        assert!(tree.needs_compaction());
    }

    #[test]
    fn empty_packed_tier_with_staged_entries_works() {
        let mut tree: PackedRTree<usize, 2> = PackedRTree::bulk_load(Vec::new());
        tree.stage_insert(1, Rect::new([0.0, 0.0], [10.0, 10.0]));
        tree.validate().unwrap();
        assert_eq!(tree.len(), 1);
        assert!(!tree.is_empty());
        assert_eq!(tree.search_point(&Point::new([5.0, 5.0])), vec![&1]);
        let mut batch_hits = Vec::new();
        tree.for_each_containing_batch(&[Point::new([5.0, 5.0])], |pi, &k, _| {
            batch_hits.push((pi, k));
        });
        assert_eq!(batch_hits, vec![(0, 1)]);
        assert_eq!(tree.mbr(), Some(Rect::new([0.0, 0.0], [10.0, 10.0])));
        tree.compact();
        assert_eq!(tree.packed_len(), 1);
        tree.validate().unwrap();
    }

    #[test]
    fn drain_live_moves_everything_out() {
        let mut tree = PackedRTree::bulk_load(grid(30));
        tree.stage_insert(500, Rect::new([1.0, 1.0], [2.0, 2.0]));
        let (key, rect) = grid(30)[3];
        assert!(tree.remove_entry(&key, &rect).is_some());
        let drained = tree.drain_live();
        assert_eq!(drained.len(), 30);
        assert!(drained.iter().any(|&(k, _)| k == 500));
        assert!(!drained.iter().any(|&(k, _)| k == 3));
        assert!(tree.is_empty());
        assert_eq!(tree.delta_len(), 0);
        tree.validate().unwrap();
    }

    #[test]
    fn abortable_walk_covers_the_staged_tier() {
        let mut tree = PackedRTree::bulk_load_with_node_size(4, grid(40));
        tree.stage_insert(600, Rect::new([0.0, 0.0], [1.0, 1.0]));
        let window = Rect::new([0.0, 0.0], [200.0, 200.0]);
        let mut seen_staged = false;
        let mut count = 0usize;
        tree.for_each_intersecting_while(&window, |&k, _| {
            seen_staged |= k == 600;
            count += 1;
            true
        });
        assert!(seen_staged, "staged entry visited by the abortable walk");
        assert_eq!(count, 41);
        // Aborting inside the staged scan stops immediately.
        let mut after_staged = 0usize;
        tree.for_each_intersecting_while(&window, |&k, _| {
            if k == 600 {
                return false;
            }
            after_staged += 1;
            true
        });
        assert!(after_staged <= 40);
    }

    /// The model answer for a point probe over `(key, rect)` pairs.
    fn model_hits(model: &[(usize, Rect<2>)], p: &Point<2>) -> Vec<usize> {
        let mut hits: Vec<usize> = model
            .iter()
            .filter(|(_, r)| r.contains_point(p))
            .map(|(k, _)| *k)
            .collect();
        hits.sort_unstable();
        hits
    }

    fn sorted_hits(tree: &PackedRTree<usize, 2>, p: &Point<2>) -> Vec<usize> {
        let mut hits: Vec<usize> = tree.search_point(p).into_iter().copied().collect();
        hits.sort_unstable();
        hits
    }

    #[test]
    fn freeze_serves_exact_reads_while_merging() {
        let mut tree = PackedRTree::bulk_load_with_node_size(4, grid(80));
        let mut model = grid(80);
        // Pre-freeze delta: two staged entries, one tombstone.
        tree.stage_insert(500, Rect::new([7.0, 7.0], [8.0, 8.0]));
        tree.stage_insert(501, Rect::new([400.0, 400.0], [401.0, 401.0]));
        model.push((500, Rect::new([7.0, 7.0], [8.0, 8.0])));
        model.push((501, Rect::new([400.0, 400.0], [401.0, 401.0])));
        let (k, r) = grid(80)[11];
        assert!(tree.remove_entry(&k, &r).is_some());
        model.retain(|&(key, _)| key != 11);

        let frozen = tree.freeze();
        assert!(tree.is_compacting());
        assert_eq!(frozen.len(), model.len());

        // Mid-compaction mutations of every flavor.
        tree.stage_insert(600, Rect::new([1.0, 1.0], [2.0, 2.0])); // gen-2 insert
        model.push((600, Rect::new([1.0, 1.0], [2.0, 2.0])));
        let (k2, r2) = grid(80)[33]; // packed removal -> tombstone
        assert!(matches!(
            tree.remove_entry(&k2, &r2),
            Some(DeltaRemoval::Tombstoned { .. })
        ));
        model.retain(|&(key, _)| key != 33);
        // Frozen staged removal -> retired in place.
        assert!(matches!(
            tree.remove_entry(&500, &Rect::new([7.0, 7.0], [8.0, 8.0])),
            Some(DeltaRemoval::Retired { .. })
        ));
        model.retain(|&(key, _)| key != 500);
        // Gen-2 removal -> plain swap-remove.
        assert!(matches!(
            tree.remove_entry(&600, &Rect::new([1.0, 1.0], [2.0, 2.0])),
            Some(DeltaRemoval::Unstaged { .. })
        ));
        model.retain(|&(key, _)| key != 600);
        tree.stage_insert(601, Rect::new([2.5, 2.5], [3.5, 3.5]));
        model.push((601, Rect::new([2.5, 2.5], [3.5, 3.5])));

        tree.validate().unwrap();
        assert_eq!(tree.len(), model.len());
        // Exact reads mid-compaction, everywhere it matters.
        for p in [
            Point::new([7.5, 7.5]),
            Point::new([400.5, 400.5]),
            Point::new([1.5, 1.5]),
            Point::new([3.0, 3.0]),
            grid(80)[33].1.center(),
            grid(80)[12].1.center(),
        ] {
            assert_eq!(sorted_hits(&tree, &p), model_hits(&model, &p), "at {p:?}");
        }

        // The merge sees exactly the frozen state.
        let merged = frozen.merge();
        merged.validate().unwrap();
        assert_eq!(merged.len(), 81, "80 - 1 tombstone + 2 staged");
        assert_eq!(merged.delta_len(), 0);

        // Install: fix-ups re-apply the mid-compaction removals, the
        // gen-2 delta survives.
        let stats = tree.install(merged);
        assert!(!tree.is_compacting());
        assert_eq!(stats.staged_absorbed, 2);
        assert_eq!(stats.tombstones_reclaimed, 1);
        tree.validate().unwrap();
        assert_eq!(tree.len(), model.len());
        assert_eq!(tree.staged_len(), 1, "gen-2 entry 601 carried forward");
        assert_eq!(tree.tombstone_count(), 2, "fix-ups: keys 33 and 500");
        for p in [
            Point::new([7.5, 7.5]),
            Point::new([400.5, 400.5]),
            Point::new([3.0, 3.0]),
            grid(80)[33].1.center(),
            grid(80)[12].1.center(),
        ] {
            assert_eq!(sorted_hits(&tree, &p), model_hits(&model, &p), "at {p:?}");
        }
        // A follow-up synchronous compact folds the fix-ups away.
        tree.compact();
        tree.validate().unwrap();
        assert_eq!(tree.len(), model.len());
    }

    #[test]
    fn install_handles_duplicates_across_generations() {
        let r = Rect::new([5.0, 5.0], [6.0, 6.0]);
        let mut tree = PackedRTree::bulk_load_with_node_size(4, grid(40));
        tree.stage_insert(900, r); // frozen copy
        let _frozen = tree.freeze();
        tree.stage_insert(900, r); // gen-2 duplicate (same key and rect)
                                   // Remove one copy mid-compaction: the frozen one is found
                                   // first and retired.
        assert!(matches!(
            tree.remove_entry(&900, &r),
            Some(DeltaRemoval::Retired { .. })
        ));
        assert_eq!(tree.len(), 41);
        let merged = _frozen.merge();
        tree.install(merged);
        tree.validate().unwrap();
        // Exactly one copy of 900 must survive, whichever tier it
        // lives in (duplicates are indistinguishable).
        assert_eq!(tree.len(), 41);
        let hits: Vec<usize> = tree
            .search_point(&Point::new([5.5, 5.5]))
            .into_iter()
            .copied()
            .filter(|&k| k == 900)
            .collect();
        assert_eq!(hits, vec![900]);
    }

    #[test]
    fn freeze_snapshot_is_isolated_from_live_mutations() {
        let mut tree = PackedRTree::bulk_load_with_node_size(4, grid(50));
        let frozen = tree.freeze();
        // Heavy live mutation after the freeze.
        for (k, r) in grid(50).iter().take(20) {
            assert!(tree.remove_entry(k, r).is_some());
        }
        for i in 0..10usize {
            tree.stage_insert(700 + i, Rect::new([0.0, 0.0], [1.0, 1.0]));
        }
        // The snapshot still merges to exactly the frozen state.
        let merged = frozen.merge();
        assert_eq!(merged.len(), 50);
        merged.validate().unwrap();
        tree.install(merged);
        tree.validate().unwrap();
        assert_eq!(tree.len(), 40);
    }

    fn snapshot_hits(snap: &FrozenShard<usize, 2>, p: &Point<2>) -> Vec<usize> {
        let mut hits = Vec::new();
        snap.for_each_containing(p, |&k, _| hits.push(k));
        hits.sort_unstable();
        hits
    }

    #[test]
    fn snapshot_reads_match_the_tree_at_snapshot_time() {
        let mut tree = PackedRTree::bulk_load_with_node_size(4, grid(60));
        let mut model = grid(60);
        // Mixed delta state before the snapshot: stagings + removals.
        for i in 0..8usize {
            let r = Rect::new([1.0 + i as f64, 1.0], [1.5 + i as f64, 1.5]);
            tree.stage_insert(900 + i, r);
            model.push((900 + i, r));
        }
        for (k, r) in grid(60).iter().take(10) {
            assert!(tree.remove_entry(k, r).is_some());
        }
        model.retain(|&(k, _)| k >= 10);
        let snap = tree.snapshot();
        assert!(!tree.is_compacting(), "snapshot must not open an epoch");
        assert_eq!(snap.len(), model.len());

        // Mutate the live tree heavily; the snapshot must not move.
        for (k, r) in grid(60).iter().skip(10).take(20) {
            assert!(tree.remove_entry(k, r).is_some());
        }
        tree.stage_insert(999, Rect::new([0.0, 0.0], [100.0, 100.0]));
        for p in [
            Point::new([1.2, 1.2]),
            Point::new([5.0, 5.0]),
            Point::new([31.0, 4.0]),
            grid(60)[3].1.center(),
            grid(60)[45].1.center(),
            Point::new([-5.0, -5.0]),
        ] {
            assert_eq!(snapshot_hits(&snap, &p), model_hits(&model, &p), "at {p:?}");
        }
    }

    #[test]
    fn snapshot_composes_with_an_outstanding_freeze() {
        let mut tree = PackedRTree::bulk_load_with_node_size(4, grid(40));
        let r = Rect::new([5.0, 5.0], [6.0, 6.0]);
        tree.stage_insert(700, r);
        let frozen = tree.freeze();
        // Retire the frozen staged entry mid-compaction, tombstone a
        // packed one, stage a gen-2 entry.
        assert!(matches!(
            tree.remove_entry(&700, &r),
            Some(DeltaRemoval::Retired { .. })
        ));
        let (k1, r1) = grid(40)[7];
        assert!(tree.remove_entry(&k1, &r1).is_some());
        let r2 = Rect::new([50.0, 50.0], [51.0, 51.0]);
        tree.stage_insert(701, r2);

        // The read snapshot sees the *current* live set: no 700 (it
        // was retired, and must be filtered out, not emitted), no k1,
        // but 701.
        let snap = tree.snapshot();
        assert_eq!(snap.len(), tree.len());
        assert_eq!(snapshot_hits(&snap, &Point::new([5.5, 5.5])), vec![]);
        assert_eq!(snapshot_hits(&snap, &r1.center()), vec![]);
        assert_eq!(snapshot_hits(&snap, &Point::new([50.5, 50.5])), vec![701]);

        // And the compaction completes undisturbed.
        let merged = frozen.merge();
        tree.install(merged);
        tree.validate().unwrap();
    }

    #[test]
    fn snapshot_serves_concurrent_readers_while_owner_mutates() {
        let mut tree = PackedRTree::bulk_load_with_node_size(4, grid(80));
        let snap = std::sync::Arc::new(tree.snapshot());
        let expected: Vec<Vec<usize>> = (0..80)
            .map(|i| model_hits(&grid(80), &grid(80)[i].1.center()))
            .collect();
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let snap = std::sync::Arc::clone(&snap);
                let expected = &expected;
                scope.spawn(move || {
                    for (i, want) in expected.iter().enumerate() {
                        let got = snapshot_hits(&snap, &grid(80)[i].1.center());
                        assert_eq!(&got, want);
                    }
                });
            }
            // The owner mutates concurrently — readers never block on
            // it and never see the mutations.
            for (k, r) in grid(80).iter().take(40) {
                assert!(tree.remove_entry(k, r).is_some());
            }
            tree.compact();
        });
        assert_eq!(snap.len(), 80);
    }

    #[test]
    fn abort_compaction_restores_a_plain_delta_tree() {
        let mut tree = PackedRTree::bulk_load_with_node_size(4, grid(30));
        tree.stage_insert(800, Rect::new([3.0, 3.0], [4.0, 4.0]));
        tree.stage_insert(801, Rect::new([90.0, 3.0], [91.0, 4.0]));
        let _frozen = tree.freeze();
        assert!(matches!(
            tree.remove_entry(&800, &Rect::new([3.0, 3.0], [4.0, 4.0])),
            Some(DeltaRemoval::Retired { .. })
        ));
        tree.stage_insert(802, Rect::new([50.0, 50.0], [51.0, 51.0]));
        tree.abort_compaction();
        assert!(!tree.is_compacting());
        tree.validate().unwrap();
        assert_eq!(tree.len(), 32, "30 packed + live staged 801, 802");
        assert_eq!(tree.staged_len(), 2, "retired entry physically dropped");
        assert!(tree
            .search_point(&Point::new([3.5, 3.5]))
            .iter()
            .all(|&&k| k != 800));
        // Aborting again (or with no epoch) is a no-op.
        tree.abort_compaction();
        // Drain after an abort sees only live entries.
        let drained = tree.drain_live();
        assert_eq!(drained.len(), 32);
    }

    #[test]
    #[should_panic(expected = "update during an outstanding compaction snapshot")]
    fn update_mid_compaction_panics() {
        let mut tree = PackedRTree::bulk_load_with_node_size(4, grid(20));
        let _frozen = tree.freeze();
        tree.update(0, Rect::new([0.0, 0.0], [1.0, 1.0]));
    }

    #[test]
    fn maybe_compact_defers_while_a_snapshot_is_outstanding() {
        let mut tree = PackedRTree::bulk_load_with_node_size(4, grid(20));
        tree.set_delta_fraction(0.05);
        for i in 0..10usize {
            tree.stage_insert(100 + i, Rect::new([0.0, 0.0], [1.0, 1.0]));
        }
        assert!(tree.needs_compaction());
        let frozen = tree.freeze();
        // The compaction is already underway: no panic, no merge.
        assert_eq!(tree.maybe_compact(), None);
        tree.install(frozen.merge());
        assert_eq!(tree.delta_len(), 0);
        tree.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "freeze while a compaction snapshot is already outstanding")]
    fn double_freeze_panics() {
        let mut tree = PackedRTree::bulk_load_with_node_size(4, grid(20));
        let _a = tree.freeze();
        let _b = tree.freeze();
    }

    #[test]
    fn clone_shares_the_core_copy_on_write() {
        let mut tree = PackedRTree::bulk_load_with_node_size(4, grid(60));
        let copy = tree.clone();
        assert!(Arc::ptr_eq(&tree.core, &copy.core), "clone is O(delta)");
        let slot = tree.slot_of(&7).unwrap();
        tree.update(slot, Rect::new([500.0, 500.0], [501.0, 501.0]));
        // The clone still sees the original rectangle.
        let (_, old) = grid(60)[7];
        assert!(copy.search_point(&old.center()).contains(&&7));
        assert!(!tree.search_point(&old.center()).contains(&&7));
        copy.validate().unwrap();
        tree.validate().unwrap();
    }

    #[test]
    fn freeze_with_empty_packed_tier_works() {
        let mut tree: PackedRTree<usize, 2> = PackedRTree::bulk_load(Vec::new());
        tree.stage_insert(1, Rect::new([0.0, 0.0], [1.0, 1.0]));
        let frozen = tree.freeze();
        tree.stage_insert(2, Rect::new([2.0, 2.0], [3.0, 3.0]));
        let merged = frozen.merge();
        assert_eq!(merged.packed_len(), 1);
        tree.install(merged);
        tree.validate().unwrap();
        assert_eq!(tree.len(), 2);
        assert_eq!(tree.search_point(&Point::new([2.5, 2.5])), vec![&2]);
        assert_eq!(tree.search_point(&Point::new([0.5, 0.5])), vec![&1]);
    }

    #[test]
    fn visitor_counts_without_allocating_results() {
        let tree = PackedRTree::bulk_load(grid(300));
        let mut count = 0usize;
        tree.for_each_containing(&Point::new([1.0, 1.0]), |_, _| count += 1);
        assert_eq!(count, tree.search_point(&Point::new([1.0, 1.0])).len());
    }

    // ---- flat snapshots ------------------------------------------------

    /// Asserts `restored` answers every probe and window of the `grid`
    /// world identically to `tree`, across all three read paths.
    fn assert_reads_equal(tree: &PackedRTree<usize, 2>, restored: &PackedRTree<usize, 2>) {
        assert_eq!(tree.len(), restored.len());
        let probes: Vec<Point<2>> = (0..40)
            .map(|i| Point::new([(i % 20) as f64 * 5.3, (i / 4) as f64 * 3.7]))
            .collect();
        for p in &probes {
            assert_eq!(
                sorted_hits(tree, p),
                sorted_hits(restored, p),
                "probe {p:?}"
            );
        }
        for i in 0..10 {
            let lo = [i as f64 * 7.0, i as f64 * 3.0];
            let window = Rect::new(lo, [lo[0] + 11.0, lo[1] + 9.0]);
            let mut a: Vec<usize> = tree
                .search_intersecting(&window)
                .into_iter()
                .copied()
                .collect();
            let mut b: Vec<usize> = restored
                .search_intersecting(&window)
                .into_iter()
                .copied()
                .collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "window {window:?}");
        }
        let mut a: Vec<(u32, usize)> = Vec::new();
        let mut b: Vec<(u32, usize)> = Vec::new();
        tree.for_each_containing_batch(&probes, |pi, k, _| a.push((pi, *k)));
        restored.for_each_containing_batch(&probes, |pi, k, _| b.push((pi, *k)));
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn save_load_round_trips_exactly() {
        let tree = PackedRTree::bulk_load(grid(500));
        let bytes = tree.save();
        let restored = PackedRTree::<usize, 2>::load(bytes).unwrap();
        restored.validate().unwrap();
        restored.verify_snapshot().unwrap();
        assert_reads_equal(&tree, &restored);
    }

    #[test]
    fn save_load_round_trips_in_every_layout() {
        let tree = PackedRTree::bulk_load_with_node_size(8, grid(457));
        for (quantize, fanout) in [(false, true), (true, false), (true, true)] {
            let bytes = tree.save_with_options(SnapshotOptions {
                quantize_interior: quantize,
                aligned_fanout: fanout,
            });
            let restored = PackedRTree::<usize, 2>::load(bytes).unwrap();
            assert_eq!(restored.core.is_quantized(), quantize);
            restored.validate().unwrap();
            restored.verify_snapshot().unwrap();
            assert_reads_equal(&tree, &restored);
        }
    }

    #[test]
    fn quantized_snapshot_resaves_to_both_layouts() {
        // quant → quant and quant → exact: the exact re-save must
        // recompute interior MBRs from the entry rects, not widen.
        let tree = PackedRTree::bulk_load(grid(300));
        let quant = PackedRTree::<usize, 2>::load(tree.save_with_options(SnapshotOptions {
            quantize_interior: true,
            aligned_fanout: false,
        }))
        .unwrap();
        let requant = PackedRTree::<usize, 2>::load(quant.save_with_options(SnapshotOptions {
            quantize_interior: true,
            aligned_fanout: true,
        }))
        .unwrap();
        let exact = PackedRTree::<usize, 2>::load(quant.save()).unwrap();
        requant.validate().unwrap();
        exact.validate().unwrap();
        assert!(!exact.core.is_quantized());
        assert_reads_equal(&tree, &requant);
        assert_reads_equal(&tree, &exact);
    }

    #[test]
    fn empty_tree_round_trips() {
        let tree: PackedRTree<usize, 2> = PackedRTree::bulk_load(Vec::new());
        let restored = PackedRTree::<usize, 2>::load_verified(tree.save()).unwrap();
        assert_eq!(restored.len(), 0);
        restored.validate().unwrap();
        assert!(restored.search_point(&Point::new([0.0, 0.0])).is_empty());
    }

    #[test]
    fn mid_churn_snapshot_restores_delta_and_tombstones() {
        let mut tree = PackedRTree::bulk_load_with_node_size(4, grid(200));
        for i in 0..37 {
            let x = 200.0 + i as f64;
            tree.stage_insert(10_000 + i, Rect::new([x, x], [x + 1.5, x + 1.5]));
        }
        for i in (0..200).step_by(7) {
            let (k, r) = grid(200)[i];
            tree.remove_entry(&k, &r).unwrap();
        }
        let restored = PackedRTree::<usize, 2>::load_verified(tree.save()).unwrap();
        restored.validate().unwrap();
        assert_eq!(restored.staged_len(), tree.staged_len());
        assert_eq!(restored.tombstone_count(), tree.tombstone_count());
        assert_eq!(live_model(&tree), live_model(&restored));
        assert_reads_equal(&tree, &restored);
        let p = Point::new([200.5, 200.5]);
        assert_eq!(sorted_hits(&tree, &p), sorted_hits(&restored, &p));
    }

    #[test]
    fn mid_freeze_snapshot_serializes_the_live_view() {
        let mut tree = PackedRTree::bulk_load_with_node_size(4, grid(100));
        tree.stage_insert(900, Rect::new([400.0, 400.0], [401.0, 401.0]));
        let _frozen = tree.freeze();
        // Retire a frozen staged entry and tombstone a packed slot
        // mid-compaction; the snapshot must carry neither as live.
        tree.remove_entry(&900, &Rect::new([400.0, 400.0], [401.0, 401.0]))
            .unwrap();
        let (k, r) = grid(100)[3];
        tree.remove_entry(&k, &r).unwrap();
        let restored = PackedRTree::<usize, 2>::load_verified(tree.save()).unwrap();
        restored.validate().unwrap();
        assert!(!restored.is_compacting());
        // Retired frozen entries are dead in the live view; live_model
        // doesn't know about epochs, so filter them out here.
        let mut expect: Vec<(usize, Rect<2>)> = tree.entries().map(|(_, &k, &r)| (k, r)).collect();
        expect.extend(
            tree.staged_keys()
                .iter()
                .zip(tree.staged_rects())
                .enumerate()
                .filter(|&(i, _)| tree.is_staged_live(i))
                .map(|(_, (&k, &r))| (k, r)),
        );
        assert_eq!(expect, live_model(&restored));
        assert_reads_equal(&tree, &restored);
    }

    #[test]
    fn restored_tree_mutates_like_a_built_one() {
        let tree = PackedRTree::bulk_load(grid(120));
        for options in [
            SnapshotOptions::default(),
            SnapshotOptions {
                quantize_interior: true,
                aligned_fanout: true,
            },
        ] {
            let mut restored =
                PackedRTree::<usize, 2>::load(tree.save_with_options(options)).unwrap();
            let slot = restored.slot_of(&11).unwrap();
            restored.update(slot, Rect::new([777.0, 777.0], [778.0, 778.0]));
            restored.stage_insert(5000, Rect::new([900.0, 900.0], [901.0, 901.0]));
            restored.compact();
            restored.validate().unwrap();
            assert_eq!(restored.len(), 121);
            assert_eq!(
                restored.search_point(&Point::new([777.5, 777.5])),
                vec![&11]
            );
            assert_eq!(
                restored.search_point(&Point::new([900.5, 900.5])),
                vec![&5000]
            );
        }
    }

    #[test]
    fn corrupt_headers_are_rejected_not_panics() {
        let tree = PackedRTree::bulk_load(grid(150));
        let good = tree.save();

        let mut bad = good.clone();
        bad[0] ^= 0xff;
        assert!(matches!(
            PackedRTree::<usize, 2>::load(bad),
            Err(SnapshotError::BadMagic { .. })
        ));

        let mut bad = good.clone();
        bad[4] = 99;
        assert!(matches!(
            PackedRTree::<usize, 2>::load(bad),
            Err(SnapshotError::WrongVersion { found: 99, .. })
        ));

        assert!(matches!(
            PackedRTree::<usize, 3>::load(good.clone()),
            Err(SnapshotError::WrongDims {
                found: 2,
                expected: 3
            })
        ));

        for cut in [0, 5, 63, 64, 200, good.len() - 1] {
            assert!(
                PackedRTree::<usize, 2>::load(good[..cut].to_vec()).is_err(),
                "truncation at {cut} must be rejected"
            );
        }

        // Flip one metadata byte (level table region) — eager checksum.
        let mut bad = good.clone();
        bad[HEADER_LEN + HEADER_LEN + 3] ^= 0x40;
        assert!(PackedRTree::<usize, 2>::load(bad).is_err());

        // Flip one byte deep in the bulk payload: the plain load
        // defers that checksum, load_verified catches it.
        let mut bad = good.clone();
        let mid = HEADER_LEN + good.len() / 2;
        bad[mid] ^= 0x01;
        assert!(matches!(
            PackedRTree::<usize, 2>::load_verified(bad),
            Err(SnapshotError::ChecksumMismatch)
        ));
    }

    #[test]
    fn fuzzed_header_bytes_never_panic() {
        let tree = PackedRTree::bulk_load(grid(80));
        let good = tree.save();
        // Deterministic single-byte corruptions across both headers
        // and section edges: every one must be Err or a valid tree.
        for pos in 0..good.len().min(256) {
            for flip in [0x01u8, 0x80, 0xff] {
                let mut bad = good.clone();
                bad[pos] ^= flip;
                if let Ok(t) = PackedRTree::<usize, 2>::load(bad) {
                    // A surviving load may only differ in deferred-
                    // checksummed payload; probing must not panic.
                    let _ = t.search_point(&Point::new([1.0, 1.0]));
                }
            }
        }
    }

    #[test]
    fn snapshot_with_empty_delta_allocates_nothing() {
        let mut tree = PackedRTree::bulk_load(grid(100));
        let snap = tree.snapshot();
        assert_eq!(
            snap.delta_heap_bytes(),
            0,
            "empty-delta snapshot must not copy"
        );
        assert!(Arc::ptr_eq(&snap.core, &tree.core));
        // With a delta the snapshot pays O(delta) — and only that.
        tree.stage_insert(999, Rect::new([5.0, 5.0], [6.0, 6.0]));
        assert!(tree.snapshot().delta_heap_bytes() > 0);
    }

    #[test]
    fn save_with_custom_key_codec_round_trips() {
        // A foreign newtype outside the SnapshotKey impl list.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
        struct Id(u32);
        let entries: Vec<(Id, Rect<2>)> = grid(90)
            .into_iter()
            .map(|(k, r)| (Id(k as u32), r))
            .collect();
        let tree = PackedRTree::bulk_load(entries);
        let bytes = tree.save_with(SnapshotOptions::default(), |id| u64::from(id.0));
        let restored = PackedRTree::<Id, 2>::load_with(bytes, |raw| Id(raw as u32)).unwrap();
        assert_eq!(restored.len(), 90);
        let p = Point::new([3.5, 3.5]);
        let mut a: Vec<Id> = tree.search_point(&p).into_iter().copied().collect();
        let mut b: Vec<Id> = restored.search_point(&p).into_iter().copied().collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }
}
