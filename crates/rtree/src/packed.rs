//! The packed, cache-friendly R-tree backend.
//!
//! [`PackedRTree`] stores the whole index in contiguous `Vec`-backed
//! level arrays — no per-node boxes, no pointer chasing. It is built
//! bottom-up in one pass: entries are sorted by the Hilbert index of
//! their center ([`drtree_spatial::hilbert`]), tiled into nodes of
//! `node_size` consecutive entries, and parent levels pack the level
//! below the same way until a single root remains (the flatbush /
//! geo-index construction).
//!
//! Topology is implicit: node `j` of level `l` always covers children
//! `j·B .. min((j+1)·B, len(l−1))` of the level below, so the only
//! stored data are the node MBRs themselves. Searches are iterative
//! (explicit stack, no recursion), and the visitor API delivers hits
//! through a callback so the hot path allocates nothing per result.
//!
//! The tree is static in *shape* but serves live workloads through
//! [`PackedRTree::update`], which rewrites one entry's rectangle and
//! incrementally refits the `O(log N)` ancestor MBRs above it. Growing
//! or shrinking the entry set requires a rebuild
//! ([`PackedRTree::bulk_load`] again) — rebuilds are cheap enough that
//! consumers with mutation (e.g. the pub/sub broker's subscription
//! index) rebuild lazily on the next query.

use drtree_spatial::hilbert::GridMapper;
use drtree_spatial::{Point, Rect};

use crate::index::SpatialIndex;

/// Default node capacity; 16 balances depth against per-node scan cost
/// (the flatbush default).
pub const DEFAULT_NODE_SIZE: usize = 16;

/// Hard cap on node capacity: per-node hit bitmasks live in one `u32`
/// word, and the fixed traversal stack ([`STACK_CAPACITY`]) must cover
/// `(node_size − 1) · (height − 1) + 1` frames for any 2^32-entry tree.
const MAX_NODE_SIZE: usize = 32;

/// Worst-case traversal stack depth: `node_size = 32` gives height ≤ 7
/// at 2^32 entries, so `31 · 6 + 1 = 187` frames bound every legal
/// tree; 256 leaves margin.
const STACK_CAPACITY: usize = 256;

/// The Hilbert-sorted permutation of `entries` (indexes into it).
///
/// The key/index pair is packed into one scalar wherever it fits —
/// `u64` for `D ≤ 2`, `u128` for `D ≤ 6` — so the dominant sort moves
/// machine words instead of tuples; wider dimensions fall back to
/// tuple sorting. All variants order by (curve key, insertion index),
/// and the caller applies the permutation once so every per-entry
/// array lives in slot order.
fn curve_order<K, const D: usize>(mapper: &GridMapper<D>, entries: &[(K, Rect<D>)]) -> Vec<u32> {
    if D <= 2 {
        let mut tagged: Vec<u64> = entries
            .iter()
            .enumerate()
            .map(|(i, (_, r))| ((mapper.key(r) as u64) << 32) | i as u64)
            .collect();
        tagged.sort_unstable();
        tagged.into_iter().map(|t| t as u32).collect()
    } else if D <= 6 {
        let mut tagged: Vec<u128> = entries
            .iter()
            .enumerate()
            .map(|(i, (_, r))| (mapper.key(r) << 32) | i as u128)
            .collect();
        tagged.sort_unstable();
        tagged.into_iter().map(|t| t as u32).collect()
    } else {
        let mut tagged: Vec<(u128, u32)> = entries
            .iter()
            .enumerate()
            .map(|(i, (_, r))| (mapper.key(r), i as u32))
            .collect();
        tagged.sort_unstable();
        tagged.into_iter().map(|(_, i)| i).collect()
    }
}

/// Bitmask of rectangles in `rects` (≤ 32 of them) containing `point`.
///
/// Branchless on purpose: every test runs to completion with bitwise
/// `&`, so the loop vectorizes over the contiguous MBR array and pays
/// no branch mispredictions — the payoff of the flat layout.
#[inline]
fn mask_containing<const D: usize>(rects: &[Rect<D>], point: &Point<D>) -> u32 {
    debug_assert!(rects.len() <= MAX_NODE_SIZE);
    let mut mask = 0u32;
    for (i, r) in rects.iter().enumerate() {
        let mut hit = true;
        for d in 0..D {
            let c = point.coord(d);
            hit &= (r.lo(d) <= c) & (c <= r.hi(d));
        }
        mask |= u32::from(hit) << i;
    }
    mask
}

/// Bitmask of rectangles in `rects` (≤ 32 of them) intersecting
/// `window`; branchless like [`mask_containing`].
#[inline]
fn mask_intersecting<const D: usize>(rects: &[Rect<D>], window: &Rect<D>) -> u32 {
    debug_assert!(rects.len() <= MAX_NODE_SIZE);
    let mut mask = 0u32;
    for (i, r) in rects.iter().enumerate() {
        let mut hit = true;
        for d in 0..D {
            hit &= (r.lo(d) <= window.hi(d)) & (window.lo(d) <= r.hi(d));
        }
        mask |= u32::from(hit) << i;
    }
    mask
}

/// A packed R-tree: all MBRs in flat per-level arrays, Hilbert
/// bulk-loaded, with iterative allocation-free searches.
///
/// `K` is the caller's key type; duplicates are permitted. Entry order
/// after construction follows the Hilbert curve, and every entry is
/// addressed by its *slot* (index in that order) for `O(log N)`
/// in-place updates.
///
/// # Example
///
/// ```
/// use drtree_rtree::{PackedRTree, SpatialIndex};
/// use drtree_spatial::{Point, Rect};
///
/// let entries: Vec<(u32, Rect<2>)> = (0..100)
///     .map(|i| {
///         let x = f64::from(i % 10) * 10.0;
///         let y = f64::from(i / 10) * 10.0;
///         (i, Rect::new([x, y], [x + 5.0, y + 5.0]))
///     })
///     .collect();
/// let tree = PackedRTree::bulk_load(entries);
/// assert_eq!(tree.len(), 100);
/// let hits = tree.search_point(&Point::new([2.0, 2.0]));
/// assert_eq!(hits, vec![&0]);
/// tree.validate()?;
/// # Ok::<(), drtree_rtree::PackedValidationError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PackedRTree<K, const D: usize> {
    node_size: usize,
    /// Entry keys in slot (Hilbert) order, parallel to `rects`: a hit
    /// at `slot` reads `keys[slot]` directly, and because search
    /// results come out as runs of nearby slots, those reads stay on
    /// the same cache lines instead of bouncing through a permutation
    /// array.
    keys: Vec<K>,
    /// Entry rectangles in slot (Hilbert) order — the contiguous array
    /// the leaf-level mask scans run over.
    rects: Vec<Rect<D>>,
    /// `levels[0]` holds the leaf-node MBRs, each covering `node_size`
    /// consecutive entries; each further level packs the one below; the
    /// last level is the root (length 1). Empty iff the tree is empty.
    levels: Vec<Vec<Rect<D>>>,
}

/// A violated packed-level invariant, reported by
/// [`PackedRTree::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum PackedValidationError {
    /// A level's length is not `ceil(len(below) / node_size)`.
    WrongLevelLength {
        /// Level index (0 = leaf nodes).
        level: usize,
        /// Nodes found at the level.
        found: usize,
        /// Nodes the implicit topology requires.
        expected: usize,
    },
    /// A node MBR is not the exact union of what it covers.
    WrongMbr {
        /// Level index (0 = leaf nodes).
        level: usize,
        /// Node index within the level.
        node: usize,
    },
    /// The key and rectangle arrays disagree in length, or a non-empty
    /// tree has no levels.
    Inconsistent,
}

impl std::fmt::Display for PackedValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PackedValidationError::WrongLevelLength {
                level,
                found,
                expected,
            } => write!(
                f,
                "packed level {level} has {found} nodes, topology requires {expected}"
            ),
            PackedValidationError::WrongMbr { level, node } => {
                write!(f, "node {node} of level {level} has a non-exact MBR")
            }
            PackedValidationError::Inconsistent => {
                f.write_str("entry arrays inconsistent with level arrays")
            }
        }
    }
}

impl std::error::Error for PackedValidationError {}

impl<K, const D: usize> PackedRTree<K, D> {
    /// Hilbert bulk-load with the default node size.
    pub fn bulk_load(entries: Vec<(K, Rect<D>)>) -> Self {
        Self::bulk_load_with_node_size(DEFAULT_NODE_SIZE, entries)
    }

    /// Hilbert bulk-load with node capacity `node_size` (clamped to
    /// `[2, 32]`; the cap keeps node bitmasks in one machine word and
    /// bounds the traversal stack).
    pub fn bulk_load_with_node_size(node_size: usize, entries: Vec<(K, Rect<D>)>) -> Self {
        let node_size = node_size.clamp(2, MAX_NODE_SIZE);
        let n = entries.len();
        assert!(
            n <= u32::MAX as usize,
            "packed tree is limited to 2^32 entries"
        );
        if n == 0 {
            return Self {
                node_size,
                keys: Vec::new(),
                rects: Vec::new(),
                levels: Vec::new(),
            };
        }

        // Order entries along the Hilbert curve of their centers. The
        // sort permutes small scalar (key, index) packs, not the
        // entries themselves; ties keep insertion order via the index,
        // so construction is deterministic even on degenerate worlds.
        let world = GridMapper::world_of(entries.iter().map(|(_, r)| r))
            .unwrap_or_else(|| Rect::new([0.0; D], [1.0; D]));
        let mapper = GridMapper::new(&world);
        let order = curve_order(&mapper, &entries);
        let rects: Vec<Rect<D>> = order.iter().map(|&i| entries[i as usize].1).collect();
        // Apply the permutation to the keys as well (one O(N) move
        // pass, no `Clone` required), so hits read `keys[slot]` with
        // no indirection.
        let mut taken: Vec<Option<K>> = entries.into_iter().map(|(k, _)| Some(k)).collect();
        let keys: Vec<K> = order
            .iter()
            .map(|&i| taken[i as usize].take().expect("order is a permutation"))
            .collect();

        // Pack levels bottom-up until a single root remains.
        let mut levels: Vec<Vec<Rect<D>>> = Vec::new();
        let mut below: &[Rect<D>] = &rects;
        loop {
            let level: Vec<Rect<D>> = below
                .chunks(node_size)
                .map(|chunk| Rect::union_all(chunk.iter()).expect("chunks are non-empty"))
                .collect();
            let done = level.len() == 1;
            levels.push(level);
            if done {
                break;
            }
            below = levels.last().expect("just pushed");
        }

        Self {
            node_size,
            keys,
            rects,
            levels,
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` if the tree stores no entries.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Node capacity the tree was packed with.
    pub fn node_size(&self) -> usize {
        self.node_size
    }

    /// Number of node levels, counting the leaf-node level as 1. An
    /// empty tree has height 1, mirroring [`crate::RTree::height`].
    pub fn height(&self) -> usize {
        self.levels.len().max(1)
    }

    /// The MBR of the whole tree (`None` when empty).
    pub fn mbr(&self) -> Option<Rect<D>> {
        self.levels.last().map(|root| root[0])
    }

    /// The entry stored in `slot` (Hilbert order).
    ///
    /// # Panics
    ///
    /// Panics if `slot >= self.len()`.
    pub fn entry(&self, slot: usize) -> (&K, &Rect<D>) {
        (&self.keys[slot], &self.rects[slot])
    }

    /// All entry keys in slot order — the raw column behind
    /// [`PackedRTree::entry`], for consumers that index by slot in
    /// bulk (e.g. external acceleration structures keyed by slot).
    pub fn keys(&self) -> &[K] {
        &self.keys
    }

    /// All entry rectangles in slot order (parallel to
    /// [`PackedRTree::keys`]).
    pub fn rects(&self) -> &[Rect<D>] {
        &self.rects
    }

    /// Iterates over `(slot, key, rect)` in Hilbert order.
    pub fn entries(&self) -> impl Iterator<Item = (usize, &K, &Rect<D>)> {
        self.keys
            .iter()
            .zip(self.rects.iter())
            .enumerate()
            .map(|(slot, (k, r))| (slot, k, r))
    }

    /// The lowest slot holding an entry with key `key`, if any.
    pub fn slot_of(&self, key: &K) -> Option<usize>
    where
        K: PartialEq,
    {
        self.keys.iter().position(|k| k == key)
    }

    /// Replaces the rectangle in `slot` and incrementally refits the
    /// `O(log N)` ancestor MBRs above it — the live-update path: no
    /// rebuild, no allocation.
    ///
    /// The entry keeps its slot, so a drifting subscription stays
    /// addressable; packing quality degrades only as far as the moved
    /// rectangle inflates its ancestors (refits are exact, shrinking
    /// included). Rebuild via [`PackedRTree::bulk_load`] when drift
    /// accumulates.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= self.len()`.
    pub fn update(&mut self, slot: usize, rect: Rect<D>) {
        assert!(slot < self.keys.len(), "slot {slot} out of bounds");
        self.rects[slot] = rect;
        let mut node = slot / self.node_size;
        for level in 0..self.levels.len() {
            let exact = self
                .covered_union(level, node)
                .expect("covered range is non-empty");
            if self.levels[level][node] == exact {
                break; // ancestors above are unions of unchanged MBRs
            }
            self.levels[level][node] = exact;
            node /= self.node_size;
        }
    }

    /// The exact union of everything node `(level, node)` covers.
    fn covered_union(&self, level: usize, node: usize) -> Option<Rect<D>> {
        let lo = node * self.node_size;
        let below: &[Rect<D>] = if level == 0 {
            &self.rects
        } else {
            &self.levels[level - 1]
        };
        let hi = ((node + 1) * self.node_size).min(below.len());
        Rect::union_all(below[lo..hi].iter())
    }

    /// Visits every entry whose rectangle contains `point` — the hot
    /// path of every matching oracle. Iterative (explicit fixed-size
    /// stack, zero heap allocation) with branchless bitmask scans over
    /// the contiguous MBR arrays.
    pub fn for_each_containing<'a, F>(&'a self, point: &Point<D>, visit: F)
    where
        F: FnMut(&'a K, &'a Rect<D>),
    {
        self.traverse(|rects| mask_containing(rects, point), visit);
    }

    /// Visits every entry whose rectangle intersects `window`; same
    /// allocation-free traversal as
    /// [`PackedRTree::for_each_containing`].
    pub fn for_each_intersecting<'a, F>(&'a self, window: &Rect<D>, visit: F)
    where
        F: FnMut(&'a K, &'a Rect<D>),
    {
        self.traverse(|rects| mask_intersecting(rects, window), visit);
    }

    /// Like [`PackedRTree::for_each_intersecting`], but the visitor
    /// returns `false` to abort the traversal early. This is the
    /// primitive for budgeted collection — "gather up to `N` entries
    /// in this window, stop if there are more" — where the plain
    /// visitor would pay for the full result set just to discard it.
    pub fn for_each_intersecting_while<'a, F>(&'a self, window: &Rect<D>, visit: F)
    where
        F: FnMut(&'a K, &'a Rect<D>) -> bool,
    {
        self.traverse_while(|rects| mask_intersecting(rects, window), visit);
    }

    /// Iterative pruned traversal. `mask_of` maps a slice of ≤
    /// `node_size` rectangles to a hit bitmask; nodes with set bits are
    /// descended, entries with set bits are emitted. The explicit stack
    /// is a fixed array ([`STACK_CAPACITY`] frames bounds every legal
    /// tree), so a query performs no heap allocation at all.
    fn traverse<'a>(
        &'a self,
        mask_of: impl Fn(&[Rect<D>]) -> u32,
        mut emit: impl FnMut(&'a K, &'a Rect<D>),
    ) {
        self.traverse_while(mask_of, |k, r| {
            emit(k, r);
            true
        });
    }

    /// [`PackedRTree::traverse`] with an abortable visitor: emitting
    /// `false` unwinds the whole traversal immediately.
    fn traverse_while<'a>(
        &'a self,
        mask_of: impl Fn(&[Rect<D>]) -> u32,
        mut emit: impl FnMut(&'a K, &'a Rect<D>) -> bool,
    ) {
        let Some(root) = self.levels.last() else {
            return;
        };
        if mask_of(&root[0..1]) == 0 {
            return;
        }
        let mut stack = [(0u32, 0u32); STACK_CAPACITY];
        let mut top = 1usize;
        stack[0] = (self.levels.len() as u32 - 1, 0);
        while top > 0 {
            top -= 1;
            let (level, node) = stack[top];
            let lo = node as usize * self.node_size;
            if level == 0 {
                let hi = (lo + self.node_size).min(self.rects.len());
                let mut mask = mask_of(&self.rects[lo..hi]);
                while mask != 0 {
                    let slot = lo + mask.trailing_zeros() as usize;
                    if !emit(&self.keys[slot], &self.rects[slot]) {
                        return;
                    }
                    mask &= mask - 1;
                }
            } else {
                let below = &self.levels[level as usize - 1];
                let hi = (lo + self.node_size).min(below.len());
                let mut mask = mask_of(&below[lo..hi]);
                while mask != 0 {
                    let child = lo as u32 + mask.trailing_zeros();
                    debug_assert!(top < STACK_CAPACITY);
                    stack[top] = (level - 1, child);
                    top += 1;
                    mask &= mask - 1;
                }
            }
        }
    }

    /// Visits, for every probe in `points`, each entry whose rectangle
    /// contains it — in **one joint descent** of the tree instead of
    /// `points.len()` independent root-to-leaf walks.
    ///
    /// The traversal is node-major: each node MBR is loaded once and
    /// streamed against the batch's surviving probe subset (branchless
    /// filtering into reused index buffers), instead of every probe
    /// re-reading the level arrays on its own. The comparison count is
    /// identical to per-probe descents; the win is pure memory
    /// behavior, and it grows with batch size and probe locality
    /// (sorting probes along a space-filling curve first makes the
    /// surviving subsets coherent).
    ///
    /// Hits are delivered as `(probe_index, key, rect)`; probe order
    /// within a node follows the batch, but no global emission order is
    /// guaranteed. Probes are independent — duplicates are fine.
    ///
    /// # Panics
    ///
    /// Panics if `points.len() > u32::MAX` (probe indexes are `u32`,
    /// matching the tree's own 2^32-entry limit).
    pub fn for_each_containing_batch<'a, F>(&'a self, points: &[Point<D>], mut emit: F)
    where
        F: FnMut(u32, &'a K, &'a Rect<D>),
    {
        assert!(
            points.len() <= u32::MAX as usize,
            "batch is limited to 2^32 probes"
        );
        let Some(root) = self.levels.last() else {
            return;
        };
        let active: Vec<u32> = (0..points.len() as u32)
            .filter(|&pi| root[0].contains_point_branchless(&points[pi as usize]))
            .collect();
        if active.is_empty() {
            return;
        }
        let mut pool: Vec<Vec<u32>> = Vec::new();
        self.walk_batch(
            self.levels.len() - 1,
            0,
            &active,
            points,
            &mut pool,
            &mut emit,
        );
    }

    /// One frame of the joint batch descent: `active` holds the probe
    /// indexes already known to lie inside node `(level, node)`'s MBR.
    fn walk_batch<'a, F>(
        &'a self,
        level: usize,
        node: usize,
        active: &[u32],
        points: &[Point<D>],
        pool: &mut Vec<Vec<u32>>,
        emit: &mut F,
    ) where
        F: FnMut(u32, &'a K, &'a Rect<D>),
    {
        let lo = node * self.node_size;
        if level == 0 {
            let hi = (lo + self.node_size).min(self.rects.len());
            let rects = &self.rects[lo..hi];
            for &pi in active {
                let mut mask = mask_containing(rects, &points[pi as usize]);
                while mask != 0 {
                    let slot = lo + mask.trailing_zeros() as usize;
                    emit(pi, &self.keys[slot], &self.rects[slot]);
                    mask &= mask - 1;
                }
            }
        } else {
            let below = &self.levels[level - 1];
            let hi = (lo + self.node_size).min(below.len());
            let mut subset = pool.pop().unwrap_or_default();
            for (child, mbr) in below.iter().enumerate().take(hi).skip(lo) {
                subset.clear();
                for &pi in active {
                    if mbr.contains_point_branchless(&points[pi as usize]) {
                        subset.push(pi);
                    }
                }
                if !subset.is_empty() {
                    self.walk_batch(level - 1, child, &subset, points, pool, emit);
                }
            }
            subset.clear();
            pool.push(subset);
        }
    }

    /// Keys whose rectangle contains `point`. Prefer
    /// [`PackedRTree::for_each_containing`] on hot paths; this
    /// convenience form allocates the result vector.
    pub fn search_point(&self, point: &Point<D>) -> Vec<&K> {
        let mut out = Vec::new();
        self.for_each_containing(point, |k, _| out.push(k));
        out
    }

    /// Keys whose rectangle intersects `window`.
    pub fn search_intersecting(&self, window: &Rect<D>) -> Vec<&K> {
        let mut out = Vec::new();
        self.for_each_intersecting(window, |k, _| out.push(k));
        out
    }

    /// Checks the packed-level invariants: implicit-topology level
    /// lengths, exact node MBRs at every level, and array consistency.
    ///
    /// # Errors
    ///
    /// Returns the first [`PackedValidationError`] found.
    pub fn validate(&self) -> Result<(), PackedValidationError> {
        if self.keys.len() != self.rects.len() {
            return Err(PackedValidationError::Inconsistent);
        }
        if self.keys.is_empty() {
            return if self.levels.is_empty() {
                Ok(())
            } else {
                Err(PackedValidationError::Inconsistent)
            };
        }
        if self.levels.is_empty() || self.levels.last().map(Vec::len) != Some(1) {
            return Err(PackedValidationError::Inconsistent);
        }
        let mut below_len = self.rects.len();
        for (level, nodes) in self.levels.iter().enumerate() {
            let expected = below_len.div_ceil(self.node_size);
            if nodes.len() != expected {
                return Err(PackedValidationError::WrongLevelLength {
                    level,
                    found: nodes.len(),
                    expected,
                });
            }
            for (node, mbr) in nodes.iter().enumerate() {
                if self.covered_union(level, node).as_ref() != Some(mbr) {
                    return Err(PackedValidationError::WrongMbr { level, node });
                }
            }
            below_len = nodes.len();
        }
        Ok(())
    }
}

impl<K, const D: usize> SpatialIndex<K, D> for PackedRTree<K, D> {
    fn len(&self) -> usize {
        self.keys.len()
    }

    fn for_each_containing<'a, F>(&'a self, point: &Point<D>, visit: F)
    where
        F: FnMut(&'a K, &'a Rect<D>),
        K: 'a,
    {
        PackedRTree::for_each_containing(self, point, visit);
    }

    fn for_each_intersecting<'a, F>(&'a self, window: &Rect<D>, visit: F)
    where
        F: FnMut(&'a K, &'a Rect<D>),
        K: 'a,
    {
        PackedRTree::for_each_intersecting(self, window, visit);
    }

    fn for_each_containing_batch<'a, F>(&'a self, points: &[Point<D>], visit: F)
    where
        F: FnMut(u32, &'a K, &'a Rect<D>),
        K: 'a,
    {
        PackedRTree::for_each_containing_batch(self, points, visit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize) -> Vec<(usize, Rect<2>)> {
        (0..n)
            .map(|i| {
                let x = (i % 32) as f64 * 3.0;
                let y = (i / 32) as f64 * 3.0;
                (i, Rect::new([x, y], [x + 2.0, y + 2.0]))
            })
            .collect()
    }

    #[test]
    fn empty_tree() {
        let tree: PackedRTree<u32, 2> = PackedRTree::bulk_load(Vec::new());
        assert!(tree.is_empty());
        assert_eq!(tree.height(), 1);
        assert_eq!(tree.mbr(), None);
        assert!(tree.search_point(&Point::new([0.0, 0.0])).is_empty());
        tree.validate().unwrap();
    }

    #[test]
    fn build_sizes_and_completeness() {
        for n in [1usize, 2, 15, 16, 17, 256, 257, 1000] {
            let tree = PackedRTree::bulk_load(grid(n));
            assert_eq!(tree.len(), n);
            tree.validate().unwrap_or_else(|e| panic!("n={n}: {e}"));
            for (k, r) in grid(n) {
                let hits = tree.search_point(&r.center());
                assert!(hits.contains(&&k), "n={n}: entry {k} lost");
            }
        }
    }

    #[test]
    fn matches_linear_scan_on_windows() {
        let entries = grid(500);
        let tree = PackedRTree::bulk_load_with_node_size(8, entries.clone());
        for window in [
            Rect::new([0.0, 0.0], [10.0, 10.0]),
            Rect::new([40.0, 10.0], [70.0, 30.0]),
            Rect::new([500.0, 500.0], [600.0, 600.0]),
        ] {
            let mut got: Vec<usize> = tree
                .search_intersecting(&window)
                .into_iter()
                .copied()
                .collect();
            got.sort_unstable();
            let mut want: Vec<usize> = entries
                .iter()
                .filter(|(_, r)| r.intersects(&window))
                .map(|(k, _)| *k)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn update_refits_ancestors() {
        let mut tree = PackedRTree::bulk_load_with_node_size(4, grid(200));
        let slot = tree.slot_of(&77).expect("entry 77 exists");
        let moved = Rect::new([900.0, 900.0], [901.0, 901.0]);
        tree.update(slot, moved);
        tree.validate().unwrap();
        let hits = tree.search_point(&Point::new([900.5, 900.5]));
        assert_eq!(hits, vec![&77]);
        // The old location no longer reports the moved entry.
        let (_, old) = grid(200)[77];
        assert!(!tree.search_point(&old.center()).contains(&&77));
        // Shrinking also refits exactly.
        tree.update(slot, Rect::new([900.2, 900.2], [900.4, 900.4]));
        tree.validate().unwrap();
    }

    #[test]
    fn unbounded_entries_are_searchable() {
        let mut entries = grid(50);
        entries.push((999, Rect::everything()));
        entries.push((998, Rect::new([0.0, 10.0], [f64::INFINITY, 12.0])));
        let tree = PackedRTree::bulk_load(entries);
        tree.validate().unwrap();
        let hits = tree.search_point(&Point::new([1_000_000.0, 11.0]));
        let mut keys: Vec<usize> = hits.into_iter().copied().collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![998, 999]);
    }

    #[test]
    fn high_dimensional_trees_work() {
        // 9 × HILBERT_ORDER exceeds 128 bits; the curve coarsens
        // instead of panicking, and searches stay exact.
        let entries: Vec<(usize, Rect<9>)> = (0..100)
            .map(|i| {
                let o = i as f64;
                (i, Rect::new([o; 9], [o + 0.5; 9]))
            })
            .collect();
        let tree = PackedRTree::bulk_load(entries);
        tree.validate().unwrap();
        let hits = tree.search_point(&Point::new([42.25; 9]));
        assert_eq!(hits, vec![&42]);
    }

    #[test]
    fn duplicate_rects_supported() {
        let r = Rect::new([0.0, 0.0], [1.0, 1.0]);
        let tree = PackedRTree::bulk_load((0..40usize).map(|i| (i, r)).collect());
        assert_eq!(tree.search_point(&Point::new([0.5, 0.5])).len(), 40);
        tree.validate().unwrap();
    }

    #[test]
    fn validate_catches_stale_mbr() {
        let mut tree = PackedRTree::bulk_load_with_node_size(4, grid(100));
        // Corrupt a leaf-node MBR behind validate's back.
        tree.levels[0][0] = Rect::new([0.0, 0.0], [0.1, 0.1]);
        assert!(matches!(
            tree.validate(),
            Err(PackedValidationError::WrongMbr { level: 0, node: 0 })
        ));
    }

    #[test]
    fn batch_visit_equals_per_point_visits() {
        let tree = PackedRTree::bulk_load_with_node_size(8, grid(400));
        let probes: Vec<Point<2>> = (0..250)
            .map(|i| Point::new([(i % 40) as f64 * 2.3, (i / 40) as f64 * 5.1]))
            .collect();
        let mut batched: Vec<Vec<usize>> = vec![Vec::new(); probes.len()];
        tree.for_each_containing_batch(&probes, |pi, &k, _| batched[pi as usize].push(k));
        for (p, got) in probes.iter().zip(batched.iter_mut()) {
            got.sort_unstable();
            let mut want: Vec<usize> = tree.search_point(p).into_iter().copied().collect();
            want.sort_unstable();
            assert_eq!(got, &want, "probe {p:?}");
        }
        // Empty batch and empty tree are both no-ops.
        tree.for_each_containing_batch(&[], |_, _, _| unreachable!());
        let empty: PackedRTree<usize, 2> = PackedRTree::bulk_load(Vec::new());
        empty.for_each_containing_batch(&probes, |_, _, _| unreachable!());
    }

    #[test]
    fn intersecting_while_aborts_early() {
        let tree = PackedRTree::bulk_load_with_node_size(4, grid(300));
        let window = Rect::new([0.0, 0.0], [100.0, 100.0]);
        let full = tree.search_intersecting(&window).len();
        assert!(full > 10);
        let mut seen = 0usize;
        tree.for_each_intersecting_while(&window, |_, _| {
            seen += 1;
            seen < 10
        });
        assert_eq!(seen, 10, "visitor stops the traversal at the 10th hit");
        // A never-aborting while-visitor sees everything.
        let mut all = 0usize;
        tree.for_each_intersecting_while(&window, |_, _| {
            all += 1;
            true
        });
        assert_eq!(all, full);
    }

    #[test]
    fn visitor_counts_without_allocating_results() {
        let tree = PackedRTree::bulk_load(grid(300));
        let mut count = 0usize;
        tree.for_each_containing(&Point::new([1.0, 1.0]), |_, _| count += 1);
        assert_eq!(count, tree.search_point(&Point::new([1.0, 1.0])).len());
    }
}
