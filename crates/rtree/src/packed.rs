//! The packed, cache-friendly R-tree backend.
//!
//! [`PackedRTree`] stores the whole index in contiguous `Vec`-backed
//! level arrays — no per-node boxes, no pointer chasing. It is built
//! bottom-up in one pass: entries are sorted by the Hilbert index of
//! their center ([`drtree_spatial::hilbert`]), tiled into nodes of
//! `node_size` consecutive entries, and parent levels pack the level
//! below the same way until a single root remains (the flatbush /
//! geo-index construction).
//!
//! Topology is implicit: node `j` of level `l` always covers children
//! `j·B .. min((j+1)·B, len(l−1))` of the level below, so the only
//! stored data are the node MBRs themselves. Searches are iterative
//! (explicit stack, no recursion), and the visitor API delivers hits
//! through a callback so the hot path allocates nothing per result.
//!
//! The tree is static in *shape* but serves live workloads through
//! [`PackedRTree::update`], which rewrites one entry's rectangle and
//! incrementally refits the `O(log N)` ancestor MBRs above it.
//!
//! # The two-tier search: packed levels + delta layer
//!
//! Growing or shrinking the entry set does **not** require an
//! immediate rebuild. The tree carries a bounded *delta layer*:
//!
//! * **staging buffer** — [`PackedRTree::stage_insert`] appends new
//!   entries to a small unsorted side array. Every visitor
//!   ([`PackedRTree::for_each_containing`], the batched descent, the
//!   abortable window walk) searches the packed levels *and* then
//!   scans the staging buffer with the same branchless ≤32-wide
//!   bitmask chunks the leaf level uses, so staged entries are visible
//!   immediately and the scan stays cheap while the buffer is small.
//! * **tombstones** — [`PackedRTree::tombstone`] marks a packed slot
//!   dead in a bitmap ([`PackedRTree::is_live`]); traversals skip dead
//!   slots at emission time. Node MBRs are left untouched (they only
//!   over-approximate, which costs pruning quality, never
//!   correctness).
//!
//! [`PackedRTree::compact`] folds both back into a fresh Hilbert
//! bulk-load; [`PackedRTree::needs_compaction`] says when the delta
//! has outgrown the configured fraction of the packed slots
//! ([`PackedRTree::set_delta_fraction`]), so a churning consumer (the
//! pub/sub broker's subscription oracle) pays one `O(N log N)` merge
//! per *delta-fraction* worth of mutations instead of one full rebuild
//! per mutation batch.
//!
//! # Concurrent compaction: frozen snapshots
//!
//! The merge itself need not stall the serving path either. The packed
//! tier lives behind an [`Arc`]-shared immutable core, so
//! [`PackedRTree::freeze`] can hand a worker a [`FrozenShard`] — the
//! shared core plus a copy of the delta — in `O(delta)` time, while
//! the live tree keeps answering exact queries and absorbing new
//! mutations into a *second-generation* delta overlaid on the frozen
//! state. [`FrozenShard::merge`] performs the bulk-load off-path
//! (e.g. on a [`crate::parallel::Job`]), and
//! [`PackedRTree::install`] swaps the merged core in, re-applies the
//! removals that landed mid-compaction, and carries the
//! second-generation delta forward — the only on-path work is that
//! `O(mutations-during-merge)` fix-up.

use std::sync::Arc;

use drtree_spatial::hilbert::GridMapper;
use drtree_spatial::{Point, Rect};

use crate::index::SpatialIndex;

/// Default node capacity; 16 balances depth against per-node scan cost
/// (the flatbush default).
pub const DEFAULT_NODE_SIZE: usize = 16;

/// Hard cap on node capacity: per-node hit bitmasks live in one `u32`
/// word, and the fixed traversal stack ([`STACK_CAPACITY`]) must cover
/// `(node_size − 1) · (height − 1) + 1` frames for any 2^32-entry tree.
const MAX_NODE_SIZE: usize = 32;

/// Worst-case traversal stack depth: `node_size = 32` gives height ≤ 7
/// at 2^32 entries, so `31 · 6 + 1 = 187` frames bound every legal
/// tree; 256 leaves margin.
const STACK_CAPACITY: usize = 256;

/// Default delta-layer budget: compact when staged entries plus
/// tombstones exceed this fraction of the packed slots. A quarter
/// keeps the staging scan a small constant of the packed search while
/// amortizing one `O(N log N)` merge over `N/4` mutations.
pub const DEFAULT_DELTA_FRACTION: f64 = 0.25;

/// The Hilbert-sorted permutation of `entries` (indexes into it),
/// plus — for `D ≤ 2`, where a curve key fits 32 bits — the keys in
/// slot order (empty otherwise), which the core retains to serve
/// sorted-splice merges.
///
/// The key/index pair is packed into one scalar wherever it fits —
/// `u64` for `D ≤ 2`, `u128` for `D ≤ 6` — so the dominant sort moves
/// machine words instead of tuples; wider dimensions fall back to
/// tuple sorting. All variants order by (curve key, insertion index),
/// and the caller applies the permutation once so every per-entry
/// array lives in slot order.
fn curve_order<K, const D: usize>(
    mapper: &GridMapper<D>,
    entries: &[(K, Rect<D>)],
) -> (Vec<u32>, Vec<u32>) {
    if D <= 2 {
        let mut tagged: Vec<u64> = entries
            .iter()
            .enumerate()
            .map(|(i, (_, r))| ((mapper.key(r) as u64) << 32) | i as u64)
            .collect();
        tagged.sort_unstable();
        let keys = tagged.iter().map(|&t| (t >> 32) as u32).collect();
        (tagged.into_iter().map(|t| t as u32).collect(), keys)
    } else if D <= 6 {
        let mut tagged: Vec<u128> = entries
            .iter()
            .enumerate()
            .map(|(i, (_, r))| (mapper.key(r) << 32) | i as u128)
            .collect();
        tagged.sort_unstable();
        (tagged.into_iter().map(|t| t as u32).collect(), Vec::new())
    } else {
        let mut tagged: Vec<(u128, u32)> = entries
            .iter()
            .enumerate()
            .map(|(i, (_, r))| (mapper.key(r), i as u32))
            .collect();
        tagged.sort_unstable();
        (tagged.into_iter().map(|(_, i)| i).collect(), Vec::new())
    }
}

/// `true` when bit `i` is set in the bitmap `words`. Out-of-range bits
/// read as unset — the delta-layer bitmaps (tombstones, staged-dead)
/// are lazily allocated and start empty, so "no word" means "no bit".
#[inline]
fn bit_set(words: &[u64], i: usize) -> bool {
    words
        .get(i >> 6)
        .is_some_and(|word| word & (1u64 << (i & 63)) != 0)
}

/// Bitmask of rectangles in `rects` (≤ 32 of them) containing `point`.
///
/// Branchless on purpose: every test runs to completion with bitwise
/// `&`, so the loop vectorizes over the contiguous MBR array and pays
/// no branch mispredictions — the payoff of the flat layout.
#[inline]
fn mask_containing<const D: usize>(rects: &[Rect<D>], point: &Point<D>) -> u32 {
    debug_assert!(rects.len() <= MAX_NODE_SIZE);
    let mut mask = 0u32;
    for (i, r) in rects.iter().enumerate() {
        let mut hit = true;
        for d in 0..D {
            let c = point.coord(d);
            hit &= (r.lo(d) <= c) & (c <= r.hi(d));
        }
        mask |= u32::from(hit) << i;
    }
    mask
}

/// Iterative pruned descent over a packed core, emitting live slot
/// indexes — the traversal kernel shared by the owning
/// [`PackedRTree`] and read-only [`FrozenShard`] snapshots (which hold
/// the same `Arc`-shared core plus their own tombstone copy). The
/// explicit stack is a fixed array ([`STACK_CAPACITY`] frames bounds
/// every legal tree), so a query performs no heap allocation at all.
/// Returns `false` when the visitor aborted.
fn traverse_core_while<K, const D: usize>(
    core: &PackedCore<K, D>,
    tombstones: &[u64],
    mask_of: &impl Fn(&[Rect<D>]) -> u32,
    emit: &mut impl FnMut(usize) -> bool,
) -> bool {
    let Some(root) = core.levels.last() else {
        return true;
    };
    if mask_of(&root[0..1]) == 0 {
        return true;
    }
    let mut stack = [(0u32, 0u32); STACK_CAPACITY];
    let mut top = 1usize;
    stack[0] = (core.levels.len() as u32 - 1, 0);
    while top > 0 {
        top -= 1;
        let (level, node) = stack[top];
        let lo = node as usize * core.node_size;
        if level == 0 {
            let hi = (lo + core.node_size).min(core.rects.len());
            let mut mask = mask_of(&core.rects[lo..hi]);
            while mask != 0 {
                let slot = lo + mask.trailing_zeros() as usize;
                if !bit_set(tombstones, slot) && !emit(slot) {
                    return false;
                }
                mask &= mask - 1;
            }
        } else {
            let below = &core.levels[level as usize - 1];
            let hi = (lo + core.node_size).min(below.len());
            let mut mask = mask_of(&below[lo..hi]);
            while mask != 0 {
                let child = lo as u32 + mask.trailing_zeros();
                debug_assert!(top < STACK_CAPACITY);
                stack[top] = (level - 1, child);
                top += 1;
                mask &= mask - 1;
            }
        }
    }
    true
}

/// Bitmask of rectangles in `rects` (≤ 32 of them) intersecting
/// `window`; branchless like [`mask_containing`].
#[inline]
fn mask_intersecting<const D: usize>(rects: &[Rect<D>], window: &Rect<D>) -> u32 {
    debug_assert!(rects.len() <= MAX_NODE_SIZE);
    let mut mask = 0u32;
    for (i, r) in rects.iter().enumerate() {
        let mut hit = true;
        for d in 0..D {
            hit &= (r.lo(d) <= window.hi(d)) & (window.lo(d) <= r.hi(d));
        }
        mask |= u32::from(hit) << i;
    }
    mask
}

/// A packed R-tree: all MBRs in flat per-level arrays, Hilbert
/// bulk-loaded, with iterative allocation-free searches.
///
/// `K` is the caller's key type; duplicates are permitted. Entry order
/// after construction follows the Hilbert curve, and every entry is
/// addressed by its *slot* (index in that order) for `O(log N)`
/// in-place updates.
///
/// # Example
///
/// ```
/// use drtree_rtree::{PackedRTree, SpatialIndex};
/// use drtree_spatial::{Point, Rect};
///
/// let entries: Vec<(u32, Rect<2>)> = (0..100)
///     .map(|i| {
///         let x = f64::from(i % 10) * 10.0;
///         let y = f64::from(i / 10) * 10.0;
///         (i, Rect::new([x, y], [x + 5.0, y + 5.0]))
///     })
///     .collect();
/// let tree = PackedRTree::bulk_load(entries);
/// assert_eq!(tree.len(), 100);
/// let hits = tree.search_point(&Point::new([2.0, 2.0]));
/// assert_eq!(hits, vec![&0]);
/// tree.validate()?;
/// # Ok::<(), drtree_rtree::PackedValidationError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PackedRTree<K, const D: usize> {
    /// The immutable packed tier, shared by `Arc` with any outstanding
    /// [`FrozenShard`] compaction snapshot. Cloning the tree (or
    /// freezing it) is `O(1)` on this tier; the rare mutating paths
    /// ([`PackedRTree::update`], [`PackedRTree::drain_live`]) go
    /// through [`Arc::make_mut`] and stay in-place whenever no
    /// snapshot is outstanding.
    core: Arc<PackedCore<K, D>>,
    /// Delta-layer staging buffer: keys of entries inserted since the
    /// last bulk load / compaction, parallel to `staged_rects`.
    staged_keys: Vec<K>,
    /// Staged rectangles — the contiguous array the staging-scan
    /// bitmask chunks run over.
    staged_rects: Vec<Rect<D>>,
    /// Tombstone bitmap over packed slots (one bit per slot, empty
    /// until the first tombstone); set bits are dead entries skipped at
    /// emission time.
    tombstones: Vec<u64>,
    /// Number of set bits in `tombstones`.
    tombstone_count: usize,
    /// Union of every rectangle ever staged since the last compaction
    /// (an over-approximation after staged removals); folded into
    /// [`PackedRTree::mbr`] so delta entries are never pruned away.
    staged_mbr: Option<Rect<D>>,
    /// Compaction trigger: see [`PackedRTree::needs_compaction`].
    delta_fraction: f64,
    /// `Some` while a [`PackedRTree::freeze`] snapshot is outstanding:
    /// the bookkeeping [`PackedRTree::install`] needs to reconcile the
    /// merged core with mutations that landed mid-compaction.
    epoch: Option<CompactionEpoch>,
}

/// The immutable packed tier: slot-ordered entry arrays plus the
/// implicit-topology level MBRs. Shared by [`Arc`] between a live
/// [`PackedRTree`] and its frozen compaction snapshots, so freezing is
/// a reference-count bump, not a copy.
#[derive(Debug, Clone)]
struct PackedCore<K, const D: usize> {
    node_size: usize,
    /// Entry keys in slot (Hilbert) order, parallel to `rects`: a hit
    /// at `slot` reads `keys[slot]` directly, and because search
    /// results come out as runs of nearby slots, those reads stay on
    /// the same cache lines instead of bouncing through a permutation
    /// array.
    keys: Vec<K>,
    /// Entry rectangles in slot (Hilbert) order — the contiguous array
    /// the leaf-level mask scans run over.
    rects: Vec<Rect<D>>,
    /// `levels[0]` holds the leaf-node MBRs, each covering `node_size`
    /// consecutive entries; each further level packs the one below; the
    /// last level is the root (length 1). Empty iff the packed tier is
    /// empty (staged entries may still exist).
    levels: Vec<Vec<Rect<D>>>,
    /// The world rectangle the build's [`GridMapper`] quantized
    /// against — what [`FrozenShard::merge`] compares to decide
    /// whether the sorted-splice fast path applies.
    world: Option<Rect<D>>,
    /// Per-slot Hilbert curve keys, parallel to `rects`, kept for
    /// `D ≤ 2` (where a key fits 32 bits; empty otherwise). They make
    /// a compaction merge an `O(N + S log S)` sorted splice instead of
    /// an `O(N log N)` re-sort: the packed tier is already in key
    /// order, so only the staged delta needs sorting. Key *quality*
    /// (not correctness — searches never depend on entry order)
    /// degrades with [`PackedRTree::update`] drift, exactly like the
    /// node MBRs do.
    curve_keys: Vec<u32>,
}

/// Packs `rects` bottom-up into implicit-topology level MBR arrays
/// until a single root remains — the construction tail shared by the
/// full Hilbert bulk-load and the sorted-splice merge.
fn pack_levels<const D: usize>(rects: &[Rect<D>], node_size: usize) -> Vec<Vec<Rect<D>>> {
    let mut levels: Vec<Vec<Rect<D>>> = Vec::new();
    let mut below: &[Rect<D>] = rects;
    loop {
        let level: Vec<Rect<D>> = below
            .chunks(node_size)
            .map(|chunk| Rect::union_all(chunk.iter()).expect("chunks are non-empty"))
            .collect();
        let done = level.len() == 1;
        levels.push(level);
        if done {
            return levels;
        }
        below = levels.last().expect("just pushed");
    }
}

impl<K, const D: usize> PackedCore<K, D> {
    /// The exact union of everything node `(level, node)` covers.
    fn covered_union(&self, level: usize, node: usize) -> Option<Rect<D>> {
        let lo = node * self.node_size;
        let below: &[Rect<D>] = if level == 0 {
            &self.rects
        } else {
            &self.levels[level - 1]
        };
        let hi = ((node + 1) * self.node_size).min(below.len());
        Rect::union_all(below[lo..hi].iter())
    }
}

/// Mid-compaction bookkeeping: what changed since the freeze, so
/// [`PackedRTree::install`] can reconcile the worker's merged core
/// with the live tree.
#[derive(Debug, Clone)]
struct CompactionEpoch {
    /// Staged entries `[0..frozen_staged_len)` were shipped to the
    /// worker; later stagings are the second-generation delta that
    /// survives the install.
    frozen_staged_len: usize,
    /// Tombstone bitmap as of the freeze — bits set *since* are
    /// removals the merged core never saw, re-applied on install.
    frozen_tombstones: Vec<u64>,
    /// Set bits in `frozen_tombstones` (what the merge reclaims).
    frozen_tombstone_count: usize,
    /// Dead bits over the frozen staged prefix: frozen staged entries
    /// removed mid-compaction. They stay in the buffer (the prefix is
    /// index-stable while frozen) but no visitor emits them, and the
    /// install re-removes them from the merged core.
    staged_dead: Vec<u64>,
    /// Set bits in `staged_dead`.
    staged_dead_count: usize,
}

impl CompactionEpoch {
    fn is_staged_dead(&self, index: usize) -> bool {
        bit_set(&self.staged_dead, index)
    }
}

/// An immutable compaction snapshot of one [`PackedRTree`], produced
/// by [`PackedRTree::freeze`]: the `Arc`-shared packed core plus a
/// copy of the delta layer as of the freeze.
///
/// The snapshot owns everything it needs, so it can be moved to a
/// worker thread (e.g. via [`crate::parallel::Job`]) and merged there
/// with [`FrozenShard::merge`] while the originating tree keeps
/// serving reads and absorbing new mutations. Hand the merged tree
/// back to [`PackedRTree::install`] to complete the compaction.
#[derive(Debug, Clone)]
pub struct FrozenShard<K, const D: usize> {
    core: Arc<PackedCore<K, D>>,
    staged_keys: Vec<K>,
    staged_rects: Vec<Rect<D>>,
    tombstones: Vec<u64>,
    tombstone_count: usize,
    delta_fraction: f64,
}

impl<K, const D: usize> FrozenShard<K, D> {
    /// Live entries in the snapshot (packed slots minus tombstones
    /// plus frozen staged entries) — the size of the merge's input.
    pub fn len(&self) -> usize {
        self.core.keys.len() - self.tombstone_count + self.staged_keys.len()
    }

    /// `true` when the snapshot holds no live entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Visits every entry whose rectangle contains `point`, exactly as
    /// the source tree would have at snapshot time — the read path that
    /// makes a [`FrozenShard`] a *query* snapshot, not just merge
    /// input. Same allocation-free pruned descent as
    /// [`PackedRTree::for_each_containing`] (the kernel is shared), and
    /// `&self` only: an `Arc<FrozenShard>` can serve concurrent readers
    /// while the live tree keeps mutating.
    ///
    /// Tombstones frozen with the snapshot are skipped; every staged
    /// entry in the snapshot is live by construction
    /// ([`PackedRTree::snapshot`] filters retired ones out).
    pub fn for_each_containing<'a, F>(&'a self, point: &Point<D>, mut visit: F)
    where
        F: FnMut(&'a K, &'a Rect<D>),
    {
        let mask_of = |rects: &[Rect<D>]| mask_containing(rects, point);
        let aborted = !traverse_core_while(&self.core, &self.tombstones, &mask_of, &mut |slot| {
            visit(&self.core.keys[slot], &self.core.rects[slot]);
            true
        });
        if aborted {
            return;
        }
        for (chunk_idx, chunk) in self.staged_rects.chunks(MAX_NODE_SIZE).enumerate() {
            let mut mask = mask_of(chunk);
            while mask != 0 {
                let i = chunk_idx * MAX_NODE_SIZE + mask.trailing_zeros() as usize;
                visit(&self.staged_keys[i], &self.staged_rects[i]);
                mask &= mask - 1;
            }
        }
    }

    /// Folds the snapshot's staging buffer and tombstones into a fresh
    /// packed tree of its live entries — the merge work, run wherever
    /// the caller likes (typically a background
    /// [`crate::parallel::Job`]). The returned tree has an empty delta
    /// layer and inherits the frozen tree's node size and delta
    /// fraction.
    ///
    /// The snapshot's structure makes the common case cheap: the
    /// packed tier is already in Hilbert order, so when the merged
    /// entry set's world is unchanged (and the core retains its curve
    /// keys — `D ≤ 2`), the merge sorts only the staged delta and
    /// **splices** the two sorted streams in `O(N + S log S)` — no
    /// per-entry key derivation, no `O(N log N)` re-sort of the base.
    /// A grown world (or missing keys) falls back to the full Hilbert
    /// bulk-load.
    pub fn merge(&self) -> PackedRTree<K, D>
    where
        K: Clone,
    {
        let core = &*self.core;
        let is_live = |slot: usize| !bit_set(&self.tombstones, slot);
        let total = self.len();
        let live_rects = core
            .rects
            .iter()
            .enumerate()
            .filter(|&(slot, _)| is_live(slot))
            .map(|(_, r)| r);
        let world = GridMapper::world_of(live_rects.chain(self.staged_rects.iter()))
            .unwrap_or_else(|| Rect::new([0.0; D], [1.0; D]));

        if total > 0 && core.curve_keys.len() == core.keys.len() && core.world == Some(world) {
            // Sorted splice. Stage tags pack (key, index) into one u64
            // exactly like the bulk-load sort; ties land *after* the
            // equal-keyed base slots, matching the bulk-load's
            // insertion-order tiebreak (base entries precede staged).
            let mapper = GridMapper::new(&world);
            let mut staged: Vec<u64> = self
                .staged_rects
                .iter()
                .enumerate()
                .map(|(i, r)| ((mapper.key(r) as u64) << 32) | i as u64)
                .collect();
            staged.sort_unstable();
            let mut keys: Vec<K> = Vec::with_capacity(total);
            let mut rects: Vec<Rect<D>> = Vec::with_capacity(total);
            let mut curve_keys: Vec<u32> = Vec::with_capacity(total);
            let push_staged = |tag: u64,
                               keys: &mut Vec<K>,
                               rects: &mut Vec<Rect<D>>,
                               curve_keys: &mut Vec<u32>| {
                let i = tag as u32 as usize;
                keys.push(self.staged_keys[i].clone());
                rects.push(self.staged_rects[i]);
                curve_keys.push((tag >> 32) as u32);
            };
            let mut si = 0usize;
            for slot in 0..core.keys.len() {
                if !is_live(slot) {
                    continue;
                }
                let base_key = core.curve_keys[slot];
                while si < staged.len() && ((staged[si] >> 32) as u32) < base_key {
                    push_staged(staged[si], &mut keys, &mut rects, &mut curve_keys);
                    si += 1;
                }
                keys.push(core.keys[slot].clone());
                rects.push(core.rects[slot]);
                curve_keys.push(base_key);
            }
            while si < staged.len() {
                push_staged(staged[si], &mut keys, &mut rects, &mut curve_keys);
                si += 1;
            }
            debug_assert_eq!(keys.len(), total);
            let levels = pack_levels(&rects, core.node_size);
            return PackedRTree {
                core: Arc::new(PackedCore {
                    node_size: core.node_size,
                    keys,
                    rects,
                    levels,
                    world: Some(world),
                    curve_keys,
                }),
                staged_keys: Vec::new(),
                staged_rects: Vec::new(),
                tombstones: Vec::new(),
                tombstone_count: 0,
                staged_mbr: None,
                delta_fraction: self.delta_fraction,
                epoch: None,
            };
        }

        let mut entries: Vec<(K, Rect<D>)> = Vec::with_capacity(total);
        for (slot, (k, r)) in core.keys.iter().zip(&core.rects).enumerate() {
            if is_live(slot) {
                entries.push((k.clone(), *r));
            }
        }
        entries.extend(
            self.staged_keys
                .iter()
                .cloned()
                .zip(self.staged_rects.iter().copied()),
        );
        let mut merged = PackedRTree::bulk_load_with_node_size(core.node_size, entries);
        merged.delta_fraction = self.delta_fraction;
        merged
    }
}

/// How [`PackedRTree::remove_entry`] realized a removal — callers
/// maintaining external slot- or stage-indexed structures (e.g. the
/// pub/sub stab grid) patch themselves from this.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeltaRemoval<const D: usize> {
    /// A staged entry was removed by swap-remove: `index` is the
    /// vacated staging index, and `moved` is the rectangle of the
    /// former last staged entry now living at `index` (`None` when the
    /// removed entry *was* the last).
    Unstaged {
        /// The staging index that was vacated.
        index: usize,
        /// Rectangle of the entry swapped into `index`, if any.
        moved: Option<Rect<D>>,
    },
    /// A packed entry was tombstoned in place.
    Tombstoned {
        /// The now-dead packed slot.
        slot: usize,
    },
    /// A *frozen* staged entry was retired in place mid-compaction:
    /// the staging buffer keeps its slot (the frozen prefix is
    /// index-stable while a snapshot is outstanding) but the entry is
    /// dead to every visitor, and [`PackedRTree::install`] will
    /// re-remove it from the merged core.
    Retired {
        /// The now-dead staging index.
        index: usize,
    },
}

/// What one [`PackedRTree::compact`] call absorbed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaCompaction {
    /// Staged entries merged into the packed levels.
    pub staged_absorbed: usize,
    /// Tombstoned slots reclaimed.
    pub tombstones_reclaimed: usize,
}

impl DeltaCompaction {
    /// `true` when the compaction had nothing to do.
    pub fn is_noop(&self) -> bool {
        self.staged_absorbed == 0 && self.tombstones_reclaimed == 0
    }
}

/// A violated packed-level invariant, reported by
/// [`PackedRTree::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum PackedValidationError {
    /// A level's length is not `ceil(len(below) / node_size)`.
    WrongLevelLength {
        /// Level index (0 = leaf nodes).
        level: usize,
        /// Nodes found at the level.
        found: usize,
        /// Nodes the implicit topology requires.
        expected: usize,
    },
    /// A node MBR is not the exact union of what it covers.
    WrongMbr {
        /// Level index (0 = leaf nodes).
        level: usize,
        /// Node index within the level.
        node: usize,
    },
    /// The key and rectangle arrays disagree in length, or a non-empty
    /// tree has no levels.
    Inconsistent,
    /// The delta layer violates an invariant: staged arrays of unequal
    /// length, a tombstone count disagreeing with the bitmap, a bitmap
    /// of the wrong width, or a staged rectangle outside the tracked
    /// staged MBR.
    DeltaInconsistent,
}

impl std::fmt::Display for PackedValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PackedValidationError::WrongLevelLength {
                level,
                found,
                expected,
            } => write!(
                f,
                "packed level {level} has {found} nodes, topology requires {expected}"
            ),
            PackedValidationError::WrongMbr { level, node } => {
                write!(f, "node {node} of level {level} has a non-exact MBR")
            }
            PackedValidationError::Inconsistent => {
                f.write_str("entry arrays inconsistent with level arrays")
            }
            PackedValidationError::DeltaInconsistent => {
                f.write_str("delta layer inconsistent with its bookkeeping")
            }
        }
    }
}

impl std::error::Error for PackedValidationError {}

impl<K, const D: usize> PackedRTree<K, D> {
    /// Hilbert bulk-load with the default node size.
    pub fn bulk_load(entries: Vec<(K, Rect<D>)>) -> Self {
        Self::bulk_load_with_node_size(DEFAULT_NODE_SIZE, entries)
    }

    /// Hilbert bulk-load with node capacity `node_size` (clamped to
    /// `[2, 32]`; the cap keeps node bitmasks in one machine word and
    /// bounds the traversal stack).
    pub fn bulk_load_with_node_size(node_size: usize, entries: Vec<(K, Rect<D>)>) -> Self {
        let node_size = node_size.clamp(2, MAX_NODE_SIZE);
        let n = entries.len();
        assert!(
            n <= u32::MAX as usize,
            "packed tree is limited to 2^32 entries"
        );
        if n == 0 {
            return Self {
                core: Arc::new(PackedCore {
                    node_size,
                    keys: Vec::new(),
                    rects: Vec::new(),
                    levels: Vec::new(),
                    world: None,
                    curve_keys: Vec::new(),
                }),
                staged_keys: Vec::new(),
                staged_rects: Vec::new(),
                tombstones: Vec::new(),
                tombstone_count: 0,
                staged_mbr: None,
                delta_fraction: DEFAULT_DELTA_FRACTION,
                epoch: None,
            };
        }

        // Order entries along the Hilbert curve of their centers. The
        // sort permutes small scalar (key, index) packs, not the
        // entries themselves; ties keep insertion order via the index,
        // so construction is deterministic even on degenerate worlds.
        let world = GridMapper::world_of(entries.iter().map(|(_, r)| r))
            .unwrap_or_else(|| Rect::new([0.0; D], [1.0; D]));
        let mapper = GridMapper::new(&world);
        let (order, curve_keys) = curve_order(&mapper, &entries);
        let rects: Vec<Rect<D>> = order.iter().map(|&i| entries[i as usize].1).collect();
        // Apply the permutation to the keys as well (one O(N) move
        // pass, no `Clone` required), so hits read `keys[slot]` with
        // no indirection.
        let mut taken: Vec<Option<K>> = entries.into_iter().map(|(k, _)| Some(k)).collect();
        let keys: Vec<K> = order
            .iter()
            .map(|&i| taken[i as usize].take().expect("order is a permutation"))
            .collect();

        // Pack levels bottom-up until a single root remains.
        let levels = pack_levels(&rects, node_size);

        Self {
            core: Arc::new(PackedCore {
                node_size,
                keys,
                rects,
                levels,
                world: Some(world),
                curve_keys,
            }),
            staged_keys: Vec::new(),
            staged_rects: Vec::new(),
            tombstones: Vec::new(),
            tombstone_count: 0,
            staged_mbr: None,
            delta_fraction: DEFAULT_DELTA_FRACTION,
            epoch: None,
        }
    }

    /// Number of *live* entries: packed slots minus tombstones plus
    /// live staged entries.
    pub fn len(&self) -> usize {
        let staged_dead = self.epoch.as_ref().map_or(0, |e| e.staged_dead_count);
        self.core.keys.len() - self.tombstone_count + self.staged_keys.len() - staged_dead
    }

    /// `true` if the tree stores no live entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of packed slots, tombstoned ones included — the range
    /// valid for [`PackedRTree::entry`], [`PackedRTree::update`], and
    /// [`PackedRTree::tombstone`].
    pub fn packed_len(&self) -> usize {
        self.core.keys.len()
    }

    /// Node capacity the tree was packed with.
    pub fn node_size(&self) -> usize {
        self.core.node_size
    }

    /// Number of node levels, counting the leaf-node level as 1. An
    /// empty tree has height 1, mirroring [`crate::RTree::height`].
    pub fn height(&self) -> usize {
        self.core.levels.len().max(1)
    }

    /// The MBR of the whole tree — packed root unioned with the staged
    /// layer's MBR (`None` when no entry was ever stored since the last
    /// compaction). Tombstones never shrink it, so it may
    /// over-approximate; pruning against it stays conservative.
    pub fn mbr(&self) -> Option<Rect<D>> {
        let root = self.core.levels.last().map(|root| root[0]);
        match (root, self.staged_mbr) {
            (Some(a), Some(b)) => Some(a.union(&b)),
            (a, b) => a.or(b),
        }
    }

    /// The entry stored in packed `slot` (Hilbert order), tombstoned or
    /// not — check [`PackedRTree::is_live`] when it matters.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= self.packed_len()`.
    pub fn entry(&self, slot: usize) -> (&K, &Rect<D>) {
        (&self.core.keys[slot], &self.core.rects[slot])
    }

    /// All packed entry keys in slot order — the raw column behind
    /// [`PackedRTree::entry`], for consumers that index by slot in
    /// bulk (e.g. external acceleration structures keyed by slot).
    /// Includes tombstoned slots; excludes the staging buffer
    /// ([`PackedRTree::staged_keys`]).
    pub fn keys(&self) -> &[K] {
        &self.core.keys
    }

    /// All packed entry rectangles in slot order (parallel to
    /// [`PackedRTree::keys`]).
    pub fn rects(&self) -> &[Rect<D>] {
        &self.core.rects
    }

    /// All staged entry keys (delta layer, arbitrary order), parallel
    /// to [`PackedRTree::staged_rects`]. Mid-compaction the buffer may
    /// contain retired (dead) frozen entries — check
    /// [`PackedRTree::is_staged_live`] when it matters.
    pub fn staged_keys(&self) -> &[K] {
        &self.staged_keys
    }

    /// All staged entry rectangles (parallel to
    /// [`PackedRTree::staged_keys`]).
    pub fn staged_rects(&self) -> &[Rect<D>] {
        &self.staged_rects
    }

    /// Iterates over the *live* packed entries as `(slot, key, rect)`
    /// in Hilbert order, skipping tombstoned slots. Staged entries are
    /// not included ([`PackedRTree::staged_keys`] exposes them).
    pub fn entries(&self) -> impl Iterator<Item = (usize, &K, &Rect<D>)> {
        self.core
            .keys
            .iter()
            .zip(self.core.rects.iter())
            .enumerate()
            .filter(|&(slot, _)| self.is_live(slot))
            .map(|(slot, (k, r))| (slot, k, r))
    }

    /// The lowest live packed slot holding an entry with key `key`, if
    /// any.
    pub fn slot_of(&self, key: &K) -> Option<usize>
    where
        K: PartialEq,
    {
        self.core
            .keys
            .iter()
            .enumerate()
            .find(|&(slot, k)| k == key && self.is_live(slot))
            .map(|(slot, _)| slot)
    }

    /// Replaces the rectangle in `slot` and incrementally refits the
    /// `O(log N)` ancestor MBRs above it — the live-update path: no
    /// rebuild, no allocation.
    ///
    /// The entry keeps its slot, so a drifting subscription stays
    /// addressable; packing quality degrades only as far as the moved
    /// rectangle inflates its ancestors (refits are exact, shrinking
    /// included). Rebuild via [`PackedRTree::bulk_load`] when drift
    /// accumulates.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= self.packed_len()`, or while a
    /// [`PackedRTree::freeze`] snapshot is outstanding (the merged
    /// core could not see the moved rectangle; finish or abort the
    /// compaction first).
    pub fn update(&mut self, slot: usize, rect: Rect<D>)
    where
        K: Clone,
    {
        assert!(
            self.epoch.is_none(),
            "update during an outstanding compaction snapshot"
        );
        let core = Arc::make_mut(&mut self.core);
        assert!(slot < core.keys.len(), "slot {slot} out of bounds");
        debug_assert!(
            !bit_set(&self.tombstones, slot),
            "updating a tombstoned slot"
        );
        core.rects[slot] = rect;
        // Keep the stored curve key in step so a later sorted-splice
        // merge orders the moved entry by where it *is*, not where it
        // was packed (quality only — order never affects correctness).
        if !core.curve_keys.is_empty() {
            if let Some(world) = &core.world {
                core.curve_keys[slot] = GridMapper::new(world).key(&rect) as u32;
            }
        }
        let mut node = slot / core.node_size;
        for level in 0..core.levels.len() {
            let exact = core
                .covered_union(level, node)
                .expect("covered range is non-empty");
            if core.levels[level][node] == exact {
                break; // ancestors above are unions of unchanged MBRs
            }
            core.levels[level][node] = exact;
            node /= core.node_size;
        }
    }

    // ---- delta layer -------------------------------------------------

    /// Appends `(key, rect)` to the staging buffer. The entry is
    /// visible to every visitor immediately; it joins the packed levels
    /// at the next [`PackedRTree::compact`].
    pub fn stage_insert(&mut self, key: K, rect: Rect<D>) {
        self.staged_mbr = Some(match self.staged_mbr {
            Some(m) => m.union(&rect),
            None => rect,
        });
        self.staged_keys.push(key);
        self.staged_rects.push(rect);
    }

    /// Number of entries in the staging buffer.
    pub fn staged_len(&self) -> usize {
        self.staged_keys.len()
    }

    /// Number of tombstoned packed slots.
    pub fn tombstone_count(&self) -> usize {
        self.tombstone_count
    }

    /// Size of the delta layer: staged entries plus tombstones — the
    /// quantity [`PackedRTree::needs_compaction`] compares against the
    /// packed slot count.
    pub fn delta_len(&self) -> usize {
        self.staged_keys.len() + self.tombstone_count
    }

    /// `true` when packed slot `slot` has **not** been tombstoned.
    /// (Out-of-range slots read as live; the bitmap is only allocated
    /// once a tombstone exists.)
    #[inline]
    pub fn is_live(&self, slot: usize) -> bool {
        !bit_set(&self.tombstones, slot)
    }

    /// Tombstones packed slot `slot`: the entry stays in the arrays but
    /// no visitor will emit it again. Returns `false` when the slot was
    /// already dead. Node MBRs are *not* refitted (they only
    /// over-approximate); [`PackedRTree::compact`] reclaims the slot.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= self.packed_len()`.
    pub fn tombstone(&mut self, slot: usize) -> bool {
        assert!(slot < self.core.keys.len(), "slot {slot} out of bounds");
        if self.tombstones.is_empty() {
            self.tombstones = vec![0u64; self.core.keys.len().div_ceil(64)];
        }
        let (word, bit) = (slot >> 6, 1u64 << (slot & 63));
        if self.tombstones[word] & bit != 0 {
            return false;
        }
        self.tombstones[word] |= bit;
        self.tombstone_count += 1;
        true
    }

    /// `true` when staging index `index` has **not** been retired by a
    /// mid-compaction removal. Without an outstanding snapshot every
    /// staged entry is live.
    #[inline]
    pub fn is_staged_live(&self, index: usize) -> bool {
        match &self.epoch {
            None => true,
            Some(epoch) => !epoch.is_staged_dead(index),
        }
    }

    /// Removes one live `(key, rect)` entry through the delta layer:
    /// staged entries are swap-removed (or, for the index-stable
    /// frozen prefix of an outstanding compaction snapshot, retired in
    /// place), packed entries are tombstoned in place (located by a
    /// pruned traversal on the exact rectangle, not a linear scan).
    /// Returns what happened so callers maintaining stage- or
    /// slot-indexed side structures can patch themselves, or `None`
    /// when no live entry matches.
    pub fn remove_entry(&mut self, key: &K, rect: &Rect<D>) -> Option<DeltaRemoval<D>>
    where
        K: PartialEq,
    {
        // Packed tier first: the pruned traversal is `O(log N)`
        // whatever the delta's depth, while the staging scan is linear
        // in it — and under steady churn most removals target
        // long-lived (packed) entries, so paying the full staged scan
        // before even looking at the packed tier dominated removal
        // cost exactly when the delta was deep (mid-compaction).
        if let Some(slot) = self.find_packed_slot(key, rect) {
            self.tombstone(slot);
            return Some(DeltaRemoval::Tombstoned { slot });
        }
        if let Some(index) = self
            .staged_keys
            .iter()
            .zip(&self.staged_rects)
            .enumerate()
            .position(|(i, (k, r))| k == key && r == rect && self.is_staged_live(i))
        {
            if let Some(epoch) = &mut self.epoch {
                if index < epoch.frozen_staged_len {
                    // The frozen prefix is index-stable while the
                    // snapshot is outstanding: retire in place and let
                    // the install re-remove it from the merged core.
                    epoch.staged_dead[index >> 6] |= 1u64 << (index & 63);
                    epoch.staged_dead_count += 1;
                    return Some(DeltaRemoval::Retired { index });
                }
            }
            self.staged_keys.swap_remove(index);
            self.staged_rects.swap_remove(index);
            let moved = (index < self.staged_rects.len()).then(|| self.staged_rects[index]);
            if self.staged_keys.is_empty() {
                self.staged_mbr = None;
            }
            return Some(DeltaRemoval::Unstaged { index, moved });
        }
        None
    }

    /// The first live packed slot holding exactly `(key, rect)`, found
    /// by descending only nodes whose MBR intersects `rect`.
    fn find_packed_slot(&self, key: &K, rect: &Rect<D>) -> Option<usize>
    where
        K: PartialEq,
    {
        let mut found = None;
        self.traverse_packed_while(&|rects| mask_intersecting(rects, rect), &mut |slot| {
            if self.core.rects[slot] == *rect && self.core.keys[slot] == *key {
                found = Some(slot);
                false
            } else {
                true
            }
        });
        found
    }

    /// Sets the compaction trigger: the delta layer is considered
    /// oversized once it exceeds `fraction × packed_len()` entries.
    /// `0.0` compacts on any delta (rebuild-per-flush, the pre-delta
    /// behavior); large values defer compaction indefinitely. Defaults
    /// to [`DEFAULT_DELTA_FRACTION`].
    pub fn set_delta_fraction(&mut self, fraction: f64) {
        self.delta_fraction = fraction.max(0.0);
    }

    /// The configured compaction trigger fraction.
    pub fn delta_fraction(&self) -> f64 {
        self.delta_fraction
    }

    /// `true` once the delta layer exceeds the configured fraction of
    /// the packed slots — the cue to [`PackedRTree::compact`].
    pub fn needs_compaction(&self) -> bool {
        let delta = self.delta_len();
        delta > 0 && delta as f64 > self.delta_fraction * self.core.keys.len() as f64
    }

    /// Merges the staging buffer and reclaims tombstoned slots with one
    /// fresh Hilbert bulk-load of the live entries, **inline** — the
    /// synchronous path (the [`PackedRTree::freeze`] /
    /// [`PackedRTree::install`] pair is the pause-free one). A no-op
    /// (reported as such) when the delta layer is empty.
    ///
    /// # Panics
    ///
    /// Panics while a freeze snapshot is outstanding.
    pub fn compact(&mut self) -> DeltaCompaction
    where
        K: Clone,
    {
        assert!(
            self.epoch.is_none(),
            "synchronous compact during an outstanding compaction snapshot"
        );
        let stats = DeltaCompaction {
            staged_absorbed: self.staged_keys.len(),
            tombstones_reclaimed: self.tombstone_count,
        };
        if stats.is_noop() {
            return stats;
        }
        let node_size = self.core.node_size;
        let fraction = self.delta_fraction;
        let entries = self.drain_live();
        *self = Self::bulk_load_with_node_size(node_size, entries);
        self.delta_fraction = fraction;
        stats
    }

    /// [`PackedRTree::compact`] gated by
    /// [`PackedRTree::needs_compaction`]; returns `None` when the
    /// delta was within budget — or when a freeze snapshot is
    /// outstanding (the compaction is already underway; installing it
    /// is the snapshot holder's job).
    pub fn maybe_compact(&mut self) -> Option<DeltaCompaction>
    where
        K: Clone,
    {
        (!self.is_compacting() && self.needs_compaction()).then(|| self.compact())
    }

    // ---- concurrent compaction: freeze / install ---------------------

    /// `true` while a [`PackedRTree::freeze`] snapshot is outstanding.
    pub fn is_compacting(&self) -> bool {
        self.epoch.is_some()
    }

    /// Freezes the current state into a [`FrozenShard`] compaction
    /// snapshot: the `Arc`-shared packed core (a reference-count bump)
    /// plus a copy of the delta layer (bounded by the compaction
    /// fraction), in `O(delta)` time — the pause-free begin of a
    /// two-phase compaction.
    ///
    /// Until [`PackedRTree::install`] (or
    /// [`PackedRTree::abort_compaction`]), the tree keeps serving
    /// exact reads and absorbing mutations: new entries stage past the
    /// frozen prefix, packed removals tombstone as usual, and removals
    /// of frozen staged entries retire them in place
    /// ([`DeltaRemoval::Retired`]) — every post-freeze removal is
    /// re-applied to the merged core at install.
    ///
    /// # Panics
    ///
    /// Panics if a snapshot is already outstanding.
    pub fn freeze(&mut self) -> FrozenShard<K, D>
    where
        K: Clone,
    {
        assert!(
            self.epoch.is_none(),
            "freeze while a compaction snapshot is already outstanding"
        );
        self.epoch = Some(CompactionEpoch {
            frozen_staged_len: self.staged_keys.len(),
            frozen_tombstones: self.tombstones.clone(),
            frozen_tombstone_count: self.tombstone_count,
            staged_dead: vec![0u64; self.staged_keys.len().div_ceil(64)],
            staged_dead_count: 0,
        });
        FrozenShard {
            core: Arc::clone(&self.core),
            staged_keys: self.staged_keys.clone(),
            staged_rects: self.staged_rects.clone(),
            tombstones: self.tombstones.clone(),
            tombstone_count: self.tombstone_count,
            delta_fraction: self.delta_fraction,
        }
    }

    /// A point-in-time read snapshot as a [`FrozenShard`], **without**
    /// starting a compaction epoch: `&self`, no outstanding-freeze
    /// assertion, composable with an in-flight [`PackedRTree::freeze`]
    /// (retired staged entries are filtered out so the snapshot holds
    /// exactly the live entry set). Cost is an `Arc` bump on the packed
    /// core plus a copy of the delta layer — `O(delta)`, like `freeze`.
    ///
    /// This is the publication primitive for lock-free readers: an
    /// owner produces a snapshot after each batch of mutations, shares
    /// it behind an `Arc`, and readers query it with
    /// [`FrozenShard::for_each_containing`] while the owner keeps
    /// writing. The snapshot is also valid [`FrozenShard::merge`]
    /// input, but unlike `freeze` it leaves no epoch behind, so it must
    /// not be fed to [`PackedRTree::install`].
    pub fn snapshot(&self) -> FrozenShard<K, D>
    where
        K: Clone,
    {
        let (staged_keys, staged_rects) = match &self.epoch {
            Some(epoch) if epoch.staged_dead_count > 0 => {
                let mut keys = Vec::with_capacity(self.staged_keys.len());
                let mut rects = Vec::with_capacity(self.staged_rects.len());
                for (i, (k, r)) in self.staged_keys.iter().zip(&self.staged_rects).enumerate() {
                    if !epoch.is_staged_dead(i) {
                        keys.push(k.clone());
                        rects.push(*r);
                    }
                }
                (keys, rects)
            }
            _ => (self.staged_keys.clone(), self.staged_rects.clone()),
        };
        FrozenShard {
            core: Arc::clone(&self.core),
            staged_keys,
            staged_rects,
            tombstones: self.tombstones.clone(),
            tombstone_count: self.tombstone_count,
            delta_fraction: self.delta_fraction,
        }
    }

    /// Completes a two-phase compaction: swaps in `merged` (the
    /// [`FrozenShard::merge`] result of this tree's own freeze),
    /// re-applies every removal that landed mid-compaction to the
    /// merged core, and carries the second-generation staged entries
    /// forward as the new delta layer. The on-path cost is
    /// `O(mutations since the freeze)`, not `O(N)`.
    ///
    /// Reports what the *merge* absorbed (the frozen delta), mirroring
    /// [`PackedRTree::compact`].
    ///
    /// # Panics
    ///
    /// Panics if no freeze snapshot is outstanding. Installing a tree
    /// that is not the merge of this tree's own latest freeze loses
    /// entries silently — don't.
    pub fn install(&mut self, merged: PackedRTree<K, D>) -> DeltaCompaction
    where
        K: Clone + PartialEq,
    {
        let epoch = self
            .epoch
            .take()
            .expect("install without an outstanding freeze");
        let stats = DeltaCompaction {
            staged_absorbed: epoch.frozen_staged_len,
            tombstones_reclaimed: epoch.frozen_tombstone_count,
        };
        // Collect the removals the merge never saw, from the old tiers
        // *before* swapping them out: packed slots tombstoned since
        // the freeze, and frozen staged entries retired since.
        let mut fixups: Vec<(K, Rect<D>)> = Vec::with_capacity(
            self.tombstone_count - epoch.frozen_tombstone_count + epoch.staged_dead_count,
        );
        for (w, &word) in self.tombstones.iter().enumerate() {
            let frozen = epoch.frozen_tombstones.get(w).copied().unwrap_or(0);
            let mut fresh = word & !frozen;
            while fresh != 0 {
                let slot = w * 64 + fresh.trailing_zeros() as usize;
                fixups.push((self.core.keys[slot].clone(), self.core.rects[slot]));
                fresh &= fresh - 1;
            }
        }
        for (w, &word) in epoch.staged_dead.iter().enumerate() {
            let mut dead = word;
            while dead != 0 {
                let i = w * 64 + dead.trailing_zeros() as usize;
                fixups.push((self.staged_keys[i].clone(), self.staged_rects[i]));
                dead &= dead - 1;
            }
        }
        // The second-generation delta survives the swap (re-indexed
        // from zero; stage-index-tracking callers re-stage from here).
        let gen2_keys = self.staged_keys.split_off(epoch.frozen_staged_len);
        let gen2_rects = self.staged_rects.split_off(epoch.frozen_staged_len);
        let fraction = self.delta_fraction;
        *self = merged;
        self.delta_fraction = fraction;
        self.staged_mbr = Rect::union_all(gen2_rects.iter());
        self.staged_keys = gen2_keys;
        self.staged_rects = gen2_rects;
        for (key, rect) in &fixups {
            // Straight to the packed tier: every fix-up is a
            // frozen-region entry, and the merge folded each of those
            // into the new core exactly once.
            match self.find_packed_slot(key, rect) {
                Some(slot) => {
                    self.tombstone(slot);
                }
                None => debug_assert!(false, "mid-compaction removal lost by the merge"),
            }
        }
        stats
    }

    /// Abandons an outstanding freeze: the merge result (if any) is
    /// simply never installed, and the live tree — which remained
    /// complete throughout — drops the epoch bookkeeping. Frozen
    /// staged entries retired mid-compaction are physically removed
    /// here, which **renumbers staging indexes**; callers tracking
    /// them must rebuild their side structures (the sharded oracle
    /// only aborts right before a full redistribute).
    pub fn abort_compaction(&mut self) {
        let Some(epoch) = self.epoch.take() else {
            return;
        };
        if epoch.staged_dead_count == 0 {
            return;
        }
        let mut write = 0usize;
        for read in 0..self.staged_keys.len() {
            if !epoch.is_staged_dead(read) {
                self.staged_keys.swap(read, write);
                self.staged_rects.swap(read, write);
                write += 1;
            }
        }
        self.staged_keys.truncate(write);
        self.staged_rects.truncate(write);
        self.staged_mbr = Rect::union_all(self.staged_rects.iter());
    }

    /// Moves every live entry (packed minus tombstones, plus live
    /// staged) out of the tree, leaving it empty. An outstanding
    /// freeze snapshot is aborted first (the snapshot itself, owning
    /// the shared core, stays readable by its holder). This is the
    /// redistribution primitive of sharded consumers (rebalance =
    /// drain every shard, re-split, bulk-load). `Clone` is only
    /// exercised when a snapshot still shares the core; the common
    /// unique-`Arc` case moves keys.
    pub fn drain_live(&mut self) -> Vec<(K, Rect<D>)>
    where
        K: Clone,
    {
        self.abort_compaction();
        let core = Arc::make_mut(&mut self.core);
        let keys = std::mem::take(&mut core.keys);
        let rects = std::mem::take(&mut core.rects);
        let staged_keys = std::mem::take(&mut self.staged_keys);
        let staged_rects = std::mem::take(&mut self.staged_rects);
        let tombstones = std::mem::take(&mut self.tombstones);
        core.levels.clear();
        core.curve_keys.clear();
        core.world = None;
        self.tombstone_count = 0;
        self.staged_mbr = None;
        let mut out: Vec<(K, Rect<D>)> = Vec::with_capacity(keys.len() + staged_keys.len());
        for (slot, (k, r)) in keys.into_iter().zip(rects).enumerate() {
            if !bit_set(&tombstones, slot) {
                out.push((k, r));
            }
        }
        out.extend(staged_keys.into_iter().zip(staged_rects));
        out
    }

    /// Visits every entry whose rectangle contains `point` — the hot
    /// path of every matching oracle. Iterative (explicit fixed-size
    /// stack, zero heap allocation) with branchless bitmask scans over
    /// the contiguous MBR arrays.
    pub fn for_each_containing<'a, F>(&'a self, point: &Point<D>, visit: F)
    where
        F: FnMut(&'a K, &'a Rect<D>),
    {
        self.traverse(|rects| mask_containing(rects, point), visit);
    }

    /// Visits every entry whose rectangle intersects `window`; same
    /// allocation-free traversal as
    /// [`PackedRTree::for_each_containing`].
    pub fn for_each_intersecting<'a, F>(&'a self, window: &Rect<D>, visit: F)
    where
        F: FnMut(&'a K, &'a Rect<D>),
    {
        self.traverse(|rects| mask_intersecting(rects, window), visit);
    }

    /// Like [`PackedRTree::for_each_intersecting`], but the visitor
    /// returns `false` to abort the traversal early. This is the
    /// primitive for budgeted collection — "gather up to `N` entries
    /// in this window, stop if there are more" — where the plain
    /// visitor would pay for the full result set just to discard it.
    pub fn for_each_intersecting_while<'a, F>(&'a self, window: &Rect<D>, visit: F)
    where
        F: FnMut(&'a K, &'a Rect<D>) -> bool,
    {
        self.traverse_while(|rects| mask_intersecting(rects, window), visit);
    }

    /// Iterative pruned traversal over **both tiers**. `mask_of` maps a
    /// slice of ≤ 32 rectangles to a hit bitmask; nodes with set bits
    /// are descended, live entries with set bits are emitted, and the
    /// staging buffer is then scanned with the same bitmask chunks.
    fn traverse<'a>(
        &'a self,
        mask_of: impl Fn(&[Rect<D>]) -> u32,
        mut emit: impl FnMut(&'a K, &'a Rect<D>),
    ) {
        self.traverse_while(mask_of, |k, r| {
            emit(k, r);
            true
        });
    }

    /// [`PackedRTree::traverse`] with an abortable visitor: emitting
    /// `false` unwinds the whole traversal immediately (the staging
    /// scan included).
    fn traverse_while<'a>(
        &'a self,
        mask_of: impl Fn(&[Rect<D>]) -> u32,
        mut emit: impl FnMut(&'a K, &'a Rect<D>) -> bool,
    ) {
        if self.traverse_packed_while(&mask_of, &mut |slot| {
            emit(&self.core.keys[slot], &self.core.rects[slot])
        }) {
            self.scan_staged_while(&mask_of, &mut emit);
        }
    }

    /// The packed tier of [`PackedRTree::traverse_while`], emitting
    /// live slot indexes. Shared with the frozen-snapshot read path via
    /// [`traverse_core_while`]. Returns `false` when the visitor
    /// aborted.
    fn traverse_packed_while(
        &self,
        mask_of: &impl Fn(&[Rect<D>]) -> u32,
        emit: &mut impl FnMut(usize) -> bool,
    ) -> bool {
        traverse_core_while(&self.core, &self.tombstones, mask_of, emit)
    }

    /// The delta tier of [`PackedRTree::traverse_while`]: the staging
    /// buffer scanned in ≤ 32-wide chunks with the same branchless
    /// bitmask the leaf level uses (retired frozen entries filtered at
    /// emission, like tombstones on the packed tier). Returns `false`
    /// when the visitor aborted.
    fn scan_staged_while<'a>(
        &'a self,
        mask_of: &impl Fn(&[Rect<D>]) -> u32,
        emit: &mut impl FnMut(&'a K, &'a Rect<D>) -> bool,
    ) -> bool {
        for (chunk_idx, chunk) in self.staged_rects.chunks(MAX_NODE_SIZE).enumerate() {
            let mut mask = mask_of(chunk);
            while mask != 0 {
                let i = chunk_idx * MAX_NODE_SIZE + mask.trailing_zeros() as usize;
                if self.is_staged_live(i) && !emit(&self.staged_keys[i], &self.staged_rects[i]) {
                    return false;
                }
                mask &= mask - 1;
            }
        }
        true
    }

    /// Visits, for every probe in `points`, each entry whose rectangle
    /// contains it — in **one joint descent** of the tree instead of
    /// `points.len()` independent root-to-leaf walks.
    ///
    /// The traversal is node-major: each node MBR is loaded once and
    /// streamed against the batch's surviving probe subset (branchless
    /// filtering into reused index buffers), instead of every probe
    /// re-reading the level arrays on its own. The comparison count is
    /// identical to per-probe descents; the win is pure memory
    /// behavior, and it grows with batch size and probe locality
    /// (sorting probes along a space-filling curve first makes the
    /// surviving subsets coherent).
    ///
    /// Hits are delivered as `(probe_index, key, rect)`; probe order
    /// within a node follows the batch, but no global emission order is
    /// guaranteed. Probes are independent — duplicates are fine.
    ///
    /// # Panics
    ///
    /// Panics if `points.len() > u32::MAX` (probe indexes are `u32`,
    /// matching the tree's own 2^32-entry limit).
    pub fn for_each_containing_batch<'a, F>(&'a self, points: &[Point<D>], mut emit: F)
    where
        F: FnMut(u32, &'a K, &'a Rect<D>),
    {
        assert!(
            points.len() <= u32::MAX as usize,
            "batch is limited to 2^32 probes"
        );
        if let Some(root) = self.core.levels.last() {
            let active: Vec<u32> = (0..points.len() as u32)
                .filter(|&pi| root[0].contains_point_branchless(&points[pi as usize]))
                .collect();
            if !active.is_empty() {
                let mut pool: Vec<Vec<u32>> = Vec::new();
                self.walk_batch(
                    self.core.levels.len() - 1,
                    0,
                    &active,
                    points,
                    &mut pool,
                    &mut emit,
                );
            }
        }
        // Delta tier: every probe against the staging buffer (the root
        // MBR filter above does not apply — staged entries may lie
        // outside it).
        if self.staged_rects.is_empty() {
            return;
        }
        for (pi, point) in points.iter().enumerate() {
            for (chunk_idx, chunk) in self.staged_rects.chunks(MAX_NODE_SIZE).enumerate() {
                let mut mask = mask_containing(chunk, point);
                while mask != 0 {
                    let i = chunk_idx * MAX_NODE_SIZE + mask.trailing_zeros() as usize;
                    if self.is_staged_live(i) {
                        emit(pi as u32, &self.staged_keys[i], &self.staged_rects[i]);
                    }
                    mask &= mask - 1;
                }
            }
        }
    }

    /// One frame of the joint batch descent: `active` holds the probe
    /// indexes already known to lie inside node `(level, node)`'s MBR.
    fn walk_batch<'a, F>(
        &'a self,
        level: usize,
        node: usize,
        active: &[u32],
        points: &[Point<D>],
        pool: &mut Vec<Vec<u32>>,
        emit: &mut F,
    ) where
        F: FnMut(u32, &'a K, &'a Rect<D>),
    {
        let core = &*self.core;
        let lo = node * core.node_size;
        if level == 0 {
            let hi = (lo + core.node_size).min(core.rects.len());
            let rects = &core.rects[lo..hi];
            for &pi in active {
                let mut mask = mask_containing(rects, &points[pi as usize]);
                while mask != 0 {
                    let slot = lo + mask.trailing_zeros() as usize;
                    if self.is_live(slot) {
                        emit(pi, &core.keys[slot], &core.rects[slot]);
                    }
                    mask &= mask - 1;
                }
            }
        } else {
            let below = &core.levels[level - 1];
            let hi = (lo + core.node_size).min(below.len());
            let mut subset = pool.pop().unwrap_or_default();
            for (child, mbr) in below.iter().enumerate().take(hi).skip(lo) {
                subset.clear();
                for &pi in active {
                    if mbr.contains_point_branchless(&points[pi as usize]) {
                        subset.push(pi);
                    }
                }
                if !subset.is_empty() {
                    self.walk_batch(level - 1, child, &subset, points, pool, emit);
                }
            }
            subset.clear();
            pool.push(subset);
        }
    }

    /// Keys whose rectangle contains `point`. Prefer
    /// [`PackedRTree::for_each_containing`] on hot paths; this
    /// convenience form allocates the result vector.
    pub fn search_point(&self, point: &Point<D>) -> Vec<&K> {
        let mut out = Vec::new();
        self.for_each_containing(point, |k, _| out.push(k));
        out
    }

    /// Keys whose rectangle intersects `window`.
    pub fn search_intersecting(&self, window: &Rect<D>) -> Vec<&K> {
        let mut out = Vec::new();
        self.for_each_intersecting(window, |k, _| out.push(k));
        out
    }

    /// Checks the packed-level invariants — implicit-topology level
    /// lengths, exact node MBRs at every level, array consistency —
    /// plus the delta layer's: staged arrays in step, tombstone count
    /// matching the bitmap, staged MBR covering every staged entry.
    ///
    /// # Errors
    ///
    /// Returns the first [`PackedValidationError`] found.
    pub fn validate(&self) -> Result<(), PackedValidationError> {
        let core = &*self.core;
        if core.keys.len() != core.rects.len() {
            return Err(PackedValidationError::Inconsistent);
        }
        if !core.curve_keys.is_empty() && core.curve_keys.len() != core.keys.len() {
            return Err(PackedValidationError::Inconsistent);
        }
        if self.staged_keys.len() != self.staged_rects.len() {
            return Err(PackedValidationError::DeltaInconsistent);
        }
        let popcount: usize = self
            .tombstones
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum();
        if popcount != self.tombstone_count {
            return Err(PackedValidationError::DeltaInconsistent);
        }
        if !self.tombstones.is_empty() && self.tombstones.len() != core.keys.len().div_ceil(64) {
            return Err(PackedValidationError::DeltaInconsistent);
        }
        match &self.staged_mbr {
            None if !self.staged_rects.is_empty() => {
                return Err(PackedValidationError::DeltaInconsistent);
            }
            Some(mbr) if !self.staged_rects.iter().all(|r| mbr.contains_rect(r)) => {
                return Err(PackedValidationError::DeltaInconsistent);
            }
            _ => {}
        }
        if let Some(epoch) = &self.epoch {
            // Mid-compaction bookkeeping: the frozen prefix exists, the
            // dead bitmap covers exactly it, its count matches, and
            // every tombstone frozen at the freeze is still set (bits
            // are never cleared mid-epoch).
            let dead_pop: usize = epoch
                .staged_dead
                .iter()
                .map(|w| w.count_ones() as usize)
                .sum();
            if epoch.frozen_staged_len > self.staged_keys.len()
                || epoch.staged_dead.len() != epoch.frozen_staged_len.div_ceil(64)
                || dead_pop != epoch.staged_dead_count
                || epoch.staged_dead_count > epoch.frozen_staged_len
            {
                return Err(PackedValidationError::DeltaInconsistent);
            }
            if (0..self.staged_keys.len())
                .any(|i| i >= epoch.frozen_staged_len && epoch.is_staged_dead(i))
            {
                return Err(PackedValidationError::DeltaInconsistent);
            }
            let frozen_ok = epoch
                .frozen_tombstones
                .iter()
                .enumerate()
                .all(|(w, &bits)| bits & !self.tombstones.get(w).copied().unwrap_or(0) == 0);
            if !frozen_ok || epoch.frozen_tombstone_count > self.tombstone_count {
                return Err(PackedValidationError::DeltaInconsistent);
            }
        }
        if core.keys.is_empty() {
            return if core.levels.is_empty() {
                Ok(())
            } else {
                Err(PackedValidationError::Inconsistent)
            };
        }
        if core.levels.is_empty() || core.levels.last().map(Vec::len) != Some(1) {
            return Err(PackedValidationError::Inconsistent);
        }
        let mut below_len = core.rects.len();
        for (level, nodes) in core.levels.iter().enumerate() {
            let expected = below_len.div_ceil(core.node_size);
            if nodes.len() != expected {
                return Err(PackedValidationError::WrongLevelLength {
                    level,
                    found: nodes.len(),
                    expected,
                });
            }
            for (node, mbr) in nodes.iter().enumerate() {
                if core.covered_union(level, node).as_ref() != Some(mbr) {
                    return Err(PackedValidationError::WrongMbr { level, node });
                }
            }
            below_len = nodes.len();
        }
        Ok(())
    }
}

impl<K, const D: usize> SpatialIndex<K, D> for PackedRTree<K, D> {
    fn len(&self) -> usize {
        PackedRTree::len(self)
    }

    fn for_each_containing<'a, F>(&'a self, point: &Point<D>, visit: F)
    where
        F: FnMut(&'a K, &'a Rect<D>),
        K: 'a,
    {
        PackedRTree::for_each_containing(self, point, visit);
    }

    fn for_each_intersecting<'a, F>(&'a self, window: &Rect<D>, visit: F)
    where
        F: FnMut(&'a K, &'a Rect<D>),
        K: 'a,
    {
        PackedRTree::for_each_intersecting(self, window, visit);
    }

    fn for_each_containing_batch<'a, F>(&'a self, points: &[Point<D>], visit: F)
    where
        F: FnMut(u32, &'a K, &'a Rect<D>),
        K: 'a,
    {
        PackedRTree::for_each_containing_batch(self, points, visit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize) -> Vec<(usize, Rect<2>)> {
        (0..n)
            .map(|i| {
                let x = (i % 32) as f64 * 3.0;
                let y = (i / 32) as f64 * 3.0;
                (i, Rect::new([x, y], [x + 2.0, y + 2.0]))
            })
            .collect()
    }

    #[test]
    fn empty_tree() {
        let tree: PackedRTree<u32, 2> = PackedRTree::bulk_load(Vec::new());
        assert!(tree.is_empty());
        assert_eq!(tree.height(), 1);
        assert_eq!(tree.mbr(), None);
        assert!(tree.search_point(&Point::new([0.0, 0.0])).is_empty());
        tree.validate().unwrap();
    }

    #[test]
    fn build_sizes_and_completeness() {
        for n in [1usize, 2, 15, 16, 17, 256, 257, 1000] {
            let tree = PackedRTree::bulk_load(grid(n));
            assert_eq!(tree.len(), n);
            tree.validate().unwrap_or_else(|e| panic!("n={n}: {e}"));
            for (k, r) in grid(n) {
                let hits = tree.search_point(&r.center());
                assert!(hits.contains(&&k), "n={n}: entry {k} lost");
            }
        }
    }

    #[test]
    fn matches_linear_scan_on_windows() {
        let entries = grid(500);
        let tree = PackedRTree::bulk_load_with_node_size(8, entries.clone());
        for window in [
            Rect::new([0.0, 0.0], [10.0, 10.0]),
            Rect::new([40.0, 10.0], [70.0, 30.0]),
            Rect::new([500.0, 500.0], [600.0, 600.0]),
        ] {
            let mut got: Vec<usize> = tree
                .search_intersecting(&window)
                .into_iter()
                .copied()
                .collect();
            got.sort_unstable();
            let mut want: Vec<usize> = entries
                .iter()
                .filter(|(_, r)| r.intersects(&window))
                .map(|(k, _)| *k)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn update_refits_ancestors() {
        let mut tree = PackedRTree::bulk_load_with_node_size(4, grid(200));
        let slot = tree.slot_of(&77).expect("entry 77 exists");
        let moved = Rect::new([900.0, 900.0], [901.0, 901.0]);
        tree.update(slot, moved);
        tree.validate().unwrap();
        let hits = tree.search_point(&Point::new([900.5, 900.5]));
        assert_eq!(hits, vec![&77]);
        // The old location no longer reports the moved entry.
        let (_, old) = grid(200)[77];
        assert!(!tree.search_point(&old.center()).contains(&&77));
        // Shrinking also refits exactly.
        tree.update(slot, Rect::new([900.2, 900.2], [900.4, 900.4]));
        tree.validate().unwrap();
    }

    #[test]
    fn unbounded_entries_are_searchable() {
        let mut entries = grid(50);
        entries.push((999, Rect::everything()));
        entries.push((998, Rect::new([0.0, 10.0], [f64::INFINITY, 12.0])));
        let tree = PackedRTree::bulk_load(entries);
        tree.validate().unwrap();
        let hits = tree.search_point(&Point::new([1_000_000.0, 11.0]));
        let mut keys: Vec<usize> = hits.into_iter().copied().collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![998, 999]);
    }

    #[test]
    fn high_dimensional_trees_work() {
        // 9 × HILBERT_ORDER exceeds 128 bits; the curve coarsens
        // instead of panicking, and searches stay exact.
        let entries: Vec<(usize, Rect<9>)> = (0..100)
            .map(|i| {
                let o = i as f64;
                (i, Rect::new([o; 9], [o + 0.5; 9]))
            })
            .collect();
        let tree = PackedRTree::bulk_load(entries);
        tree.validate().unwrap();
        let hits = tree.search_point(&Point::new([42.25; 9]));
        assert_eq!(hits, vec![&42]);
    }

    #[test]
    fn duplicate_rects_supported() {
        let r = Rect::new([0.0, 0.0], [1.0, 1.0]);
        let tree = PackedRTree::bulk_load((0..40usize).map(|i| (i, r)).collect());
        assert_eq!(tree.search_point(&Point::new([0.5, 0.5])).len(), 40);
        tree.validate().unwrap();
    }

    #[test]
    fn validate_catches_stale_mbr() {
        let mut tree = PackedRTree::bulk_load_with_node_size(4, grid(100));
        // Corrupt a leaf-node MBR behind validate's back.
        Arc::make_mut(&mut tree.core).levels[0][0] = Rect::new([0.0, 0.0], [0.1, 0.1]);
        assert!(matches!(
            tree.validate(),
            Err(PackedValidationError::WrongMbr { level: 0, node: 0 })
        ));
    }

    #[test]
    fn batch_visit_equals_per_point_visits() {
        let tree = PackedRTree::bulk_load_with_node_size(8, grid(400));
        let probes: Vec<Point<2>> = (0..250)
            .map(|i| Point::new([(i % 40) as f64 * 2.3, (i / 40) as f64 * 5.1]))
            .collect();
        let mut batched: Vec<Vec<usize>> = vec![Vec::new(); probes.len()];
        tree.for_each_containing_batch(&probes, |pi, &k, _| batched[pi as usize].push(k));
        for (p, got) in probes.iter().zip(batched.iter_mut()) {
            got.sort_unstable();
            let mut want: Vec<usize> = tree.search_point(p).into_iter().copied().collect();
            want.sort_unstable();
            assert_eq!(got, &want, "probe {p:?}");
        }
        // Empty batch and empty tree are both no-ops.
        tree.for_each_containing_batch(&[], |_, _, _| unreachable!());
        let empty: PackedRTree<usize, 2> = PackedRTree::bulk_load(Vec::new());
        empty.for_each_containing_batch(&probes, |_, _, _| unreachable!());
    }

    #[test]
    fn intersecting_while_aborts_early() {
        let tree = PackedRTree::bulk_load_with_node_size(4, grid(300));
        let window = Rect::new([0.0, 0.0], [100.0, 100.0]);
        let full = tree.search_intersecting(&window).len();
        assert!(full > 10);
        let mut seen = 0usize;
        tree.for_each_intersecting_while(&window, |_, _| {
            seen += 1;
            seen < 10
        });
        assert_eq!(seen, 10, "visitor stops the traversal at the 10th hit");
        // A never-aborting while-visitor sees everything.
        let mut all = 0usize;
        tree.for_each_intersecting_while(&window, |_, _| {
            all += 1;
            true
        });
        assert_eq!(all, full);
    }

    /// Live entries of a delta-bearing tree, straight from the model's
    /// definition.
    fn live_model(tree: &PackedRTree<usize, 2>) -> Vec<(usize, Rect<2>)> {
        let mut out: Vec<(usize, Rect<2>)> = tree.entries().map(|(_, &k, &r)| (k, r)).collect();
        out.extend(
            tree.staged_keys()
                .iter()
                .zip(tree.staged_rects())
                .map(|(&k, &r)| (k, r)),
        );
        out
    }

    #[test]
    fn staged_inserts_are_searchable_before_compaction() {
        let mut tree = PackedRTree::bulk_load_with_node_size(4, grid(100));
        // Stage entries both inside and far outside the packed world.
        tree.stage_insert(500, Rect::new([10.0, 10.0], [11.0, 11.0]));
        tree.stage_insert(501, Rect::new([5000.0, 5000.0], [5001.0, 5001.0]));
        tree.validate().unwrap();
        assert_eq!(tree.len(), 102);
        assert_eq!(tree.staged_len(), 2);
        assert!(tree.search_point(&Point::new([10.5, 10.5])).contains(&&500));
        // The out-of-world staged entry is visible to every visitor.
        assert_eq!(tree.search_point(&Point::new([5000.5, 5000.5])), vec![&501]);
        assert_eq!(
            tree.search_intersecting(&Rect::new([4999.0, 4999.0], [5002.0, 5002.0])),
            vec![&501]
        );
        let probes = [Point::new([5000.5, 5000.5])];
        let mut hits = Vec::new();
        tree.for_each_containing_batch(&probes, |pi, &k, _| hits.push((pi, k)));
        assert_eq!(hits, vec![(0, 501)]);
        assert!(tree.mbr().expect("non-empty").contains_point(&probes[0]));
    }

    #[test]
    fn tombstones_hide_entries_from_every_visitor() {
        let mut tree = PackedRTree::bulk_load_with_node_size(4, grid(100));
        let slot = tree.slot_of(&42).expect("entry exists");
        let center = grid(100)[42].1.center();
        assert!(tree.tombstone(slot));
        assert!(!tree.tombstone(slot), "double tombstone reports false");
        assert!(!tree.is_live(slot));
        tree.validate().unwrap();
        assert_eq!(tree.len(), 99);
        assert!(!tree.search_point(&center).contains(&&42));
        let mut batch_hits = Vec::new();
        tree.for_each_containing_batch(&[center], |_, &k, _| batch_hits.push(k));
        assert!(!batch_hits.contains(&42));
        let window = grid(100)[42].1;
        assert!(!tree.search_intersecting(&window).contains(&&42));
        assert_eq!(tree.slot_of(&42), None, "tombstoned entries are not found");
    }

    #[test]
    fn remove_entry_unstages_and_tombstones() {
        let mut tree = PackedRTree::bulk_load_with_node_size(4, grid(50));
        let extra = Rect::new([200.0, 200.0], [201.0, 201.0]);
        tree.stage_insert(900, extra);
        tree.stage_insert(901, Rect::new([210.0, 210.0], [211.0, 211.0]));
        // Unstage: the first staged entry goes, the second moves into
        // its index.
        match tree.remove_entry(&900, &extra) {
            Some(DeltaRemoval::Unstaged { index: 0, moved }) => {
                assert_eq!(moved, Some(Rect::new([210.0, 210.0], [211.0, 211.0])));
            }
            other => panic!("unexpected removal outcome {other:?}"),
        }
        // Tombstone: a packed entry.
        let (key, rect) = grid(50)[7];
        match tree.remove_entry(&key, &rect) {
            Some(DeltaRemoval::Tombstoned { slot }) => assert!(!tree.is_live(slot)),
            other => panic!("unexpected removal outcome {other:?}"),
        }
        // Gone entries are not found again.
        assert_eq!(tree.remove_entry(&900, &extra), None);
        assert_eq!(tree.remove_entry(&key, &rect), None);
        tree.validate().unwrap();
        assert_eq!(tree.len(), 50);
    }

    #[test]
    fn compact_folds_the_delta_layer_in() {
        let mut tree = PackedRTree::bulk_load_with_node_size(4, grid(60));
        for i in 0..10usize {
            let o = 300.0 + i as f64 * 5.0;
            tree.stage_insert(700 + i, Rect::new([o, o], [o + 2.0, o + 2.0]));
        }
        for (key, rect) in grid(60).iter().take(5) {
            assert!(tree.remove_entry(key, rect).is_some());
        }
        let before = live_model(&tree);
        let stats = tree.compact();
        assert_eq!(stats.staged_absorbed, 10);
        assert_eq!(stats.tombstones_reclaimed, 5);
        assert_eq!(tree.delta_len(), 0);
        assert_eq!(tree.len(), 65);
        tree.validate().unwrap();
        // Identical result sets after the merge.
        let mut after = live_model(&tree);
        let mut want = before;
        after.sort_unstable_by_key(|&(k, _)| k);
        want.sort_unstable_by_key(|&(k, _)| k);
        assert_eq!(after, want);
        // Compacting a clean tree is a no-op.
        assert!(tree.compact().is_noop());
    }

    #[test]
    fn compaction_threshold_follows_the_fraction() {
        let mut tree = PackedRTree::bulk_load(grid(100));
        tree.set_delta_fraction(0.1);
        // 10 staged over 100 packed is exactly the fraction — not yet
        // over it.
        for i in 0..10usize {
            tree.stage_insert(800 + i, Rect::new([0.0, 0.0], [1.0, 1.0]));
        }
        assert!(!tree.needs_compaction());
        tree.stage_insert(899, Rect::new([0.0, 0.0], [1.0, 1.0]));
        assert!(tree.needs_compaction());
        assert!(tree.maybe_compact().is_some());
        assert!(tree.maybe_compact().is_none());
        // Fraction 0: any delta triggers (the rebuild-per-flush mode).
        tree.set_delta_fraction(0.0);
        assert!(tree.tombstone(0));
        assert!(tree.needs_compaction());
    }

    #[test]
    fn empty_packed_tier_with_staged_entries_works() {
        let mut tree: PackedRTree<usize, 2> = PackedRTree::bulk_load(Vec::new());
        tree.stage_insert(1, Rect::new([0.0, 0.0], [10.0, 10.0]));
        tree.validate().unwrap();
        assert_eq!(tree.len(), 1);
        assert!(!tree.is_empty());
        assert_eq!(tree.search_point(&Point::new([5.0, 5.0])), vec![&1]);
        let mut batch_hits = Vec::new();
        tree.for_each_containing_batch(&[Point::new([5.0, 5.0])], |pi, &k, _| {
            batch_hits.push((pi, k));
        });
        assert_eq!(batch_hits, vec![(0, 1)]);
        assert_eq!(tree.mbr(), Some(Rect::new([0.0, 0.0], [10.0, 10.0])));
        tree.compact();
        assert_eq!(tree.packed_len(), 1);
        tree.validate().unwrap();
    }

    #[test]
    fn drain_live_moves_everything_out() {
        let mut tree = PackedRTree::bulk_load(grid(30));
        tree.stage_insert(500, Rect::new([1.0, 1.0], [2.0, 2.0]));
        let (key, rect) = grid(30)[3];
        assert!(tree.remove_entry(&key, &rect).is_some());
        let drained = tree.drain_live();
        assert_eq!(drained.len(), 30);
        assert!(drained.iter().any(|&(k, _)| k == 500));
        assert!(!drained.iter().any(|&(k, _)| k == 3));
        assert!(tree.is_empty());
        assert_eq!(tree.delta_len(), 0);
        tree.validate().unwrap();
    }

    #[test]
    fn abortable_walk_covers_the_staged_tier() {
        let mut tree = PackedRTree::bulk_load_with_node_size(4, grid(40));
        tree.stage_insert(600, Rect::new([0.0, 0.0], [1.0, 1.0]));
        let window = Rect::new([0.0, 0.0], [200.0, 200.0]);
        let mut seen_staged = false;
        let mut count = 0usize;
        tree.for_each_intersecting_while(&window, |&k, _| {
            seen_staged |= k == 600;
            count += 1;
            true
        });
        assert!(seen_staged, "staged entry visited by the abortable walk");
        assert_eq!(count, 41);
        // Aborting inside the staged scan stops immediately.
        let mut after_staged = 0usize;
        tree.for_each_intersecting_while(&window, |&k, _| {
            if k == 600 {
                return false;
            }
            after_staged += 1;
            true
        });
        assert!(after_staged <= 40);
    }

    /// The model answer for a point probe over `(key, rect)` pairs.
    fn model_hits(model: &[(usize, Rect<2>)], p: &Point<2>) -> Vec<usize> {
        let mut hits: Vec<usize> = model
            .iter()
            .filter(|(_, r)| r.contains_point(p))
            .map(|(k, _)| *k)
            .collect();
        hits.sort_unstable();
        hits
    }

    fn sorted_hits(tree: &PackedRTree<usize, 2>, p: &Point<2>) -> Vec<usize> {
        let mut hits: Vec<usize> = tree.search_point(p).into_iter().copied().collect();
        hits.sort_unstable();
        hits
    }

    #[test]
    fn freeze_serves_exact_reads_while_merging() {
        let mut tree = PackedRTree::bulk_load_with_node_size(4, grid(80));
        let mut model = grid(80);
        // Pre-freeze delta: two staged entries, one tombstone.
        tree.stage_insert(500, Rect::new([7.0, 7.0], [8.0, 8.0]));
        tree.stage_insert(501, Rect::new([400.0, 400.0], [401.0, 401.0]));
        model.push((500, Rect::new([7.0, 7.0], [8.0, 8.0])));
        model.push((501, Rect::new([400.0, 400.0], [401.0, 401.0])));
        let (k, r) = grid(80)[11];
        assert!(tree.remove_entry(&k, &r).is_some());
        model.retain(|&(key, _)| key != 11);

        let frozen = tree.freeze();
        assert!(tree.is_compacting());
        assert_eq!(frozen.len(), model.len());

        // Mid-compaction mutations of every flavor.
        tree.stage_insert(600, Rect::new([1.0, 1.0], [2.0, 2.0])); // gen-2 insert
        model.push((600, Rect::new([1.0, 1.0], [2.0, 2.0])));
        let (k2, r2) = grid(80)[33]; // packed removal -> tombstone
        assert!(matches!(
            tree.remove_entry(&k2, &r2),
            Some(DeltaRemoval::Tombstoned { .. })
        ));
        model.retain(|&(key, _)| key != 33);
        // Frozen staged removal -> retired in place.
        assert!(matches!(
            tree.remove_entry(&500, &Rect::new([7.0, 7.0], [8.0, 8.0])),
            Some(DeltaRemoval::Retired { .. })
        ));
        model.retain(|&(key, _)| key != 500);
        // Gen-2 removal -> plain swap-remove.
        assert!(matches!(
            tree.remove_entry(&600, &Rect::new([1.0, 1.0], [2.0, 2.0])),
            Some(DeltaRemoval::Unstaged { .. })
        ));
        model.retain(|&(key, _)| key != 600);
        tree.stage_insert(601, Rect::new([2.5, 2.5], [3.5, 3.5]));
        model.push((601, Rect::new([2.5, 2.5], [3.5, 3.5])));

        tree.validate().unwrap();
        assert_eq!(tree.len(), model.len());
        // Exact reads mid-compaction, everywhere it matters.
        for p in [
            Point::new([7.5, 7.5]),
            Point::new([400.5, 400.5]),
            Point::new([1.5, 1.5]),
            Point::new([3.0, 3.0]),
            grid(80)[33].1.center(),
            grid(80)[12].1.center(),
        ] {
            assert_eq!(sorted_hits(&tree, &p), model_hits(&model, &p), "at {p:?}");
        }

        // The merge sees exactly the frozen state.
        let merged = frozen.merge();
        merged.validate().unwrap();
        assert_eq!(merged.len(), 81, "80 - 1 tombstone + 2 staged");
        assert_eq!(merged.delta_len(), 0);

        // Install: fix-ups re-apply the mid-compaction removals, the
        // gen-2 delta survives.
        let stats = tree.install(merged);
        assert!(!tree.is_compacting());
        assert_eq!(stats.staged_absorbed, 2);
        assert_eq!(stats.tombstones_reclaimed, 1);
        tree.validate().unwrap();
        assert_eq!(tree.len(), model.len());
        assert_eq!(tree.staged_len(), 1, "gen-2 entry 601 carried forward");
        assert_eq!(tree.tombstone_count(), 2, "fix-ups: keys 33 and 500");
        for p in [
            Point::new([7.5, 7.5]),
            Point::new([400.5, 400.5]),
            Point::new([3.0, 3.0]),
            grid(80)[33].1.center(),
            grid(80)[12].1.center(),
        ] {
            assert_eq!(sorted_hits(&tree, &p), model_hits(&model, &p), "at {p:?}");
        }
        // A follow-up synchronous compact folds the fix-ups away.
        tree.compact();
        tree.validate().unwrap();
        assert_eq!(tree.len(), model.len());
    }

    #[test]
    fn install_handles_duplicates_across_generations() {
        let r = Rect::new([5.0, 5.0], [6.0, 6.0]);
        let mut tree = PackedRTree::bulk_load_with_node_size(4, grid(40));
        tree.stage_insert(900, r); // frozen copy
        let _frozen = tree.freeze();
        tree.stage_insert(900, r); // gen-2 duplicate (same key and rect)
                                   // Remove one copy mid-compaction: the frozen one is found
                                   // first and retired.
        assert!(matches!(
            tree.remove_entry(&900, &r),
            Some(DeltaRemoval::Retired { .. })
        ));
        assert_eq!(tree.len(), 41);
        let merged = _frozen.merge();
        tree.install(merged);
        tree.validate().unwrap();
        // Exactly one copy of 900 must survive, whichever tier it
        // lives in (duplicates are indistinguishable).
        assert_eq!(tree.len(), 41);
        let hits: Vec<usize> = tree
            .search_point(&Point::new([5.5, 5.5]))
            .into_iter()
            .copied()
            .filter(|&k| k == 900)
            .collect();
        assert_eq!(hits, vec![900]);
    }

    #[test]
    fn freeze_snapshot_is_isolated_from_live_mutations() {
        let mut tree = PackedRTree::bulk_load_with_node_size(4, grid(50));
        let frozen = tree.freeze();
        // Heavy live mutation after the freeze.
        for (k, r) in grid(50).iter().take(20) {
            assert!(tree.remove_entry(k, r).is_some());
        }
        for i in 0..10usize {
            tree.stage_insert(700 + i, Rect::new([0.0, 0.0], [1.0, 1.0]));
        }
        // The snapshot still merges to exactly the frozen state.
        let merged = frozen.merge();
        assert_eq!(merged.len(), 50);
        merged.validate().unwrap();
        tree.install(merged);
        tree.validate().unwrap();
        assert_eq!(tree.len(), 40);
    }

    fn snapshot_hits(snap: &FrozenShard<usize, 2>, p: &Point<2>) -> Vec<usize> {
        let mut hits = Vec::new();
        snap.for_each_containing(p, |&k, _| hits.push(k));
        hits.sort_unstable();
        hits
    }

    #[test]
    fn snapshot_reads_match_the_tree_at_snapshot_time() {
        let mut tree = PackedRTree::bulk_load_with_node_size(4, grid(60));
        let mut model = grid(60);
        // Mixed delta state before the snapshot: stagings + removals.
        for i in 0..8usize {
            let r = Rect::new([1.0 + i as f64, 1.0], [1.5 + i as f64, 1.5]);
            tree.stage_insert(900 + i, r);
            model.push((900 + i, r));
        }
        for (k, r) in grid(60).iter().take(10) {
            assert!(tree.remove_entry(k, r).is_some());
        }
        model.retain(|&(k, _)| k >= 10);
        let snap = tree.snapshot();
        assert!(!tree.is_compacting(), "snapshot must not open an epoch");
        assert_eq!(snap.len(), model.len());

        // Mutate the live tree heavily; the snapshot must not move.
        for (k, r) in grid(60).iter().skip(10).take(20) {
            assert!(tree.remove_entry(k, r).is_some());
        }
        tree.stage_insert(999, Rect::new([0.0, 0.0], [100.0, 100.0]));
        for p in [
            Point::new([1.2, 1.2]),
            Point::new([5.0, 5.0]),
            Point::new([31.0, 4.0]),
            grid(60)[3].1.center(),
            grid(60)[45].1.center(),
            Point::new([-5.0, -5.0]),
        ] {
            assert_eq!(snapshot_hits(&snap, &p), model_hits(&model, &p), "at {p:?}");
        }
    }

    #[test]
    fn snapshot_composes_with_an_outstanding_freeze() {
        let mut tree = PackedRTree::bulk_load_with_node_size(4, grid(40));
        let r = Rect::new([5.0, 5.0], [6.0, 6.0]);
        tree.stage_insert(700, r);
        let frozen = tree.freeze();
        // Retire the frozen staged entry mid-compaction, tombstone a
        // packed one, stage a gen-2 entry.
        assert!(matches!(
            tree.remove_entry(&700, &r),
            Some(DeltaRemoval::Retired { .. })
        ));
        let (k1, r1) = grid(40)[7];
        assert!(tree.remove_entry(&k1, &r1).is_some());
        let r2 = Rect::new([50.0, 50.0], [51.0, 51.0]);
        tree.stage_insert(701, r2);

        // The read snapshot sees the *current* live set: no 700 (it
        // was retired, and must be filtered out, not emitted), no k1,
        // but 701.
        let snap = tree.snapshot();
        assert_eq!(snap.len(), tree.len());
        assert_eq!(snapshot_hits(&snap, &Point::new([5.5, 5.5])), vec![]);
        assert_eq!(snapshot_hits(&snap, &r1.center()), vec![]);
        assert_eq!(snapshot_hits(&snap, &Point::new([50.5, 50.5])), vec![701]);

        // And the compaction completes undisturbed.
        let merged = frozen.merge();
        tree.install(merged);
        tree.validate().unwrap();
    }

    #[test]
    fn snapshot_serves_concurrent_readers_while_owner_mutates() {
        let mut tree = PackedRTree::bulk_load_with_node_size(4, grid(80));
        let snap = std::sync::Arc::new(tree.snapshot());
        let expected: Vec<Vec<usize>> = (0..80)
            .map(|i| model_hits(&grid(80), &grid(80)[i].1.center()))
            .collect();
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let snap = std::sync::Arc::clone(&snap);
                let expected = &expected;
                scope.spawn(move || {
                    for (i, want) in expected.iter().enumerate() {
                        let got = snapshot_hits(&snap, &grid(80)[i].1.center());
                        assert_eq!(&got, want);
                    }
                });
            }
            // The owner mutates concurrently — readers never block on
            // it and never see the mutations.
            for (k, r) in grid(80).iter().take(40) {
                assert!(tree.remove_entry(k, r).is_some());
            }
            tree.compact();
        });
        assert_eq!(snap.len(), 80);
    }

    #[test]
    fn abort_compaction_restores_a_plain_delta_tree() {
        let mut tree = PackedRTree::bulk_load_with_node_size(4, grid(30));
        tree.stage_insert(800, Rect::new([3.0, 3.0], [4.0, 4.0]));
        tree.stage_insert(801, Rect::new([90.0, 3.0], [91.0, 4.0]));
        let _frozen = tree.freeze();
        assert!(matches!(
            tree.remove_entry(&800, &Rect::new([3.0, 3.0], [4.0, 4.0])),
            Some(DeltaRemoval::Retired { .. })
        ));
        tree.stage_insert(802, Rect::new([50.0, 50.0], [51.0, 51.0]));
        tree.abort_compaction();
        assert!(!tree.is_compacting());
        tree.validate().unwrap();
        assert_eq!(tree.len(), 32, "30 packed + live staged 801, 802");
        assert_eq!(tree.staged_len(), 2, "retired entry physically dropped");
        assert!(tree
            .search_point(&Point::new([3.5, 3.5]))
            .iter()
            .all(|&&k| k != 800));
        // Aborting again (or with no epoch) is a no-op.
        tree.abort_compaction();
        // Drain after an abort sees only live entries.
        let drained = tree.drain_live();
        assert_eq!(drained.len(), 32);
    }

    #[test]
    #[should_panic(expected = "update during an outstanding compaction snapshot")]
    fn update_mid_compaction_panics() {
        let mut tree = PackedRTree::bulk_load_with_node_size(4, grid(20));
        let _frozen = tree.freeze();
        tree.update(0, Rect::new([0.0, 0.0], [1.0, 1.0]));
    }

    #[test]
    fn maybe_compact_defers_while_a_snapshot_is_outstanding() {
        let mut tree = PackedRTree::bulk_load_with_node_size(4, grid(20));
        tree.set_delta_fraction(0.05);
        for i in 0..10usize {
            tree.stage_insert(100 + i, Rect::new([0.0, 0.0], [1.0, 1.0]));
        }
        assert!(tree.needs_compaction());
        let frozen = tree.freeze();
        // The compaction is already underway: no panic, no merge.
        assert_eq!(tree.maybe_compact(), None);
        tree.install(frozen.merge());
        assert_eq!(tree.delta_len(), 0);
        tree.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "freeze while a compaction snapshot is already outstanding")]
    fn double_freeze_panics() {
        let mut tree = PackedRTree::bulk_load_with_node_size(4, grid(20));
        let _a = tree.freeze();
        let _b = tree.freeze();
    }

    #[test]
    fn clone_shares_the_core_copy_on_write() {
        let mut tree = PackedRTree::bulk_load_with_node_size(4, grid(60));
        let copy = tree.clone();
        assert!(Arc::ptr_eq(&tree.core, &copy.core), "clone is O(delta)");
        let slot = tree.slot_of(&7).unwrap();
        tree.update(slot, Rect::new([500.0, 500.0], [501.0, 501.0]));
        // The clone still sees the original rectangle.
        let (_, old) = grid(60)[7];
        assert!(copy.search_point(&old.center()).contains(&&7));
        assert!(!tree.search_point(&old.center()).contains(&&7));
        copy.validate().unwrap();
        tree.validate().unwrap();
    }

    #[test]
    fn freeze_with_empty_packed_tier_works() {
        let mut tree: PackedRTree<usize, 2> = PackedRTree::bulk_load(Vec::new());
        tree.stage_insert(1, Rect::new([0.0, 0.0], [1.0, 1.0]));
        let frozen = tree.freeze();
        tree.stage_insert(2, Rect::new([2.0, 2.0], [3.0, 3.0]));
        let merged = frozen.merge();
        assert_eq!(merged.packed_len(), 1);
        tree.install(merged);
        tree.validate().unwrap();
        assert_eq!(tree.len(), 2);
        assert_eq!(tree.search_point(&Point::new([2.5, 2.5])), vec![&2]);
        assert_eq!(tree.search_point(&Point::new([0.5, 0.5])), vec![&1]);
    }

    #[test]
    fn visitor_counts_without_allocating_results() {
        let tree = PackedRTree::bulk_load(grid(300));
        let mut count = 0usize;
        tree.for_each_containing(&Point::new([1.0, 1.0]), |_, _| count += 1);
        assert_eq!(count, tree.search_point(&Point::new([1.0, 1.0])).len());
    }
}
