use drtree_spatial::{Point, Rect};

use crate::index::SpatialIndex;
use crate::validate::{self, ValidationError};
use crate::RTreeConfig;

/// A centralized R-tree (Guttman 1984), height-balanced, with entries
/// only in the leaves (paper §2.2).
///
/// `K` is the caller's key type (e.g. a subscriber id); each key is
/// tagged with the rectangle it subscribes to. The tree serves as the
/// exact-matching oracle for the distributed experiments and as a
/// baseline index; duplicates keys are permitted (the tree does not
/// index by key).
///
/// # Example
///
/// ```
/// use drtree_rtree::{RTree, RTreeConfig, SplitMethod};
/// use drtree_spatial::{Point, Rect};
///
/// let mut tree: RTree<u32, 2> =
///     RTree::new(RTreeConfig::new(2, 4, SplitMethod::Linear)?);
/// for i in 0..100u32 {
///     let x = f64::from(i % 10) * 10.0;
///     let y = f64::from(i / 10) * 10.0;
///     tree.insert(i, Rect::new([x, y], [x + 5.0, y + 5.0]));
/// }
/// assert_eq!(tree.len(), 100);
/// assert!(tree.height() >= 2);
/// let hits = tree.search_point(&Point::new([2.0, 2.0]));
/// assert_eq!(hits, vec![&0]);
/// tree.validate()?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct RTree<K, const D: usize> {
    config: RTreeConfig,
    root: Node<K, D>,
    len: usize,
    reinsertion: bool,
}

#[derive(Debug, Clone)]
pub(crate) enum Node<K, const D: usize> {
    Leaf(Vec<(K, Rect<D>)>),
    Internal(Vec<Child<K, D>>),
}

#[derive(Debug, Clone)]
pub(crate) struct Child<K, const D: usize> {
    pub(crate) mbr: Rect<D>,
    pub(crate) node: Box<Node<K, D>>,
}

/// Fraction of a leaf's entries removed by R\*-tree forced reinsertion.
const REINSERT_FRACTION: f64 = 0.3;

enum Outcome<K, const D: usize> {
    Fit,
    Split(Child<K, D>),
    Reinsert(Vec<(K, Rect<D>)>),
}

impl<K, const D: usize> Node<K, D> {
    pub(crate) fn mbr(&self) -> Option<Rect<D>> {
        match self {
            Node::Leaf(entries) => Rect::union_all(entries.iter().map(|(_, r)| r)),
            Node::Internal(children) => Rect::union_all(children.iter().map(|c| &c.mbr)),
        }
    }

    pub(crate) fn entry_count(&self) -> usize {
        match self {
            Node::Leaf(entries) => entries.len(),
            Node::Internal(children) => children.len(),
        }
    }
}

impl<K, const D: usize> RTree<K, D> {
    /// Creates an empty tree with the given degree bounds and split
    /// method.
    pub fn new(config: RTreeConfig) -> Self {
        Self {
            config,
            root: Node::Leaf(Vec::new()),
            len: 0,
            reinsertion: false,
        }
    }

    /// Enables or disables R\*-tree forced reinsertion on leaf overflow
    /// (Beckmann et al.: "it also tries to allocate some entries to a
    /// better suited node through reinsertion"). Takes effect for
    /// subsequent insertions; typically paired with
    /// [`SplitMethod::RStar`](crate::SplitMethod::RStar).
    pub fn set_reinsertion(&mut self, enabled: bool) {
        self.reinsertion = enabled;
    }

    /// The configuration the tree was built with.
    pub fn config(&self) -> RTreeConfig {
        self.config
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the tree stores no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of levels, counting the leaf level as 1 (an empty tree has
    /// height 1: the empty leaf root). The paper's Lemma 3.1 bounds this
    /// by `O(log_m N)`.
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = &self.root;
        while let Node::Internal(children) = node {
            h += 1;
            node = &children[0].node;
        }
        h
    }

    /// The MBR of the whole tree (`None` when empty).
    pub fn mbr(&self) -> Option<Rect<D>> {
        self.root.mbr()
    }

    /// Inserts an entry.
    pub fn insert(&mut self, key: K, rect: Rect<D>) {
        self.len += 1;
        let mut allow_reinsert = self.reinsertion;
        let mut queue = vec![(key, rect)];
        while let Some((k, r)) = queue.pop() {
            if let Some(mut evicted) = self.insert_root(k, r, allow_reinsert) {
                // Reinsert evicted entries; only one forced
                // reinsertion pass per logical insert.
                allow_reinsert = false;
                queue.append(&mut evicted);
            }
        }
    }

    fn insert_root(
        &mut self,
        key: K,
        rect: Rect<D>,
        allow_reinsert: bool,
    ) -> Option<Vec<(K, Rect<D>)>> {
        match Self::insert_rec(&self.config, &mut self.root, key, rect, allow_reinsert) {
            Outcome::Fit => None,
            Outcome::Split(sibling) => {
                let old_root = std::mem::replace(&mut self.root, Node::Internal(Vec::new()));
                let old_mbr = old_root.mbr().expect("split node is non-empty");
                self.root = Node::Internal(vec![
                    Child {
                        mbr: old_mbr,
                        node: Box::new(old_root),
                    },
                    sibling,
                ]);
                None
            }
            Outcome::Reinsert(entries) => Some(entries),
        }
    }

    fn insert_rec(
        config: &RTreeConfig,
        node: &mut Node<K, D>,
        key: K,
        rect: Rect<D>,
        allow_reinsert: bool,
    ) -> Outcome<K, D> {
        match node {
            Node::Leaf(entries) => {
                entries.push((key, rect));
                if entries.len() <= config.max_entries() {
                    return Outcome::Fit;
                }
                if allow_reinsert {
                    return Outcome::Reinsert(evict_farthest(entries));
                }
                let rects: Vec<Rect<D>> = entries.iter().map(|(_, r)| *r).collect();
                let (left_idx, right_idx) =
                    config.split_method().split(&rects, config.min_entries());
                let taken = std::mem::take(entries);
                let (left, right) = partition_owned(taken, &left_idx, &right_idx);
                let right_node = Node::Leaf(right);
                let right_mbr = right_node.mbr().expect("right split non-empty");
                *entries = left;
                Outcome::Split(Child {
                    mbr: right_mbr,
                    node: Box::new(right_node),
                })
            }
            Node::Internal(children) => {
                let idx = choose_subtree(children, &rect);
                children[idx].mbr.enlarge_to_cover(&rect);
                let outcome =
                    Self::insert_rec(config, &mut children[idx].node, key, rect, allow_reinsert);
                match outcome {
                    Outcome::Fit => Outcome::Fit,
                    Outcome::Reinsert(entries) => {
                        // The child shrank; refresh its cached MBR.
                        children[idx].mbr =
                            children[idx].node.mbr().expect("child retains entries");
                        Outcome::Reinsert(entries)
                    }
                    Outcome::Split(sibling) => {
                        children[idx].mbr =
                            children[idx].node.mbr().expect("split child non-empty");
                        children.push(sibling);
                        if children.len() <= config.max_entries() {
                            return Outcome::Fit;
                        }
                        let rects: Vec<Rect<D>> = children.iter().map(|c| c.mbr).collect();
                        let (left_idx, right_idx) =
                            config.split_method().split(&rects, config.min_entries());
                        let taken = std::mem::take(children);
                        let (left, right) = partition_owned(taken, &left_idx, &right_idx);
                        let right_node = Node::Internal(right);
                        let right_mbr = right_node.mbr().expect("right split non-empty");
                        *children = left;
                        Outcome::Split(Child {
                            mbr: right_mbr,
                            node: Box::new(right_node),
                        })
                    }
                }
            }
        }
    }

    /// Removes one entry equal to `(key, rect)`; returns `true` if found.
    ///
    /// Underflowing nodes are condensed: their surviving entries are
    /// reinserted, exactly as in Guttman's `CondenseTree`.
    pub fn remove(&mut self, key: &K, rect: &Rect<D>) -> bool
    where
        K: PartialEq,
    {
        let mut orphans = Vec::new();
        let found = Self::remove_rec(&self.config, &mut self.root, key, rect, &mut orphans);
        if !found {
            debug_assert!(orphans.is_empty());
            return false;
        }
        self.len -= 1;
        // Shrink the root while it is an internal node with one child.
        loop {
            let replace = match &mut self.root {
                Node::Internal(children) if children.len() == 1 => *children.remove(0).node,
                _ => break,
            };
            self.root = replace;
        }
        for (k, r) in orphans {
            self.insert(k, r);
            self.len -= 1; // orphans were already counted before condensing
        }
        true
    }

    fn remove_rec(
        config: &RTreeConfig,
        node: &mut Node<K, D>,
        key: &K,
        rect: &Rect<D>,
        orphans: &mut Vec<(K, Rect<D>)>,
    ) -> bool
    where
        K: PartialEq,
    {
        match node {
            Node::Leaf(entries) => {
                if let Some(pos) = entries.iter().position(|(k, r)| k == key && r == rect) {
                    entries.remove(pos);
                    true
                } else {
                    false
                }
            }
            Node::Internal(children) => {
                let mut found_at = None;
                for (i, child) in children.iter_mut().enumerate() {
                    if child.mbr.contains_rect(rect)
                        && Self::remove_rec(config, &mut child.node, key, rect, orphans)
                    {
                        found_at = Some(i);
                        break;
                    }
                }
                let Some(i) = found_at else { return false };
                if children[i].node.entry_count() < config.min_entries() {
                    // Condense: dissolve the underflowing child and
                    // reinsert everything it still carried.
                    let child = children.remove(i);
                    collect_entries(*child.node, orphans);
                } else {
                    children[i].mbr = children[i].node.mbr().expect("non-empty after remove");
                }
                true
            }
        }
    }

    /// Visits every entry whose rectangle contains `point` — the exact
    /// matching set of an event (zero false positives/negatives by
    /// construction). Hits are delivered through the callback, so
    /// counting or testing allocates no result vector.
    pub fn for_each_containing<'a, F>(&'a self, point: &Point<D>, mut visit: F)
    where
        F: FnMut(&'a K, &'a Rect<D>),
    {
        self.traverse(
            |mbr| mbr.contains_point(point),
            |entries| {
                for (k, r) in entries {
                    if r.contains_point(point) {
                        visit(k, r);
                    }
                }
            },
        );
    }

    /// Visits every entry whose rectangle intersects `window`.
    pub fn for_each_intersecting<'a, F>(&'a self, window: &Rect<D>, mut visit: F)
    where
        F: FnMut(&'a K, &'a Rect<D>),
    {
        self.traverse(
            |mbr| mbr.intersects(window),
            |entries| {
                for (k, r) in entries {
                    if r.intersects(window) {
                        visit(k, r);
                    }
                }
            },
        );
    }

    /// Iterative pruned traversal: descends into children whose MBR
    /// passes `enter`, handing surviving leaves' entry slices to `leaf`.
    fn traverse<'a>(
        &'a self,
        enter: impl Fn(&Rect<D>) -> bool,
        mut leaf: impl FnMut(&'a [(K, Rect<D>)]),
    ) {
        let mut stack: Vec<&Node<K, D>> =
            Vec::with_capacity(self.config.max_entries() * self.height());
        stack.push(&self.root);
        while let Some(node) = stack.pop() {
            match node {
                Node::Leaf(entries) => leaf(entries),
                Node::Internal(children) => {
                    stack.extend(
                        children
                            .iter()
                            .filter(|c| enter(&c.mbr))
                            .map(|c| c.node.as_ref()),
                    );
                }
            }
        }
    }

    /// Keys whose rectangle contains `point`. Prefer
    /// [`RTree::for_each_containing`] on hot paths; this convenience
    /// form allocates the result vector.
    pub fn search_point(&self, point: &Point<D>) -> Vec<&K> {
        let mut out = Vec::new();
        self.for_each_containing(point, |k, _| out.push(k));
        out
    }

    /// Keys whose rectangle intersects `window`.
    pub fn search_intersecting(&self, window: &Rect<D>) -> Vec<&K> {
        let mut out = Vec::new();
        self.for_each_intersecting(window, |k, _| out.push(k));
        out
    }

    /// Iterates over all `(key, rect)` entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &Rect<D>)> {
        let mut entries = Vec::with_capacity(self.len);
        self.traverse(
            |_| true,
            |leaf| entries.extend(leaf.iter().map(|(k, r)| (k, r))),
        );
        entries.into_iter()
    }

    /// Checks every structural invariant of §2.2 (degree bounds, exact
    /// MBRs, uniform leaf depth).
    ///
    /// # Errors
    ///
    /// Returns a [`ValidationError`] listing each violation found.
    pub fn validate(&self) -> Result<(), ValidationError> {
        validate::validate_tree(self)
    }

    pub(crate) fn root(&self) -> &Node<K, D> {
        &self.root
    }

    /// Assembles a tree from a prebuilt root (bulk loading).
    pub(crate) fn from_parts(config: RTreeConfig, root: Node<K, D>, len: usize) -> Self {
        Self {
            config,
            root,
            len,
            reinsertion: false,
        }
    }
}

impl<K, const D: usize> SpatialIndex<K, D> for RTree<K, D> {
    fn len(&self) -> usize {
        self.len
    }

    fn for_each_containing<'a, F>(&'a self, point: &Point<D>, visit: F)
    where
        F: FnMut(&'a K, &'a Rect<D>),
        K: 'a,
    {
        RTree::for_each_containing(self, point, visit);
    }

    fn for_each_intersecting<'a, F>(&'a self, window: &Rect<D>, visit: F)
    where
        F: FnMut(&'a K, &'a Rect<D>),
        K: 'a,
    {
        RTree::for_each_intersecting(self, window, visit);
    }
}

/// Least-enlargement child choice (`Choose_Best_Child` of Figure 8's
/// machinery): minimal enlargement, ties by smaller area, then by fewer
/// entries.
fn choose_subtree<K, const D: usize>(children: &[Child<K, D>], rect: &Rect<D>) -> usize {
    let mut best = 0usize;
    let mut best_grow = f64::INFINITY;
    let mut best_area = f64::INFINITY;
    for (i, c) in children.iter().enumerate() {
        let grow = c.mbr.enlargement(rect);
        let area = c.mbr.area();
        if grow < best_grow
            || (grow == best_grow && area < best_area)
            || (grow == best_grow
                && area == best_area
                && c.node.entry_count() < children[best].node.entry_count())
        {
            best = i;
            best_grow = grow;
            best_area = area;
        }
    }
    best
}

/// Removes the ~30% of `entries` whose centers lie farthest from the
/// node's MBR center (R\*-tree forced reinsertion candidates).
fn evict_farthest<K, const D: usize>(entries: &mut Vec<(K, Rect<D>)>) -> Vec<(K, Rect<D>)> {
    let count = (((entries.len() as f64) * REINSERT_FRACTION).floor() as usize).max(1);
    let center = Rect::union_all(entries.iter().map(|(_, r)| r))
        .expect("non-empty leaf")
        .center();
    let mut order: Vec<usize> = (0..entries.len()).collect();
    order.sort_by(|&a, &b| {
        let da = entries[a].1.center().distance2(&center);
        let db = entries[b].1.center().distance2(&center);
        db.partial_cmp(&da).expect("finite distances")
    });
    let mut evict_idx: Vec<usize> = order[..count].to_vec();
    evict_idx.sort_unstable_by(|a, b| b.cmp(a)); // remove from the back
    let mut evicted = Vec::with_capacity(count);
    for i in evict_idx {
        evicted.push(entries.remove(i));
    }
    evicted
}

fn partition_owned<T>(
    mut items: Vec<T>,
    left_idx: &[usize],
    right_idx: &[usize],
) -> (Vec<T>, Vec<T>) {
    debug_assert_eq!(left_idx.len() + right_idx.len(), items.len());
    let mut slots: Vec<Option<T>> = items.drain(..).map(Some).collect();
    let take = |slots: &mut Vec<Option<T>>, idx: &[usize]| {
        idx.iter()
            .map(|&i| slots[i].take().expect("index used once"))
            .collect::<Vec<T>>()
    };
    let left = take(&mut slots, left_idx);
    let right = take(&mut slots, right_idx);
    (left, right)
}

fn collect_entries<K, const D: usize>(node: Node<K, D>, out: &mut Vec<(K, Rect<D>)>) {
    match node {
        Node::Leaf(mut entries) => out.append(&mut entries),
        Node::Internal(children) => {
            for c in children {
                collect_entries(*c.node, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMethod;

    fn config(m: usize, max: usize, s: SplitMethod) -> RTreeConfig {
        RTreeConfig::new(m, max, s).unwrap()
    }

    fn grid_rect(i: usize) -> Rect<2> {
        let x = (i % 16) as f64 * 4.0;
        let y = (i / 16) as f64 * 4.0;
        Rect::new([x, y], [x + 2.0, y + 2.0])
    }

    #[test]
    fn empty_tree() {
        let tree: RTree<u32, 2> = RTree::new(RTreeConfig::default());
        assert!(tree.is_empty());
        assert_eq!(tree.height(), 1);
        assert_eq!(tree.mbr(), None);
        assert!(tree.search_point(&Point::new([0.0, 0.0])).is_empty());
        tree.validate().unwrap();
    }

    #[test]
    fn insert_and_search_all_methods() {
        for method in SplitMethod::ALL {
            let mut tree: RTree<usize, 2> = RTree::new(config(2, 5, method));
            for i in 0..200 {
                tree.insert(i, grid_rect(i));
            }
            assert_eq!(tree.len(), 200);
            tree.validate().unwrap_or_else(|e| panic!("{method}: {e}"));
            // every entry findable by its own center
            for i in 0..200 {
                let c = grid_rect(i).center();
                let hits = tree.search_point(&c);
                assert!(hits.contains(&&i), "{method}: entry {i} lost");
            }
        }
    }

    #[test]
    fn height_grows_logarithmically() {
        let mut tree: RTree<usize, 2> = RTree::new(config(4, 10, SplitMethod::Quadratic));
        for i in 0..1000 {
            tree.insert(i, grid_rect(i));
        }
        // ceil(log_4(1000)) + slack
        assert!(tree.height() <= 6, "height {} too large", tree.height());
        tree.validate().unwrap();
    }

    #[test]
    fn remove_entries() {
        let mut tree: RTree<usize, 2> = RTree::new(config(2, 4, SplitMethod::Quadratic));
        for i in 0..50 {
            tree.insert(i, grid_rect(i));
        }
        for i in (0..50).step_by(2) {
            assert!(tree.remove(&i, &grid_rect(i)), "remove {i}");
        }
        assert_eq!(tree.len(), 25);
        tree.validate().unwrap();
        for i in 0..50 {
            let c = grid_rect(i).center();
            let hits = tree.search_point(&c);
            assert_eq!(hits.contains(&&i), i % 2 == 1, "entry {i}");
        }
        assert!(!tree.remove(&1000, &grid_rect(0)));
    }

    #[test]
    fn remove_down_to_empty() {
        let mut tree: RTree<usize, 2> = RTree::new(config(2, 4, SplitMethod::Linear));
        for i in 0..20 {
            tree.insert(i, grid_rect(i));
        }
        for i in 0..20 {
            assert!(tree.remove(&i, &grid_rect(i)));
        }
        assert!(tree.is_empty());
        assert_eq!(tree.height(), 1);
        tree.validate().unwrap();
    }

    #[test]
    fn window_search() {
        let mut tree: RTree<usize, 2> = RTree::new(RTreeConfig::default());
        for i in 0..100 {
            tree.insert(i, grid_rect(i));
        }
        let window = Rect::new([0.0, 0.0], [10.0, 10.0]);
        let mut hits: Vec<usize> = tree
            .search_intersecting(&window)
            .into_iter()
            .copied()
            .collect();
        hits.sort_unstable();
        let mut expected: Vec<usize> = (0..100)
            .filter(|&i| grid_rect(i).intersects(&window))
            .collect();
        expected.sort_unstable();
        assert_eq!(hits, expected);
    }

    #[test]
    fn reinsertion_keeps_tree_valid() {
        let mut tree: RTree<usize, 2> = RTree::new(config(2, 5, SplitMethod::RStar));
        tree.set_reinsertion(true);
        for i in 0..300 {
            tree.insert(i, grid_rect(i));
        }
        assert_eq!(tree.len(), 300);
        tree.validate().unwrap();
        for i in 0..300 {
            let hits = tree.search_point(&grid_rect(i).center());
            assert!(hits.contains(&&i), "entry {i} lost after reinsertion");
        }
    }

    #[test]
    fn duplicate_rects_supported() {
        let mut tree: RTree<usize, 2> = RTree::new(RTreeConfig::default());
        let r = Rect::new([0.0, 0.0], [1.0, 1.0]);
        for i in 0..30 {
            tree.insert(i, r);
        }
        assert_eq!(tree.search_point(&Point::new([0.5, 0.5])).len(), 30);
        tree.validate().unwrap();
        assert!(tree.remove(&7, &r));
        assert_eq!(tree.len(), 29);
    }

    #[test]
    fn iter_yields_everything() {
        let mut tree: RTree<usize, 2> = RTree::new(RTreeConfig::default());
        for i in 0..64 {
            tree.insert(i, grid_rect(i));
        }
        let mut keys: Vec<usize> = tree.iter().map(|(k, _)| *k).collect();
        keys.sort_unstable();
        assert_eq!(keys, (0..64).collect::<Vec<_>>());
    }
}
