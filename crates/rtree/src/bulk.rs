//! Sort-Tile-Recursive (STR) bulk loading.
//!
//! Builds an R-tree bottom-up from a known entry set: entries are
//! sorted and tiled dimension by dimension into `M`-sized leaves, and
//! parent levels are packed the same way until a single root remains
//! (Leutenegger, Lopez, Edgington — "STR: a simple and efficient
//! algorithm for R-tree packing", ICDE 1997). Packed trees are shorter
//! and have far less node overlap than incrementally built ones, which
//! the `rtree_ops` bench quantifies.
//!
//! Unlike textbook STR, the tail of every chunking step is rebalanced
//! so no node underflows `m` — the result satisfies the same
//! invariants [`RTree::validate`] enforces for incremental trees.

use drtree_spatial::Rect;

use crate::tree::{Child, Node};
use crate::{RTree, RTreeConfig};

/// Splits `items` into chunks of `cap`, rebalancing the tail so every
/// chunk has at least `min` items (requires `cap ≥ 2·min`).
fn chunk_rebalanced<T>(items: Vec<T>, cap: usize, min: usize) -> Vec<Vec<T>> {
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    if n <= cap {
        return vec![items];
    }
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(n / cap + 1);
    let mut current: Vec<T> = Vec::with_capacity(cap);
    for item in items {
        current.push(item);
        if current.len() == cap {
            chunks.push(std::mem::replace(&mut current, Vec::with_capacity(cap)));
        }
    }
    if !current.is_empty() {
        if current.len() < min {
            let deficit = min - current.len();
            let prev = chunks.last_mut().expect("n > cap implies a full chunk");
            let steal_at = prev.len() - deficit;
            let mut stolen: Vec<T> = prev.drain(steal_at..).collect();
            stolen.append(&mut current);
            current = stolen;
        }
        chunks.push(current);
    }
    chunks
}

/// Recursively tiles `entries` into groups of at most `cap` (≥ `min`),
/// sorting by the center coordinate of each dimension in turn.
fn str_tile<T, const D: usize>(
    mut entries: Vec<(Rect<D>, T)>,
    cap: usize,
    min: usize,
    dim: usize,
) -> Vec<Vec<(Rect<D>, T)>> {
    if entries.len() <= cap {
        return vec![entries];
    }
    entries.sort_by(|a, b| {
        let ca = a.0.center().coord(dim);
        let cb = b.0.center().coord(dim);
        ca.partial_cmp(&cb).expect("finite centers")
    });
    if dim + 1 == D {
        return chunk_rebalanced(entries, cap, min);
    }
    // Number of leaves this subtree must produce, spread over the
    // remaining dimensions: S = ceil(leaves^(1/remaining)).
    let leaves = entries.len().div_ceil(cap);
    let remaining = (D - dim) as f64;
    let slabs = (leaves as f64).powf(1.0 / remaining).ceil() as usize;
    let slab_size = entries.len().div_ceil(slabs.max(1)).max(cap);
    let mut out = Vec::new();
    for slab in chunk_rebalanced(entries, slab_size, min) {
        out.extend(str_tile(slab, cap, min, dim + 1));
    }
    out
}

impl<K, const D: usize> RTree<K, D> {
    /// Builds a packed tree from `entries` using STR.
    ///
    /// Produces the same search results as inserting every entry
    /// individually, with a shorter, lower-overlap structure, in
    /// `O(n log n)` time.
    pub fn bulk_load(config: RTreeConfig, entries: Vec<(K, Rect<D>)>) -> Self {
        let cap = config.max_entries();
        let min = config.min_entries();
        let len = entries.len();
        if len == 0 {
            return Self::new(config);
        }

        // Leaf level.
        let tiled = str_tile(
            entries.into_iter().map(|(k, r)| (r, k)).collect(),
            cap,
            min,
            0,
        );
        let mut level: Vec<Child<K, D>> = tiled
            .into_iter()
            .map(|group| {
                let node = Node::Leaf(group.into_iter().map(|(r, k)| (k, r)).collect());
                Child {
                    mbr: node.mbr().expect("non-empty leaf"),
                    node: Box::new(node),
                }
            })
            .collect();

        // Pack upward until one node remains.
        while level.len() > 1 {
            let tiled = str_tile(level.into_iter().map(|c| (c.mbr, c)).collect(), cap, min, 0);
            level = tiled
                .into_iter()
                .map(|group| {
                    let node = Node::Internal(group.into_iter().map(|(_, c)| c).collect());
                    Child {
                        mbr: node.mbr().expect("non-empty internal node"),
                        node: Box::new(node),
                    }
                })
                .collect();
        }
        let root = *level.pop().expect("one node remains").node;
        Self::from_parts(config, root, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMethod;
    use drtree_spatial::Point;

    fn rects(n: usize) -> Vec<(usize, Rect<2>)> {
        (0..n)
            .map(|i| {
                let x = (i % 32) as f64 * 3.0;
                let y = (i / 32) as f64 * 3.0;
                (i, Rect::new([x, y], [x + 2.0, y + 2.0]))
            })
            .collect()
    }

    #[test]
    fn chunk_rebalanced_never_underflows() {
        for n in 1..60usize {
            let items: Vec<usize> = (0..n).collect();
            let chunks = chunk_rebalanced(items, 5, 2);
            let total: usize = chunks.iter().map(Vec::len).sum();
            assert_eq!(total, n);
            if chunks.len() > 1 {
                for c in &chunks {
                    assert!(c.len() >= 2, "n={n}: chunk of {}", c.len());
                    assert!(c.len() <= 5, "n={n}: chunk of {}", c.len());
                }
            }
        }
    }

    #[test]
    fn bulk_load_is_valid_and_complete() {
        for n in [0usize, 1, 4, 5, 17, 100, 333, 1000] {
            let config = RTreeConfig::new(2, 5, SplitMethod::Quadratic).unwrap();
            let tree = RTree::bulk_load(config, rects(n));
            assert_eq!(tree.len(), n);
            tree.validate().unwrap_or_else(|e| panic!("n={n}: {e}"));
            for (k, r) in rects(n) {
                let hits = tree.search_point(&r.center());
                assert!(hits.contains(&&k), "n={n}: entry {k} lost");
            }
        }
    }

    #[test]
    fn bulk_load_matches_incremental_queries() {
        let config = RTreeConfig::new(2, 6, SplitMethod::RStar).unwrap();
        let entries = rects(400);
        let bulk = RTree::bulk_load(config, entries.clone());
        let mut incr: RTree<usize, 2> = RTree::new(config);
        for (k, r) in entries {
            incr.insert(k, r);
        }
        for probe in [
            Point::new([1.0, 1.0]),
            Point::new([50.0, 20.0]),
            Point::new([95.0, 36.0]),
            Point::new([1000.0, 1000.0]),
        ] {
            let mut a: Vec<usize> = bulk.search_point(&probe).into_iter().copied().collect();
            let mut b: Vec<usize> = incr.search_point(&probe).into_iter().copied().collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "at {probe}");
        }
    }

    #[test]
    fn bulk_load_is_not_taller_than_incremental() {
        let config = RTreeConfig::new(2, 5, SplitMethod::Quadratic).unwrap();
        let entries = rects(500);
        let bulk = RTree::bulk_load(config, entries.clone());
        let mut incr: RTree<usize, 2> = RTree::new(config);
        for (k, r) in entries {
            incr.insert(k, r);
        }
        assert!(bulk.height() <= incr.height());
    }

    #[test]
    fn bulk_load_supports_mutation_afterwards() {
        let config = RTreeConfig::default();
        let mut tree = RTree::bulk_load(config, rects(60));
        tree.insert(999, Rect::new([500.0, 500.0], [501.0, 501.0]));
        assert!(tree.remove(&3, &rects(60)[3].1));
        tree.validate().unwrap();
        assert_eq!(tree.len(), 60);
    }
}
