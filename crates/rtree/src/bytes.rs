//! Vendor-free POD casting and the flat-buffer toolkit behind the
//! packed tree's zero-copy snapshots.
//!
//! The snapshot format ([`crate::PackedRTree::save`]) stores every
//! large array — entry rectangles, per-level node MBRs, curve keys —
//! as little-endian machine words at 64-byte-aligned offsets, so a
//! loaded buffer can serve queries *in place*: no per-node
//! deserialization, just reinterpreting byte ranges as typed slices.
//! This module is the only place that reinterpretation happens.
//!
//! # Safety boundary
//!
//! The crate is `#![deny(unsafe_code)]`; this module carries the one
//! `allow` and keeps every `unsafe` block behind a safe, align- and
//! size-checked API:
//!
//! * casts go through the sealed `Pod` marker trait, implemented
//!   only for types whose every bit pattern is a valid value and whose
//!   layout is fixed (`#[repr(C)]` / primitives);
//! * `cast_slice` rejects misaligned or odd-length input with a
//!   [`CastError`] instead of ever constructing an invalid reference;
//! * [`AlignedBytes`] guarantees its storage satisfies
//!   [`BUFFER_ALIGN`], re-allocating on adoption only when the
//!   provided `Vec<u8>` is insufficiently aligned (allocators
//!   virtually always hand back 16-byte-aligned blocks, so the copy
//!   is the rare path).
//!
//! The unit tests below exercise every cast path (including the
//! misalignment rejections) with Miri-compatible patterns: no
//! pointer-integer round trips beyond alignment checks, no
//! out-of-bounds offsets, provenance preserved through
//! `align_offset`/`split_at` only.

use std::sync::Arc;

use drtree_spatial::{Point, Rect};

/// Alignment every typed section of a snapshot buffer needs at
/// minimum: the widest scalar stored is an `f64`/`u64` (8 bytes).
/// Section *offsets* are multiples of [`SECTION_ALIGN`] regardless, so
/// a 64-byte-aligned allocation gives every section cache-line
/// alignment for free.
pub const BUFFER_ALIGN: usize = 8;

/// Offset granularity of snapshot sections (one x86 cache line). Kept
/// independent of [`BUFFER_ALIGN`]: offsets are always 64-byte
/// multiples *relative to the buffer start*, so sections never straddle
/// a line boundary they wouldn't also straddle at offset zero.
pub const SECTION_ALIGN: usize = 64;

/// Why a byte range could not be viewed as a typed slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CastError {
    /// The range's start address is not a multiple of the target
    /// type's alignment.
    Misaligned,
    /// The range's length is not a multiple of the target type's size.
    OddLength,
}

impl std::fmt::Display for CastError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CastError::Misaligned => f.write_str("byte range is misaligned for the target type"),
            CastError::OddLength => {
                f.write_str("byte range length is not a multiple of the target size")
            }
        }
    }
}

impl std::error::Error for CastError {}

mod sealed {
    /// Sealed marker: every bit pattern is a valid value, the layout
    /// is fixed (primitive or `#[repr(C)]` without padding), and the
    /// type is `Copy`.
    ///
    /// # Safety
    ///
    /// Implementors must have no padding bytes, no niches, and no
    /// interior mutability; `size_of::<T>()` must be a multiple of
    /// `align_of::<T>()` (true for any Rust type).
    pub unsafe trait Pod: Copy + 'static {}

    // SAFETY: primitive integers and floats accept every bit pattern
    // and have no padding.
    unsafe impl Pod for u8 {}
    unsafe impl Pod for u32 {}
    unsafe impl Pod for u64 {}
    unsafe impl Pod for f32 {}
    unsafe impl Pod for f64 {}

    // SAFETY: `Rect<D>` is `#[repr(C)] { lo: [f64; D], hi: [f64; D] }`
    // — 2·D consecutive f64s, alignment 8, no padding — and every bit
    // pattern is a valid f64. A corrupted buffer can produce values
    // violating the *logical* rect invariant (NaN, lo > hi); that is
    // memory-safe (NaN comparisons conservatively test false in the
    // branchless masks) and the snapshot checksum rejects such buffers
    // before they are served.
    unsafe impl<const D: usize> Pod for drtree_spatial::Rect<D> {}

    // SAFETY: same argument with f32 fields, alignment 4, no padding.
    unsafe impl<const D: usize> Pod for super::QRect<D> {}
}

pub(crate) use sealed::Pod;

/// An f32-quantized rectangle — the storage type of a snapshot's
/// interior node MBRs when the `QUANTIZED` layout flag is set. Half
/// the bytes per node of the exact representation, so twice the MBRs
/// per cache line in the branchless bitmask descent.
///
/// Quantization rounds **outward** ([`QRect::quantize`]): the f32 box
/// always contains the exact f64 box, so pruning against it stays
/// conservative — a node is never skipped while covering a hit.
/// Exactness of results is untouched because entry (leaf) rectangles
/// stay f64 and every emission tests the exact rectangle.
#[derive(Debug, Clone, Copy, PartialEq)]
#[repr(C)]
pub(crate) struct QRect<const D: usize> {
    lo: [f32; D],
    hi: [f32; D],
}

/// Largest f32 not exceeding `x` (outward rounding of a lower bound).
fn f32_down(x: f64) -> f32 {
    let f = x as f32; // rounds to nearest, saturating to ±∞
    if f64::from(f) > x {
        f.next_down()
    } else {
        f
    }
}

/// Smallest f32 not below `x` (outward rounding of an upper bound).
fn f32_up(x: f64) -> f32 {
    let f = x as f32;
    if f64::from(f) < x {
        f.next_up()
    } else {
        f
    }
}

impl<const D: usize> QRect<D> {
    /// The conservative (outward-rounded) f32 cover of `rect`.
    pub(crate) fn quantize(rect: &Rect<D>) -> Self {
        let mut lo = [0.0f32; D];
        let mut hi = [0.0f32; D];
        for d in 0..D {
            lo[d] = f32_down(rect.lo(d));
            hi[d] = f32_up(rect.hi(d));
        }
        Self { lo, hi }
    }

    /// A rectangle no point ever hits — what aligned-fanout padding
    /// slots are filled with (never exposed to a mask scan; defense in
    /// depth only).
    pub(crate) fn sentinel() -> Self {
        Self {
            lo: [f32::INFINITY; D],
            hi: [f32::NEG_INFINITY; D],
        }
    }

    /// Lower bound along dimension `d`, widened exactly to f64.
    #[inline]
    pub(crate) fn lo(&self, d: usize) -> f64 {
        f64::from(self.lo[d])
    }

    /// Upper bound along dimension `d`, widened exactly to f64.
    #[inline]
    pub(crate) fn hi(&self, d: usize) -> f64 {
        f64::from(self.hi[d])
    }

    /// Branchless closed-bounds containment of `point`.
    #[inline]
    pub(crate) fn contains_point_branchless(&self, point: &Point<D>) -> bool {
        let mut hit = true;
        for d in 0..D {
            let c = point.coord(d);
            hit &= (self.lo(d) <= c) & (c <= self.hi(d));
        }
        hit
    }

    /// The exact f64 rectangle this quantized box covers. Widening is
    /// exact (every f32 is an f64), so the result still contains the
    /// original rectangle.
    pub(crate) fn widen(&self) -> Rect<D> {
        let mut lo = [0.0f64; D];
        let mut hi = [0.0f64; D];
        for d in 0..D {
            lo[d] = self.lo(d);
            hi[d] = self.hi(d);
        }
        Rect::new(lo, hi)
    }
}

/// Views `bytes` as a slice of `T`, checking alignment and length.
/// Zero-copy: the returned slice borrows `bytes`.
///
/// # Errors
///
/// [`CastError::Misaligned`] when the start address is not aligned for
/// `T`; [`CastError::OddLength`] when the byte length is not a
/// multiple of `size_of::<T>()`.
pub(crate) fn cast_slice<T: Pod>(bytes: &[u8]) -> Result<&[T], CastError> {
    let size = std::mem::size_of::<T>();
    if size == 0 {
        return Ok(&[]);
    }
    if bytes.as_ptr().align_offset(std::mem::align_of::<T>()) != 0 {
        return Err(CastError::Misaligned);
    }
    if !bytes.len().is_multiple_of(size) {
        return Err(CastError::OddLength);
    }
    // SAFETY: the pointer is non-null and aligned for `T` (checked
    // above), the length covers exactly `len / size` values of `T`,
    // every bit pattern is a valid `T` (the sealed `Pod` contract),
    // and the borrow of `bytes` keeps the memory live and immutable
    // for the returned lifetime.
    #[allow(unsafe_code)]
    Ok(unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<T>(), bytes.len() / size) })
}

/// Views a slice of `T` as its raw bytes — the safe direction, used by
/// the snapshot writer to emit whole arrays with one `memcpy` instead
/// of per-element encoding. Only meaningful for little-endian storage
/// on little-endian hosts; [`crate::PackedRTree::save`] documents the
/// format as little-endian.
pub(crate) fn as_bytes<T: Pod>(values: &[T]) -> &[u8] {
    // SAFETY: `Pod` guarantees no padding bytes, so every byte of the
    // slice is initialized; alignment of `u8` is 1; the length is the
    // exact byte size of the slice.
    #[allow(unsafe_code)]
    unsafe {
        std::slice::from_raw_parts(values.as_ptr().cast::<u8>(), std::mem::size_of_val(values))
    }
}

/// A byte buffer whose storage is guaranteed [`BUFFER_ALIGN`]-aligned,
/// shared read-only behind an [`Arc`] so one loaded snapshot can back
/// several cores (the sharded oracle restores all `K` shards from a
/// single allocation).
#[derive(Debug)]
pub struct AlignedBytes {
    storage: Storage,
}

/// A `Vec<u8>` only formally guarantees alignment 1, but in practice
/// allocators hand back ≥ 16-byte-aligned blocks for any non-trivial
/// size — so adoption keeps the vector as-is when its pointer checks
/// out (the whole point of zero-copy restore: no multi-megabyte
/// memcpy on the cold-start path) and copies into `u64` words (always
/// 8-aligned) only on the rare under-aligned allocation.
#[derive(Debug)]
enum Storage {
    /// The adopted vector, verified [`BUFFER_ALIGN`]-aligned. The
    /// buffer is immutable from here on, so the pointer (and its
    /// alignment) never changes.
    Raw(Vec<u8>),
    /// Fallback copy in `u64` words; `len` is the byte length.
    Words { words: Vec<u64>, len: usize },
}

impl AlignedBytes {
    /// Adopts `bytes`, zero-copy when the allocation happens to be
    /// [`BUFFER_ALIGN`]-aligned — which it essentially always is; the
    /// fallback copies into aligned storage.
    pub fn adopt(bytes: Vec<u8>) -> Arc<Self> {
        if bytes.as_ptr().align_offset(BUFFER_ALIGN) == 0 {
            return Arc::new(Self {
                storage: Storage::Raw(bytes),
            });
        }
        let len = bytes.len();
        let mut words = vec![0u64; len.div_ceil(8)];
        for (word, chunk) in words.iter_mut().zip(bytes.chunks(8)) {
            let mut raw = [0u8; 8];
            raw[..chunk.len()].copy_from_slice(chunk);
            *word = u64::from_le_bytes(raw);
        }
        Arc::new(Self {
            storage: Storage::Words { words, len },
        })
    }

    /// The buffer contents.
    pub fn as_slice(&self) -> &[u8] {
        match &self.storage {
            Storage::Raw(bytes) => bytes,
            Storage::Words { words, len } => &as_bytes(words)[..*len],
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        match &self.storage {
            Storage::Raw(bytes) => bytes.len(),
            Storage::Words { len, .. } => *len,
        }
    }

    /// `true` when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Rounds `offset` up to the next multiple of [`SECTION_ALIGN`].
pub fn align_up(offset: usize) -> usize {
    offset.div_ceil(SECTION_ALIGN) * SECTION_ALIGN
}

/// Pads `out` with zero bytes to the next [`SECTION_ALIGN`] boundary.
pub fn pad_to_section(out: &mut Vec<u8>) {
    out.resize(align_up(out.len()), 0);
}

/// The snapshot checksum: an 8-lane xor-rotate hash over 64-byte
/// blocks with an FNV-style finisher. Chosen for throughput — the
/// whole loop vectorizes to plain shifts/xors over contiguous words,
/// so verifying a multi-megabyte snapshot costs a fraction of the
/// bulk build it replaces — while still detecting any single bit
/// flip, truncation (the length participates), and section
/// transpositions across lane phases.
pub fn checksum(bytes: &[u8]) -> u64 {
    const SEEDS: [u64; 8] = [
        0x9e37_79b9_7f4a_7c15,
        0xbf58_476d_1ce4_e5b9,
        0x94d0_49bb_1331_11eb,
        0x2545_f491_4f6c_dd1d,
        0xff51_afd7_ed55_8ccd,
        0xc4ce_b9fe_1a85_ec53,
        0x8764_0000_0000_0001,
        0xd6e8_feb8_6659_fd93,
    ];
    let mut lanes = SEEDS;
    let mut chunks = bytes.chunks_exact(64);
    for block in &mut chunks {
        for (lane, raw) in lanes.iter_mut().zip(block.chunks_exact(8)) {
            let word = u64::from_le_bytes(raw.try_into().expect("8-byte chunk"));
            *lane = (*lane ^ word).rotate_left(23);
        }
    }
    let tail = chunks.remainder();
    if !tail.is_empty() {
        let mut block = [0u8; 64];
        block[..tail.len()].copy_from_slice(tail);
        for (lane, raw) in lanes.iter_mut().zip(block.chunks_exact(8)) {
            let word = u64::from_le_bytes(raw.try_into().expect("8-byte chunk"));
            *lane = (*lane ^ word).rotate_left(23);
        }
    }
    let mut acc = 0xcbf2_9ce4_8422_2325u64 ^ bytes.len() as u64;
    for lane in lanes {
        acc = (acc ^ lane).wrapping_mul(0x0000_0100_0000_01b3);
    }
    acc
}

/// Little-endian field reader over a byte slice, used by the snapshot
/// header parsers. All accessors return `None` past the end instead of
/// panicking — truncated buffers must surface as errors.
pub fn read_u16(bytes: &[u8], offset: usize) -> Option<u16> {
    bytes
        .get(offset..offset + 2)
        .map(|raw| u16::from_le_bytes(raw.try_into().expect("2-byte range")))
}

/// Little-endian `u32` at `offset`, or `None` past the end.
pub fn read_u32(bytes: &[u8], offset: usize) -> Option<u32> {
    bytes
        .get(offset..offset + 4)
        .map(|raw| u32::from_le_bytes(raw.try_into().expect("4-byte range")))
}

/// Little-endian `u64` at `offset`, or `None` past the end.
pub fn read_u64(bytes: &[u8], offset: usize) -> Option<u64> {
    bytes
        .get(offset..offset + 8)
        .map(|raw| u64::from_le_bytes(raw.try_into().expect("8-byte range")))
}

/// Little-endian `f64` at `offset`, or `None` past the end.
pub fn read_f64(bytes: &[u8], offset: usize) -> Option<f64> {
    read_u64(bytes, offset).map(f64::from_bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cast_roundtrips_f64() {
        let values: Vec<f64> = (0..17).map(|i| i as f64 * 0.5).collect();
        let bytes = as_bytes(&values);
        let back: &[f64] = cast_slice(bytes).unwrap();
        assert_eq!(back, values.as_slice());
    }

    #[test]
    fn cast_roundtrips_u32() {
        let values: Vec<u32> = (0..33).map(|i| i * 0x0101_0101).collect();
        let back: &[u32] = cast_slice(as_bytes(&values)).unwrap();
        assert_eq!(back, values.as_slice());
    }

    #[test]
    fn misaligned_input_is_rejected_not_ub() {
        let store: Vec<u64> = vec![0; 4];
        let bytes = &as_bytes(&store)[1..25]; // deliberately offset by 1
        assert_eq!(cast_slice::<u64>(bytes), Err(CastError::Misaligned));
        let odd = &as_bytes(&store)[0..12]; // aligned but not a multiple of 8
        assert_eq!(cast_slice::<u64>(odd), Err(CastError::OddLength));
    }

    #[test]
    fn adopt_guarantees_alignment_and_contents() {
        for len in [0usize, 1, 7, 8, 63, 64, 65, 1000] {
            let bytes: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
            let aligned = AlignedBytes::adopt(bytes.clone());
            assert_eq!(aligned.as_slice(), bytes.as_slice());
            assert_eq!(
                aligned.as_slice().as_ptr().align_offset(BUFFER_ALIGN),
                0,
                "len {len}: storage must be {BUFFER_ALIGN}-byte aligned"
            );
        }
    }

    #[test]
    fn checksum_detects_flips_and_truncation() {
        let mut bytes: Vec<u8> = (0..997).map(|i| (i % 256) as u8).collect();
        let base = checksum(&bytes);
        assert_eq!(base, checksum(&bytes), "deterministic");
        for &at in &[0usize, 63, 64, 500, 996] {
            bytes[at] ^= 0x10;
            assert_ne!(base, checksum(&bytes), "flip at {at} undetected");
            bytes[at] ^= 0x10;
        }
        assert_ne!(base, checksum(&bytes[..996]), "truncation undetected");
        assert_ne!(checksum(&[]), checksum(&[0u8]), "length participates");
    }

    #[test]
    fn section_alignment_helpers() {
        assert_eq!(align_up(0), 0);
        assert_eq!(align_up(1), 64);
        assert_eq!(align_up(64), 64);
        assert_eq!(align_up(65), 128);
        let mut v = vec![1u8; 10];
        pad_to_section(&mut v);
        assert_eq!(v.len(), 64);
        assert!(v[10..].iter().all(|&b| b == 0));
    }

    #[test]
    fn rect_casts_view_in_place() {
        let rects: Vec<Rect<2>> = (0..9)
            .map(|i| {
                let o = f64::from(i) * 2.0;
                Rect::new([o, o + 0.5], [o + 1.0, o + 1.5])
            })
            .collect();
        let back: &[Rect<2>] = cast_slice(as_bytes(&rects)).unwrap();
        assert_eq!(back, rects.as_slice());
        let qrects: Vec<QRect<3>> = (0..5)
            .map(|i| QRect::quantize(&Rect::new([f64::from(i); 3], [f64::from(i) + 1.0; 3])))
            .collect();
        let back: &[QRect<3>] = cast_slice(as_bytes(&qrects)).unwrap();
        assert_eq!(back, qrects.as_slice());
    }

    #[test]
    fn quantization_rounds_outward() {
        // 0.1 and 1/3 are inexact in both widths; π-scaled values
        // exercise rounding in both directions.
        let tricky = [
            0.1,
            -0.1,
            1.0 / 3.0,
            -1.0 / 3.0,
            std::f64::consts::PI * 1e30,
            -std::f64::consts::PI * 1e30,
            1e300,  // beyond f32::MAX: as-lo rounds down to f32::MAX, as-hi saturates to +∞
            -1e300, // beyond -f32::MAX: mirror image
            f64::INFINITY,
            f64::NEG_INFINITY,
            0.0,
            -0.0,
        ];
        for &lo in &tricky {
            for &hi in &tricky {
                if lo > hi {
                    continue;
                }
                let rect: Rect<1> = Rect::new([lo], [hi]);
                let q = QRect::quantize(&rect);
                assert!(q.lo(0) <= lo, "lo {lo} rounded inward to {}", q.lo(0));
                assert!(q.hi(0) >= hi, "hi {hi} rounded inward to {}", q.hi(0));
                assert!(q.widen().contains_rect(&rect));
            }
        }
        // Containment is preserved for interior points.
        let rect: Rect<2> = Rect::new([0.1, 0.2], [0.3, 0.4]);
        let q = QRect::quantize(&rect);
        assert!(q.contains_point_branchless(&Point::new([0.2, 0.3])));
        assert!(!QRect::<2>::sentinel().contains_point_branchless(&Point::new([0.0, 0.0])));
    }

    #[test]
    fn readers_reject_truncation() {
        let bytes = [1u8, 2, 3, 4, 5, 6, 7, 8];
        assert_eq!(read_u16(&bytes, 0), Some(u16::from_le_bytes([1, 2])));
        assert_eq!(read_u32(&bytes, 0), Some(u32::from_le_bytes([1, 2, 3, 4])));
        assert_eq!(read_u64(&bytes, 0), Some(u64::from_le_bytes(bytes)));
        assert_eq!(read_u16(&bytes, 7), None);
        assert_eq!(read_u32(&bytes, 5), None);
        assert_eq!(read_u64(&bytes, 1), None);
        assert_eq!(read_f64(&bytes, 8), None);
    }
}
