//! Structural invariant checking for the centralized R-tree.
//!
//! Mirrors the R-tree properties of paper §2.2: degree bounds on every
//! node, exact (minimal) bounding rectangles, and uniform leaf depth
//! ("the height of an R-tree containing N objects is log_m(N) − 1").

use std::fmt;

use drtree_spatial::Rect;

use crate::tree::{Node, RTree};

/// One violated R-tree invariant, reported by [`RTree::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum InvariantViolation {
    /// A non-root node holds fewer than `m` or more than `M` entries.
    DegreeOutOfBounds {
        /// Path of child indices from the root to the offending node.
        path: Vec<usize>,
        /// Number of entries found.
        count: usize,
    },
    /// The root is an internal node with fewer than two children.
    RootTooSmall {
        /// Number of children found.
        count: usize,
    },
    /// A cached child MBR is not the exact union of the child's entries.
    WrongMbr {
        /// Path of child indices from the root to the offending child.
        path: Vec<usize>,
    },
    /// Two leaves sit at different depths.
    UnbalancedLeaves {
        /// Depth of the first leaf encountered.
        expected: usize,
        /// Conflicting depth found.
        found: usize,
    },
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantViolation::DegreeOutOfBounds { path, count } => {
                write!(f, "node at {path:?} has {count} entries (out of bounds)")
            }
            InvariantViolation::RootTooSmall { count } => {
                write!(f, "internal root has only {count} child(ren)")
            }
            InvariantViolation::WrongMbr { path } => {
                write!(f, "cached MBR at {path:?} is not the union of its subtree")
            }
            InvariantViolation::UnbalancedLeaves { expected, found } => {
                write!(f, "leaf at depth {found}, expected {expected}")
            }
        }
    }
}

/// Error carrying every invariant violation found in one pass.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationError {
    violations: Vec<InvariantViolation>,
}

impl ValidationError {
    /// The individual violations.
    pub fn violations(&self) -> &[InvariantViolation] {
        &self.violations
    }
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} R-tree invariant violation(s):",
            self.violations.len()
        )?;
        for v in &self.violations {
            write!(f, "\n  - {v}")?;
        }
        Ok(())
    }
}

impl std::error::Error for ValidationError {}

/// Why a snapshot buffer was rejected by [`crate::PackedRTree::load`]
/// (or the sharded oracle's `restore_bytes`). Every rejection is a
/// clean error — a corrupt or truncated buffer never panics and never
/// produces an out-of-bounds view, because all section offsets are
/// re-derived from the validated header and checked against the actual
/// buffer length before any typed slice is formed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer is shorter than its header (or a declared section)
    /// requires.
    Truncated {
        /// Bytes the header/layout requires.
        needed: usize,
        /// Bytes actually present.
        have: usize,
    },
    /// The leading magic number is not the expected format tag.
    BadMagic {
        /// The four bytes found (little-endian `u32`).
        found: u32,
    },
    /// The format version is newer (or older) than this build reads.
    WrongVersion {
        /// Version found in the header.
        found: u16,
        /// Version this build supports.
        supported: u16,
    },
    /// The buffer stores a different dimensionality than the target
    /// type's `D`.
    WrongDims {
        /// Dimensions declared by the header.
        found: u32,
        /// Dimensions the caller's type expects.
        expected: u32,
    },
    /// A stored checksum does not match the recomputed one — the
    /// payload was corrupted in flight or at rest.
    ChecksumMismatch,
    /// The snapshot's Hilbert shard assignment (world rectangle or
    /// range boundaries) disagrees with the assignment the restoring
    /// owner currently prescribes. Restoring it anyway would silently
    /// route entries to the wrong shards — or, one level up, to the
    /// wrong federated broker — so a warm restart from this buffer
    /// must fall back to a cold rebuild instead.
    StaleBoundaries {
        /// Shards the snapshot's embedded map partitions the curve
        /// into (0 when the snapshot carries no map at all).
        found: u32,
        /// Shards the expected assignment prescribes.
        expected: u32,
    },
    /// A header field is structurally impossible (node size out of
    /// range, level table disagreeing with the entry count, an invalid
    /// world rectangle, a count overflowing the format's limits, …).
    Corrupt(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated { needed, have } => {
                write!(f, "snapshot truncated: need {needed} bytes, have {have}")
            }
            SnapshotError::BadMagic { found } => {
                write!(f, "snapshot magic {found:#010x} is not a known format tag")
            }
            SnapshotError::WrongVersion { found, supported } => {
                write!(
                    f,
                    "snapshot version {found} unsupported (this build reads {supported})"
                )
            }
            SnapshotError::WrongDims { found, expected } => {
                write!(
                    f,
                    "snapshot stores {found}-dimensional rectangles, expected {expected}"
                )
            }
            SnapshotError::ChecksumMismatch => f.write_str("snapshot checksum mismatch"),
            SnapshotError::StaleBoundaries { found, expected } => write!(
                f,
                "snapshot shard boundaries are stale ({found} shards vs {expected} expected, \
                 or diverged keys/world): restoring would mis-route entries"
            ),
            SnapshotError::Corrupt(what) => write!(f, "snapshot header corrupt: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

pub(crate) fn validate_tree<K, const D: usize>(tree: &RTree<K, D>) -> Result<(), ValidationError> {
    let mut violations = Vec::new();
    let config = tree.config();
    let root = tree.root();

    if let Node::Internal(children) = root {
        if children.len() < 2 {
            violations.push(InvariantViolation::RootTooSmall {
                count: children.len(),
            });
        }
        if children.len() > config.max_entries() {
            violations.push(InvariantViolation::DegreeOutOfBounds {
                path: Vec::new(),
                count: children.len(),
            });
        }
    }

    let mut leaf_depth: Option<usize> = None;
    walk(
        root,
        &mut Vec::new(),
        0,
        config.min_entries(),
        config.max_entries(),
        &mut leaf_depth,
        &mut violations,
    );

    if violations.is_empty() {
        Ok(())
    } else {
        Err(ValidationError { violations })
    }
}

fn walk<K, const D: usize>(
    node: &Node<K, D>,
    path: &mut Vec<usize>,
    depth: usize,
    m: usize,
    max: usize,
    leaf_depth: &mut Option<usize>,
    violations: &mut Vec<InvariantViolation>,
) {
    match node {
        Node::Leaf(_) => match leaf_depth {
            None => *leaf_depth = Some(depth),
            Some(expected) if *expected != depth => {
                violations.push(InvariantViolation::UnbalancedLeaves {
                    expected: *expected,
                    found: depth,
                });
            }
            _ => {}
        },
        Node::Internal(children) => {
            for (i, child) in children.iter().enumerate() {
                path.push(i);
                let count = child.node.entry_count();
                if count < m || count > max {
                    violations.push(InvariantViolation::DegreeOutOfBounds {
                        path: path.clone(),
                        count,
                    });
                }
                let actual: Option<Rect<D>> = child.node.mbr();
                if actual != Some(child.mbr) {
                    violations.push(InvariantViolation::WrongMbr { path: path.clone() });
                }
                walk(&child.node, path, depth + 1, m, max, leaf_depth, violations);
                path.pop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RTreeConfig, SplitMethod};
    use drtree_spatial::Rect;

    #[test]
    fn valid_tree_passes() {
        let mut tree: RTree<usize, 2> =
            RTree::new(RTreeConfig::new(2, 4, SplitMethod::Quadratic).unwrap());
        for i in 0..100 {
            let x = (i % 10) as f64;
            let y = (i / 10) as f64;
            tree.insert(i, Rect::new([x, y], [x + 0.5, y + 0.5]));
        }
        assert!(tree.validate().is_ok());
    }

    #[test]
    fn violation_display_is_informative() {
        let v = InvariantViolation::DegreeOutOfBounds {
            path: vec![0, 1],
            count: 9,
        };
        assert!(v.to_string().contains("9 entries"));
        let e = ValidationError {
            violations: vec![v],
        };
        assert!(e.to_string().contains("1 R-tree invariant"));
    }
}
