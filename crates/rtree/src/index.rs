//! The common interface of the crate's two spatial-index backends.

use drtree_spatial::{Point, Rect};

/// A key type storable in a flat-buffer index snapshot
/// ([`crate::PackedRTree::save`] / [`crate::PackedRTree::load`]): the
/// key round-trips losslessly through a `u64` word.
///
/// Implemented for the unsigned/signed machine integers. Foreign key
/// types (newtypes the orphan rule keeps out of this impl list) use
/// the closure-taking [`crate::PackedRTree::save_with`] /
/// [`crate::PackedRTree::load_with`] escape hatch instead.
pub trait SnapshotKey: Copy {
    /// The key's 64-bit wire form.
    fn to_raw(self) -> u64;
    /// Rebuilds a key from its wire form. `raw` always came from
    /// [`SnapshotKey::to_raw`] on a checksummed buffer, so the impl
    /// may assume round-trip inputs.
    fn from_raw(raw: u64) -> Self;
}

macro_rules! snapshot_key_ints {
    ($($t:ty),*) => {$(
        impl SnapshotKey for $t {
            #[inline]
            fn to_raw(self) -> u64 {
                self as u64
            }
            #[inline]
            fn from_raw(raw: u64) -> Self {
                raw as $t
            }
        }
    )*};
}

snapshot_key_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Read-side interface shared by the pointer-based [`crate::RTree`] and
/// the flat [`crate::PackedRTree`].
///
/// The primitive operations are *visitors*: hits are delivered through
/// a callback, so counting or testing matches allocates nothing. The
/// `Vec`-returning searches are derived conveniences for cold paths.
/// Consumers that only read (oracles, matching sets, audit passes)
/// should accept `impl SpatialIndex<K, D>` and let the caller pick the
/// backend.
pub trait SpatialIndex<K, const D: usize> {
    /// Number of stored entries.
    fn len(&self) -> usize;

    /// `true` if no entry is stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Visits every entry whose rectangle contains `point` — the exact
    /// matching set of an event.
    fn for_each_containing<'a, F>(&'a self, point: &Point<D>, visit: F)
    where
        F: FnMut(&'a K, &'a Rect<D>),
        K: 'a;

    /// Visits every entry whose rectangle intersects `window`.
    fn for_each_intersecting<'a, F>(&'a self, window: &Rect<D>, visit: F)
    where
        F: FnMut(&'a K, &'a Rect<D>),
        K: 'a;

    /// Visits, for each probe `points[i]`, every entry whose rectangle
    /// contains it, tagging hits with the probe index `i` — the
    /// batched form of [`SpatialIndex::for_each_containing`].
    ///
    /// The default implementation performs one independent visit per
    /// probe; backends may override it with a joint batch traversal
    /// (the packed backend descends the tree once per batch, see
    /// [`crate::PackedRTree::for_each_containing_batch`]). No emission
    /// order is guaranteed across probes.
    fn for_each_containing_batch<'a, F>(&'a self, points: &[Point<D>], mut visit: F)
    where
        F: FnMut(u32, &'a K, &'a Rect<D>),
        K: 'a,
    {
        for (i, point) in points.iter().enumerate() {
            self.for_each_containing(point, |k, r| visit(i as u32, k, r));
        }
    }

    /// Number of entries whose rectangle contains `point`, without
    /// materializing them.
    fn count_containing(&self, point: &Point<D>) -> usize {
        let mut count = 0;
        self.for_each_containing(point, |_, _| count += 1);
        count
    }
}
