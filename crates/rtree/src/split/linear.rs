//! Guttman's linear split: "chooses two children from the overflowing
//! node such that the union of their MBRs waste the most area and place
//! each one in a separate node. The remaining children are assigned to
//! the nodes whose MBR is increased the least by the addition. This
//! method takes linear time." (paper §3.2)
//!
//! Seed selection is Guttman's `LinearPickSeeds`: along every dimension,
//! find the rectangle with the highest low side and the one with the
//! lowest high side; normalize their separation by the extent of the
//! whole set along that dimension; take the pair with the greatest
//! normalized separation.

use drtree_spatial::Rect;

/// Splits `rects` into two groups of at least `m` indices each using the
/// linear method.
///
/// # Panics
///
/// Panics (in debug builds, via the caller `SplitMethod::split`) when
/// `rects.len() < 2m`; call through [`crate::SplitMethod::split`].
pub fn split_linear<const D: usize>(rects: &[Rect<D>], m: usize) -> (Vec<usize>, Vec<usize>) {
    let n = rects.len();
    let (seed_a, seed_b) = linear_pick_seeds(rects);
    let pending: Vec<usize> = (0..n).filter(|&i| i != seed_a && i != seed_b).collect();
    // Linear method examines remaining entries in arbitrary (input) order:
    // always pick the first pending entry.
    super::distribute(
        rects,
        m,
        vec![seed_a],
        vec![seed_b],
        pending,
        |_pending, _a, _b, _rects| 0,
    )
}

fn linear_pick_seeds<const D: usize>(rects: &[Rect<D>]) -> (usize, usize) {
    let n = rects.len();
    let mut best: Option<(f64, usize, usize)> = None;
    for dim in 0..D {
        // Entry with the highest low side, and entry with the lowest high
        // side (Guttman's "greatest normalized separation").
        let mut highest_low = 0usize;
        let mut lowest_high = 0usize;
        let mut overall_lo = f64::INFINITY;
        let mut overall_hi = f64::NEG_INFINITY;
        for (i, r) in rects.iter().enumerate() {
            if r.lo(dim) > rects[highest_low].lo(dim) {
                highest_low = i;
            }
            if r.hi(dim) < rects[lowest_high].hi(dim) {
                lowest_high = i;
            }
            overall_lo = overall_lo.min(r.lo(dim));
            overall_hi = overall_hi.max(r.hi(dim));
        }
        if highest_low == lowest_high {
            continue;
        }
        let width = (overall_hi - overall_lo).max(f64::MIN_POSITIVE);
        let separation = (rects[highest_low].lo(dim) - rects[lowest_high].hi(dim)) / width;
        if best.is_none_or(|(s, _, _)| separation > s) {
            best = Some((separation, lowest_high, highest_low));
        }
    }
    match best {
        Some((_, a, b)) => (a, b),
        // All candidate pairs collapsed to a single entry (e.g. identical
        // rectangles): any two distinct entries work.
        None => (0, n - 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_the_extreme_pair() {
        let rects = vec![
            Rect::new([0.0, 0.0], [1.0, 1.0]),   // far left
            Rect::new([4.0, 0.0], [5.0, 1.0]),   // middle
            Rect::new([10.0, 0.0], [11.0, 1.0]), // far right
        ];
        let (a, b) = linear_pick_seeds(&rects);
        let mut pair = [a, b];
        pair.sort_unstable();
        assert_eq!(pair, [0, 2]);
    }

    #[test]
    fn identical_rects_fall_back_to_distinct_seeds() {
        let rects = vec![Rect::new([0.0, 0.0], [1.0, 1.0]); 4];
        let (a, b) = linear_pick_seeds(&rects);
        assert_ne!(a, b);
    }

    #[test]
    fn split_partitions_all() {
        let rects: Vec<Rect<2>> = (0..7)
            .map(|i| {
                let x = i as f64 * 3.0;
                Rect::new([x, 0.0], [x + 1.0, 1.0])
            })
            .collect();
        let (a, b) = split_linear(&rects, 3);
        assert_eq!(a.len() + b.len(), 7);
        assert!(a.len() >= 3 && b.len() >= 3);
    }

    #[test]
    fn separation_normalized_across_dimensions() {
        // Along x everything overlaps; along y two groups are far apart.
        let rects = vec![
            Rect::new([0.0, 0.0], [10.0, 1.0]),
            Rect::new([0.0, 100.0], [10.0, 101.0]),
            Rect::new([0.0, 0.5], [10.0, 1.5]),
        ];
        let (a, b) = linear_pick_seeds(&rects);
        let mut pair = [a, b];
        pair.sort_unstable();
        assert_eq!(pair, [0, 1]);
    }
}
