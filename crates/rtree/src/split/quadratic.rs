//! Guttman's quadratic split: "chooses two children from the overflowing
//! node such that the union of their MBRs would waste the most area if
//! they were in the same node, and place each one in a separate node. The
//! remaining MBRs are examined and the one whose addition maximizes the
//! difference in coverage between the MBRs associated with each node is
//! added to the node whose coverage is minimized by the addition."
//! (paper §3.2)

use drtree_spatial::Rect;

/// Splits `rects` into two groups of at least `m` indices each using the
/// quadratic method.
pub fn split_quadratic<const D: usize>(rects: &[Rect<D>], m: usize) -> (Vec<usize>, Vec<usize>) {
    let n = rects.len();
    let (seed_a, seed_b) = quadratic_pick_seeds(rects);
    let pending: Vec<usize> = (0..n).filter(|&i| i != seed_a && i != seed_b).collect();
    super::distribute(
        rects,
        m,
        vec![seed_a],
        vec![seed_b],
        pending,
        pick_next_max_preference,
    )
}

/// `PickSeeds`: the pair wasting the most area if grouped together.
fn quadratic_pick_seeds<const D: usize>(rects: &[Rect<D>]) -> (usize, usize) {
    let n = rects.len();
    let mut best = (f64::NEG_INFINITY, 0, n - 1);
    for i in 0..n {
        for j in (i + 1)..n {
            let waste = rects[i].waste(&rects[j]);
            if waste > best.0 {
                best = (waste, i, j);
            }
        }
    }
    (best.1, best.2)
}

/// `PickNext`: the pending entry with the greatest preference for one
/// group, i.e. maximizing `|d1 − d2|` where `d_k` is the enlargement of
/// group `k`'s MBR needed to absorb it.
fn pick_next_max_preference<const D: usize>(
    pending: &[usize],
    mbr_a: &Rect<D>,
    mbr_b: &Rect<D>,
    rects: &[Rect<D>],
) -> usize {
    let mut best_pos = 0;
    let mut best_diff = f64::NEG_INFINITY;
    for (pos, &idx) in pending.iter().enumerate() {
        let d = (mbr_a.enlargement(&rects[idx]) - mbr_b.enlargement(&rects[idx])).abs();
        if d > best_diff {
            best_diff = d;
            best_pos = pos;
        }
    }
    best_pos
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_maximize_waste() {
        let rects = vec![
            Rect::new([0.0, 0.0], [1.0, 1.0]),
            Rect::new([0.5, 0.5], [1.5, 1.5]),
            Rect::new([50.0, 50.0], [51.0, 51.0]),
        ];
        let (a, b) = quadratic_pick_seeds(&rects);
        // the far-apart pair (0, 2) or (1, 2) wastes most; entry 2 must be
        // a seed either way
        assert!(a == 2 || b == 2);
    }

    #[test]
    fn splits_two_clusters_cleanly() {
        let mut rects = Vec::new();
        for i in 0..3 {
            let o = i as f64 * 0.1;
            rects.push(Rect::new([o, o], [o + 1.0, o + 1.0]));
        }
        for i in 0..2 {
            let o = 100.0 + i as f64 * 0.1;
            rects.push(Rect::new([o, o], [o + 1.0, o + 1.0]));
        }
        let (a, b) = split_quadratic(&rects, 2);
        let (cluster0, cluster1): (Vec<_>, Vec<_>) = (0..5).partition(|&i| i < 3);
        let mut a_sorted = a.clone();
        a_sorted.sort_unstable();
        let mut b_sorted = b.clone();
        b_sorted.sort_unstable();
        assert!(
            (a_sorted == cluster0 && b_sorted == cluster1)
                || (a_sorted == cluster1 && b_sorted == cluster0),
            "expected clean cluster separation, got {a:?} / {b:?}"
        );
    }

    #[test]
    fn respects_minimum_group_size() {
        // 5 rects in a line; m = 2 forces the small side to reach 2.
        let rects: Vec<Rect<2>> = (0..5)
            .map(|i| {
                let x = (i as f64).powi(2); // increasing gaps
                Rect::new([x, 0.0], [x + 0.5, 1.0])
            })
            .collect();
        let (a, b) = split_quadratic(&rects, 2);
        assert!(a.len() >= 2 && b.len() >= 2);
        assert_eq!(a.len() + b.len(), 5);
    }
}
