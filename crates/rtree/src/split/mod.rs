//! Children-set split methods (paper §3.2).
//!
//! When a node overflows (more than `M` children after an insertion), its
//! children set is divided "in two groups, each having at least m
//! elements". The paper supports three classical methods, all implemented
//! here over plain rectangle slices so that the centralized [`RTree`]
//! (this crate) and the distributed DR-tree (`drtree-core`) share the
//! exact same partitioning logic:
//!
//! * [`SplitMethod::Linear`] — Guttman's linear-time method: seeds with
//!   the greatest normalized separation, remaining entries assigned in
//!   order to the group "whose MBR is increased the least".
//! * [`SplitMethod::Quadratic`] — Guttman's quadratic-time method: the
//!   seed pair "would waste the most area if they were in the same node";
//!   each next entry maximizes the difference in enlargement.
//! * [`SplitMethod::RStar`] — the R\*-tree split of Beckmann et al.:
//!   choose the split axis by minimum margin sum, then the distribution
//!   with minimum overlap (ties: minimum total area).
//!
//! All methods guarantee both groups hold at least `m` entries whenever
//! the input holds at least `2m`.
//!
//! [`RTree`]: crate::RTree

mod linear;
mod quadratic;
mod rstar;

use drtree_spatial::Rect;

pub use linear::split_linear;
pub use quadratic::split_quadratic;
pub use rstar::split_rstar;

/// Selects one of the three split algorithms of §3.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SplitMethod {
    /// Guttman's linear method (fastest, coarsest grouping).
    Linear,
    /// Guttman's quadratic method (the paper's default illustration).
    #[default]
    Quadratic,
    /// The R\*-tree topological split (minimizes margin, then overlap).
    RStar,
}

impl SplitMethod {
    /// Partitions `rects` into two index groups, each of size ≥ `m`.
    ///
    /// Returns `(left, right)` where `left` contains the index of the
    /// first seed (for the Guttman methods) or the lower distribution
    /// (R\*). Every input index appears in exactly one group.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `rects.len() < 2m` — callers (tree insertion
    /// and the DR-tree split module) only split overflowing sets, which
    /// always satisfy this.
    pub fn split<const D: usize>(&self, rects: &[Rect<D>], m: usize) -> (Vec<usize>, Vec<usize>) {
        assert!(m >= 1, "split requires m >= 1");
        assert!(
            rects.len() >= 2 * m,
            "split requires at least 2m entries (got {} with m = {m})",
            rects.len()
        );
        let (a, b) = match self {
            SplitMethod::Linear => split_linear(rects, m),
            SplitMethod::Quadratic => split_quadratic(rects, m),
            SplitMethod::RStar => split_rstar(rects, m),
        };
        debug_assert!(a.len() >= m && b.len() >= m);
        debug_assert_eq!(a.len() + b.len(), rects.len());
        (a, b)
    }

    /// All split methods, for parameter sweeps in benches and tests.
    pub const ALL: [SplitMethod; 3] = [
        SplitMethod::Linear,
        SplitMethod::Quadratic,
        SplitMethod::RStar,
    ];
}

impl std::fmt::Display for SplitMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SplitMethod::Linear => "linear",
            SplitMethod::Quadratic => "quadratic",
            SplitMethod::RStar => "r-star",
        };
        f.write_str(s)
    }
}

/// Assigns the remaining (non-seed) entries for the Guttman methods.
///
/// `pick_next` selects which pending entry to place next; entries then go
/// to the group needing the least enlargement (ties: smaller area, then
/// fewer entries, as in Guttman's paper). When a group must absorb all
/// remaining entries to reach `m`, they are force-assigned.
fn distribute<const D: usize>(
    rects: &[Rect<D>],
    m: usize,
    mut group_a: Vec<usize>,
    mut group_b: Vec<usize>,
    mut pending: Vec<usize>,
    mut pick_next: impl FnMut(&[usize], &Rect<D>, &Rect<D>, &[Rect<D>]) -> usize,
) -> (Vec<usize>, Vec<usize>) {
    let mut mbr_a = Rect::union_all(group_a.iter().map(|&i| &rects[i])).expect("seed a");
    let mut mbr_b = Rect::union_all(group_b.iter().map(|&i| &rects[i])).expect("seed b");
    while !pending.is_empty() {
        // Force-assignment: one group must take everything left to reach m.
        if group_a.len() + pending.len() == m {
            group_a.append(&mut pending);
            break;
        }
        if group_b.len() + pending.len() == m {
            group_b.append(&mut pending);
            break;
        }
        let pos = pick_next(&pending, &mbr_a, &mbr_b, rects);
        let idx = pending.swap_remove(pos);
        let r = &rects[idx];
        let grow_a = mbr_a.enlargement(r);
        let grow_b = mbr_b.enlargement(r);
        let to_a = match grow_a.partial_cmp(&grow_b).expect("finite enlargement") {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => match mbr_a.area().partial_cmp(&mbr_b.area()) {
                Some(std::cmp::Ordering::Less) => true,
                Some(std::cmp::Ordering::Greater) => false,
                _ => group_a.len() <= group_b.len(),
            },
        };
        if to_a {
            group_a.push(idx);
            mbr_a.enlarge_to_cover(r);
        } else {
            group_b.push(idx);
            mbr_b.enlarge_to_cover(r);
        }
    }
    (group_a, group_b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use drtree_spatial::Rect;

    fn unit_grid(n: usize) -> Vec<Rect<2>> {
        (0..n)
            .map(|i| {
                let x = (i % 10) as f64 * 2.0;
                let y = (i / 10) as f64 * 2.0;
                Rect::new([x, y], [x + 1.0, y + 1.0])
            })
            .collect()
    }

    #[test]
    fn all_methods_respect_bounds() {
        for method in SplitMethod::ALL {
            for n in [4usize, 5, 7, 9, 12] {
                for m in 1..=n / 2 {
                    let rects = unit_grid(n);
                    let (a, b) = method.split(&rects, m);
                    assert!(a.len() >= m, "{method} n={n} m={m}");
                    assert!(b.len() >= m, "{method} n={n} m={m}");
                    let mut all: Vec<usize> = a.iter().chain(b.iter()).copied().collect();
                    all.sort_unstable();
                    assert_eq!(all, (0..n).collect::<Vec<_>>(), "{method} partition");
                }
            }
        }
    }

    #[test]
    fn identical_rects_split_evenly_enough() {
        let rects = vec![Rect::new([0.0, 0.0], [1.0, 1.0]); 5];
        for method in SplitMethod::ALL {
            let (a, b) = method.split(&rects, 2);
            assert!(a.len() >= 2 && b.len() >= 2);
        }
    }

    #[test]
    fn two_clusters_are_separated() {
        // Two far-apart clusters: every method should separate them.
        let mut rects = Vec::new();
        for i in 0..3 {
            let o = i as f64;
            rects.push(Rect::new([o, 0.0], [o + 0.5, 0.5]));
        }
        for i in 0..3 {
            let o = 100.0 + i as f64;
            rects.push(Rect::new([o, 0.0], [o + 0.5, 0.5]));
        }
        for method in SplitMethod::ALL {
            let (a, b) = method.split(&rects, 2);
            let in_left = |i: &usize| *i < 3;
            let a_left = a.iter().filter(|i| in_left(i)).count();
            let b_left = b.iter().filter(|i| in_left(i)).count();
            // one group holds (almost) all of one cluster
            assert!(
                a_left == 0 || b_left == 0 || a_left == a.len() || b_left == b.len(),
                "{method}: clusters mixed: {a:?} / {b:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least 2m")]
    fn too_few_entries_panics() {
        let rects = unit_grid(3);
        let _ = SplitMethod::Quadratic.split(&rects, 2);
    }

    #[test]
    fn display_names() {
        assert_eq!(SplitMethod::Linear.to_string(), "linear");
        assert_eq!(SplitMethod::Quadratic.to_string(), "quadratic");
        assert_eq!(SplitMethod::RStar.to_string(), "r-star");
    }
}
