//! The R\*-tree split of Beckmann, Kriegel, Schneider and Seeger (SIGMOD
//! 1990 — reference [5] of the paper): "attempts to reduce not only the
//! coverage, but also the overlap."
//!
//! Axis choice (`ChooseSplitAxis`): for every dimension, sort the entries
//! by lower and by upper bound and enumerate all legal distributions
//! (first `m−1+k` entries vs. the rest); the axis with the minimum sum of
//! group margins wins. Distribution choice (`ChooseSplitIndex`): along
//! the chosen axis, minimize the overlap between the two group MBRs,
//! breaking ties by minimum total area.
//!
//! The R\*-tree's *forced reinsertion* is a feature of tree insertion,
//! not of the split itself; the centralized [`crate::RTree`] implements
//! it behind [`crate::RTree::set_reinsertion`] while the distributed
//! DR-tree realizes the same idea through its rejoin machinery
//! (`INITIATE_NEW_CONNECTION`).

use drtree_spatial::Rect;

/// Splits `rects` into two groups of at least `m` indices each using the
/// R\*-tree topological split.
pub fn split_rstar<const D: usize>(rects: &[Rect<D>], m: usize) -> (Vec<usize>, Vec<usize>) {
    let n = rects.len();
    debug_assert!(n >= 2 * m);

    let mut best_axis = 0usize;
    let mut best_axis_margin = f64::INFINITY;
    for dim in 0..D {
        let mut margin_sum = 0.0;
        for order in [sorted_by_lo(rects, dim), sorted_by_hi(rects, dim)] {
            for split_at in splits(n, m) {
                let (la, lb) = group_mbrs(rects, &order, split_at);
                margin_sum += la.margin() + lb.margin();
            }
        }
        if margin_sum < best_axis_margin {
            best_axis_margin = margin_sum;
            best_axis = dim;
        }
    }

    let mut best: Option<(f64, f64, Vec<usize>, usize)> = None;
    for order in [
        sorted_by_lo(rects, best_axis),
        sorted_by_hi(rects, best_axis),
    ] {
        for split_at in splits(n, m) {
            let (la, lb) = group_mbrs(rects, &order, split_at);
            let overlap = la.overlap_area(&lb);
            let total_area = la.area() + lb.area();
            let better = match &best {
                None => true,
                Some((bo, ba, _, _)) => overlap < *bo || (overlap == *bo && total_area < *ba),
            };
            if better {
                best = Some((overlap, total_area, order.clone(), split_at));
            }
        }
    }
    let (_, _, order, split_at) = best.expect("at least one distribution exists");
    (order[..split_at].to_vec(), order[split_at..].to_vec())
}

/// Legal first-group sizes: `m − 1 + k` for `k = 1 ..= n − 2m + 1`.
fn splits(n: usize, m: usize) -> impl Iterator<Item = usize> {
    m..=(n - m)
}

fn sorted_by_lo<const D: usize>(rects: &[Rect<D>], dim: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..rects.len()).collect();
    idx.sort_by(|&a, &b| {
        rects[a]
            .lo(dim)
            .partial_cmp(&rects[b].lo(dim))
            .expect("non-NaN bounds")
            .then(
                rects[a]
                    .hi(dim)
                    .partial_cmp(&rects[b].hi(dim))
                    .expect("non-NaN bounds"),
            )
    });
    idx
}

fn sorted_by_hi<const D: usize>(rects: &[Rect<D>], dim: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..rects.len()).collect();
    idx.sort_by(|&a, &b| {
        rects[a]
            .hi(dim)
            .partial_cmp(&rects[b].hi(dim))
            .expect("non-NaN bounds")
            .then(
                rects[a]
                    .lo(dim)
                    .partial_cmp(&rects[b].lo(dim))
                    .expect("non-NaN bounds"),
            )
    });
    idx
}

fn group_mbrs<const D: usize>(
    rects: &[Rect<D>],
    order: &[usize],
    split_at: usize,
) -> (Rect<D>, Rect<D>) {
    let a = Rect::union_all(order[..split_at].iter().map(|&i| &rects[i]))
        .expect("left group non-empty");
    let b = Rect::union_all(order[split_at..].iter().map(|&i| &rects[i]))
        .expect("right group non-empty");
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_iterator_covers_legal_range() {
        // n = 5, m = 2 → first group sizes 2 and 3
        assert_eq!(splits(5, 2).collect::<Vec<_>>(), vec![2, 3]);
        // n = 4, m = 2 → only the even split
        assert_eq!(splits(4, 2).collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn separates_overlap_free_when_possible() {
        // Two columns of rects: a vertical split has zero overlap.
        let mut rects = Vec::new();
        for i in 0..3 {
            let y = i as f64 * 2.0;
            rects.push(Rect::new([0.0, y], [1.0, y + 1.0])); // left column
            rects.push(Rect::new([10.0, y], [11.0, y + 1.0])); // right column
        }
        let (a, b) = split_rstar(&rects, 2);
        let (la, lb) = (
            Rect::union_all(a.iter().map(|&i| &rects[i])).unwrap(),
            Rect::union_all(b.iter().map(|&i| &rects[i])).unwrap(),
        );
        assert_eq!(la.overlap_area(&lb), 0.0);
    }

    #[test]
    fn picks_axis_with_better_structure() {
        // Entries form two groups separated along y; x extents are wild.
        let rects = vec![
            Rect::new([0.0, 0.0], [9.0, 1.0]),
            Rect::new([1.0, 0.2], [10.0, 1.2]),
            Rect::new([0.5, 100.0], [9.5, 101.0]),
            Rect::new([1.5, 100.2], [10.5, 101.2]),
        ];
        let (a, b) = split_rstar(&rects, 2);
        let mut a_sorted = a.clone();
        a_sorted.sort_unstable();
        let mut b_sorted = b.clone();
        b_sorted.sort_unstable();
        assert!(
            (a_sorted == vec![0, 1] && b_sorted == vec![2, 3])
                || (a_sorted == vec![2, 3] && b_sorted == vec![0, 1]),
            "expected y-axis separation, got {a:?}/{b:?}"
        );
    }

    #[test]
    fn group_sizes_respect_m() {
        let rects: Vec<Rect<2>> = (0..9)
            .map(|i| {
                let x = i as f64;
                Rect::new([x, 0.0], [x + 2.0, 1.0])
            })
            .collect();
        for m in 1..=4 {
            let (a, b) = split_rstar(&rects, m);
            assert!(a.len() >= m && b.len() >= m);
            assert_eq!(a.len() + b.len(), 9);
        }
    }
}
