//! Scoped-thread fan-out over independent index shards, and detached
//! background jobs for off-path maintenance.
//!
//! A sharded oracle answers one logical query by running the same
//! probe (or probe batch) against `K` independent [`SpatialIndex`]
//! shards and merging the hits. The shards are disjoint data, so the
//! fan is embarrassingly parallel; what needs care is the plumbing —
//! each worker must own a distinct result buffer (no locks on the hot
//! path) and borrowed shards must outlive the workers. [`fan`] wraps
//! exactly that plumbing around [`std::thread::scope`], degrading to a
//! plain inline loop when only one worker is available or useful, so
//! callers write one code path for both the single-core and the
//! many-core case.
//!
//! [`Job`] is the second primitive: a one-shot background task owning
//! its input (e.g. a frozen [`PackedRTree`] snapshot being merged),
//! polled with [`Job::is_finished`] and harvested with [`Job::join`].
//! It is what keeps shard compaction off the publish path — the
//! caller freezes a snapshot, hands it to a job, and keeps serving
//! reads until the merged result is ready to swap in.
//!
//! [`Worker`] is the third: a *long-lived* actor thread owning a piece
//! of mutable state and executing submitted closures against it in
//! strict FIFO order. Where a [`Job`] runs one computation and dies, a
//! `Worker` serializes an open-ended command stream — the shape a
//! concurrent broker commit loop needs, where many producers hand work
//! to exactly one owner of the index without any lock around the state
//! itself.
//!
//! [`SpatialIndex`]: crate::SpatialIndex
//! [`PackedRTree`]: crate::PackedRTree

use std::fmt;
use std::num::NonZeroUsize;
use std::sync::mpsc;
use std::thread::JoinHandle;

/// Number of hardware threads worth fanning across (≥ 1); the default
/// worker budget of sharded consumers.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `work(i, &shards[i], &mut bufs[i])` for every shard, spread
/// across at most `max_threads` scoped worker threads.
///
/// Shards are split into contiguous chunks, one worker per chunk, so
/// spawn overhead is bounded by the worker count, not the shard count.
/// With `max_threads <= 1` or a single shard the fan runs inline on
/// the calling thread — same semantics, zero spawn cost. Buffers are
/// handed to workers by disjoint `&mut`, so no synchronization exists
/// beyond the scope join itself.
///
/// # Panics
///
/// Panics if `shards` and `bufs` differ in length, or if a worker
/// panics (the panic is propagated by the scope join).
pub fn fan<S, B, F>(shards: &[S], bufs: &mut [B], max_threads: usize, work: F)
where
    S: Sync,
    B: Send,
    F: Fn(usize, &S, &mut B) + Sync,
{
    assert_eq!(
        shards.len(),
        bufs.len(),
        "one result buffer per shard is required"
    );
    let workers = max_threads.min(shards.len()).max(1);
    if workers <= 1 {
        for (i, (shard, buf)) in shards.iter().zip(bufs.iter_mut()).enumerate() {
            work(i, shard, buf);
        }
        return;
    }
    let per_worker = shards.len().div_ceil(workers);
    std::thread::scope(|scope| {
        for (chunk, (shard_chunk, buf_chunk)) in shards
            .chunks(per_worker)
            .zip(bufs.chunks_mut(per_worker))
            .enumerate()
        {
            let work = &work;
            scope.spawn(move || {
                for (j, (shard, buf)) in shard_chunk.iter().zip(buf_chunk.iter_mut()).enumerate() {
                    work(chunk * per_worker + j, shard, buf);
                }
            });
        }
    });
}

/// A one-shot background task producing a `T`.
///
/// Two flavors share the interface: [`Job::spawn`] runs the closure on
/// a dedicated OS thread (the concurrent-compaction path), while
/// [`Job::ready`] wraps an already-computed value (the synchronous
/// fallback, so callers keep one code path whether the work ran inline
/// or off-thread).
///
/// Dropping an unjoined spawned job detaches the thread: the work
/// finishes on its own and the result is discarded — the semantics an
/// owner wants when a rebalance supersedes an in-flight merge.
pub struct Job<T> {
    inner: JobInner<T>,
}

enum JobInner<T> {
    Spawned(JoinHandle<T>),
    Ready(T),
}

impl<T: Send + 'static> Job<T> {
    /// Runs `work` on a new background thread.
    pub fn spawn<F>(work: F) -> Self
    where
        F: FnOnce() -> T + Send + 'static,
    {
        Self {
            inner: JobInner::Spawned(std::thread::spawn(work)),
        }
    }

    /// A job that completed at construction — the inline fallback.
    pub fn ready(value: T) -> Self {
        Self {
            inner: JobInner::Ready(value),
        }
    }

    /// `true` once [`Job::join`] would return without blocking.
    pub fn is_finished(&self) -> bool {
        match &self.inner {
            JobInner::Spawned(handle) => handle.is_finished(),
            JobInner::Ready(_) => true,
        }
    }

    /// Blocks until the work completes and returns its result.
    ///
    /// # Panics
    ///
    /// Propagates a panic from the worker thread.
    pub fn join(self) -> T {
        match self.inner {
            JobInner::Spawned(handle) => handle
                .join()
                .unwrap_or_else(|payload| std::panic::resume_unwind(payload)),
            JobInner::Ready(value) => value,
        }
    }
}

impl<T> fmt::Debug for Job<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            JobInner::Spawned(handle) => f
                .debug_struct("Job")
                .field("finished", &handle.is_finished())
                .finish(),
            JobInner::Ready(_) => f.debug_struct("Job").field("finished", &true).finish(),
        }
    }
}

/// A message consumed by a [`Worker`] thread: a command to run against
/// the owned state, or the stop sentinel sent by [`Worker::join`].
enum Command<T> {
    Run(Box<dyn FnOnce(&mut T) + Send + 'static>),
    Stop,
}

/// A long-lived actor thread owning a mutable state `T`.
///
/// Commands submitted through the worker (or any [`WorkerHandle`]
/// clone) run one at a time, in submission order, on the worker's
/// dedicated thread — the state needs no lock because exactly one
/// thread ever touches it. [`Worker::join`] enqueues a stop sentinel
/// and waits: everything submitted *before* the join runs to
/// completion, the final state comes back, and commands that race in
/// after the sentinel are dropped unrun (their `submit` may still
/// report success — a caller needing a receipt should get it from the
/// command itself). Shutdown therefore cannot deadlock on surviving
/// handles, including handles stored inside the state itself, the
/// shape a self-pumping commit loop uses.
///
/// This is the serialization primitive behind concurrent broker
/// ingress: many publisher threads enqueue, one worker owns the index.
pub struct Worker<T> {
    tx: mpsc::Sender<Command<T>>,
    handle: JoinHandle<T>,
}

/// A clonable submission endpoint for a [`Worker`].
///
/// Handles stay valid after the worker is gone; [`WorkerHandle::submit`]
/// then reports failure instead of panicking, so shutdown races are a
/// return value rather than a crash.
pub struct WorkerHandle<T> {
    tx: mpsc::Sender<Command<T>>,
}

impl<T> Clone for WorkerHandle<T> {
    fn clone(&self) -> Self {
        Self {
            tx: self.tx.clone(),
        }
    }
}

impl<T> fmt::Debug for WorkerHandle<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerHandle").finish_non_exhaustive()
    }
}

impl<T: Send + 'static> Worker<T> {
    /// Spawns the actor thread, handing it ownership of `state`.
    pub fn spawn(state: T) -> Self {
        let (tx, rx) = mpsc::channel::<Command<T>>();
        let handle = std::thread::spawn(move || {
            let mut state = state;
            while let Ok(cmd) = rx.recv() {
                match cmd {
                    Command::Run(cmd) => cmd(&mut state),
                    Command::Stop => break,
                }
            }
            state
        });
        Self { tx, handle }
    }

    /// Enqueues `cmd` to run against the state after all previously
    /// submitted commands.
    ///
    /// # Panics
    ///
    /// Panics if the worker thread has died (i.e. a previous command
    /// panicked) — submitting to a dead owner is a logic error here,
    /// unlike on a [`WorkerHandle`] where shutdown races are expected.
    pub fn submit<F>(&self, cmd: F)
    where
        F: FnOnce(&mut T) + Send + 'static,
    {
        self.tx
            .send(Command::Run(Box::new(cmd)))
            .expect("worker thread died with commands outstanding");
    }

    /// A clonable endpoint other threads can submit through.
    pub fn handle(&self) -> WorkerHandle<T> {
        WorkerHandle {
            tx: self.tx.clone(),
        }
    }

    /// Runs every command submitted before this call, stops the actor,
    /// and returns the final state.
    ///
    /// Commands racing in after the stop sentinel are dropped unrun;
    /// surviving [`WorkerHandle`] clones keep failing over to
    /// `submit() == false` once the thread exits.
    ///
    /// # Panics
    ///
    /// Propagates a panic from a command closure.
    pub fn join(self) -> T {
        // A send can only fail if the thread already died, in which
        // case the join below surfaces its panic.
        let _ = self.tx.send(Command::Stop);
        self.handle
            .join()
            .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
    }
}

impl<T> WorkerHandle<T> {
    /// Enqueues `cmd`, returning `false` if the worker is gone.
    ///
    /// A `true` return means the command was queued, not that it will
    /// run: a concurrent [`Worker::join`] may drop it. Receipts belong
    /// in the command itself.
    pub fn submit<F>(&self, cmd: F) -> bool
    where
        F: FnOnce(&mut T) + Send + 'static,
    {
        self.tx.send(Command::Run(Box::new(cmd))).is_ok()
    }
}

impl<T> fmt::Debug for Worker<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Worker")
            .field("finished", &self.handle.is_finished())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fan_visits_every_shard_exactly_once() {
        for max_threads in [1usize, 2, 3, 16] {
            let shards: Vec<usize> = (0..7).collect();
            let mut bufs: Vec<Vec<usize>> = vec![Vec::new(); shards.len()];
            fan(&shards, &mut bufs, max_threads, |i, &shard, buf| {
                assert_eq!(i, shard, "index must match shard position");
                buf.push(shard * 10);
            });
            let got: Vec<Vec<usize>> = bufs;
            let want: Vec<Vec<usize>> = (0..7).map(|i| vec![i * 10]).collect();
            assert_eq!(got, want, "max_threads={max_threads}");
        }
    }

    #[test]
    fn fan_handles_empty_and_singleton() {
        let shards: [u8; 0] = [];
        let mut bufs: [u8; 0] = [];
        fan(&shards, &mut bufs, 4, |_, _, _| unreachable!());
        let mut one = [0u32];
        fan(&[5u32], &mut one, 4, |_, &s, b| *b = s + 1);
        assert_eq!(one[0], 6);
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }

    #[test]
    fn jobs_run_and_join() {
        let spawned = Job::spawn(|| (0..100u64).sum::<u64>());
        let ready = Job::ready(4950u64);
        assert!(ready.is_finished());
        assert_eq!(spawned.join(), 4950);
        assert_eq!(ready.join(), 4950);
    }

    #[test]
    fn dropping_a_job_detaches_it() {
        let job = Job::spawn(|| 7u32);
        drop(job); // must not block or panic; the thread finishes alone
    }

    #[test]
    #[should_panic(expected = "worker exploded")]
    fn join_propagates_worker_panics() {
        let job: Job<()> = Job::spawn(|| panic!("worker exploded"));
        job.join();
    }

    #[test]
    fn worker_runs_commands_in_fifo_order() {
        let worker = Worker::spawn(Vec::<u32>::new());
        for i in 0..100u32 {
            worker.submit(move |v| v.push(i));
        }
        let state = worker.join();
        assert_eq!(state, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn worker_handles_submit_from_many_threads() {
        let worker = Worker::spawn(0u64);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let handle = worker.handle();
                scope.spawn(move || {
                    for _ in 0..250 {
                        assert!(handle.submit(|n| *n += 1));
                    }
                });
            }
        });
        assert_eq!(worker.join(), 1000);
    }

    #[test]
    fn worker_join_drains_outstanding_commands() {
        let worker = Worker::spawn(0u32);
        worker.submit(|n| {
            std::thread::sleep(std::time::Duration::from_millis(20));
            *n += 1;
        });
        for _ in 0..50 {
            worker.submit(|n| *n += 1);
        }
        // join must not drop the 50 queued commands behind the sleeper.
        assert_eq!(worker.join(), 51);
    }

    #[test]
    fn worker_handle_reports_shutdown_instead_of_panicking() {
        let worker = Worker::spawn(());
        let handle = worker.handle();
        worker.join();
        assert!(!handle.submit(|()| {}));
    }

    #[test]
    fn worker_commands_can_resubmit_through_a_handle() {
        // A command that reschedules itself through the handle — the
        // self-pumping shape the ingress commit loop uses.
        let worker = Worker::spawn(0u32);
        let handle = worker.handle();
        fn pump(n: &mut u32, handle: &WorkerHandle<u32>) {
            *n += 1;
            if *n < 5 {
                let again = handle.clone();
                handle.submit(move |n| pump(n, &again));
            }
        }
        let h2 = handle.clone();
        handle.submit(move |n| pump(n, &h2));
        // Wait until the chain has finished, then stop the actor. The
        // surviving `handle` must not deadlock the join.
        let (done_tx, done_rx) = std::sync::mpsc::channel::<u32>();
        loop {
            let tx = done_tx.clone();
            assert!(handle.submit(move |n| {
                let _ = tx.send(*n);
            }));
            if done_rx.recv() == Ok(5) {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(worker.join(), 5);
    }
}
