//! Scoped-thread fan-out over independent index shards.
//!
//! A sharded oracle answers one logical query by running the same
//! probe (or probe batch) against `K` independent [`SpatialIndex`]
//! shards and merging the hits. The shards are disjoint data, so the
//! fan is embarrassingly parallel; what needs care is the plumbing —
//! each worker must own a distinct result buffer (no locks on the hot
//! path) and borrowed shards must outlive the workers. [`fan`] wraps
//! exactly that plumbing around [`std::thread::scope`], degrading to a
//! plain inline loop when only one worker is available or useful, so
//! callers write one code path for both the single-core and the
//! many-core case.
//!
//! [`SpatialIndex`]: crate::SpatialIndex

use std::num::NonZeroUsize;

/// Number of hardware threads worth fanning across (≥ 1); the default
/// worker budget of sharded consumers.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `work(i, &shards[i], &mut bufs[i])` for every shard, spread
/// across at most `max_threads` scoped worker threads.
///
/// Shards are split into contiguous chunks, one worker per chunk, so
/// spawn overhead is bounded by the worker count, not the shard count.
/// With `max_threads <= 1` or a single shard the fan runs inline on
/// the calling thread — same semantics, zero spawn cost. Buffers are
/// handed to workers by disjoint `&mut`, so no synchronization exists
/// beyond the scope join itself.
///
/// # Panics
///
/// Panics if `shards` and `bufs` differ in length, or if a worker
/// panics (the panic is propagated by the scope join).
pub fn fan<S, B, F>(shards: &[S], bufs: &mut [B], max_threads: usize, work: F)
where
    S: Sync,
    B: Send,
    F: Fn(usize, &S, &mut B) + Sync,
{
    assert_eq!(
        shards.len(),
        bufs.len(),
        "one result buffer per shard is required"
    );
    let workers = max_threads.min(shards.len()).max(1);
    if workers <= 1 {
        for (i, (shard, buf)) in shards.iter().zip(bufs.iter_mut()).enumerate() {
            work(i, shard, buf);
        }
        return;
    }
    let per_worker = shards.len().div_ceil(workers);
    std::thread::scope(|scope| {
        for (chunk, (shard_chunk, buf_chunk)) in shards
            .chunks(per_worker)
            .zip(bufs.chunks_mut(per_worker))
            .enumerate()
        {
            let work = &work;
            scope.spawn(move || {
                for (j, (shard, buf)) in shard_chunk.iter().zip(buf_chunk.iter_mut()).enumerate() {
                    work(chunk * per_worker + j, shard, buf);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fan_visits_every_shard_exactly_once() {
        for max_threads in [1usize, 2, 3, 16] {
            let shards: Vec<usize> = (0..7).collect();
            let mut bufs: Vec<Vec<usize>> = vec![Vec::new(); shards.len()];
            fan(&shards, &mut bufs, max_threads, |i, &shard, buf| {
                assert_eq!(i, shard, "index must match shard position");
                buf.push(shard * 10);
            });
            let got: Vec<Vec<usize>> = bufs;
            let want: Vec<Vec<usize>> = (0..7).map(|i| vec![i * 10]).collect();
            assert_eq!(got, want, "max_threads={max_threads}");
        }
    }

    #[test]
    fn fan_handles_empty_and_singleton() {
        let shards: [u8; 0] = [];
        let mut bufs: [u8; 0] = [];
        fan(&shards, &mut bufs, 4, |_, _, _| unreachable!());
        let mut one = [0u32];
        fan(&[5u32], &mut one, 4, |_, &s, b| *b = s + 1);
        assert_eq!(one[0], 6);
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }
}
