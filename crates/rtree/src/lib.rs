//! Centralized R-tree substrate for the DR-tree reproduction.
//!
//! The DR-tree of the paper distributes the classical R-tree index
//! structure (Guttman, SIGMOD 1984 — reference \[18\] of the paper). This
//! crate provides:
//!
//! * [`RTree`] — a complete centralized R-tree (insert, delete, point and
//!   window queries), used as the *exact-matching oracle* when measuring
//!   false positives/negatives of the distributed overlays, and as a
//!   baseline index;
//! * [`split`] — the three children-set split methods the paper supports
//!   (§3.2): Guttman's **linear** and **quadratic** methods and the
//!   **R\*-tree** split of Beckmann et al. (reference \[5\]). The split
//!   functions are shared verbatim with the distributed DR-tree protocol
//!   (`drtree-core`), so both trees split children sets identically.
//!
//! # Example
//!
//! ```
//! use drtree_rtree::{RTree, RTreeConfig, SplitMethod};
//! use drtree_spatial::{Rect, Point};
//!
//! let config = RTreeConfig::new(2, 4, SplitMethod::Quadratic)?;
//! let mut tree: RTree<&str, 2> = RTree::new(config);
//! tree.insert("sub-1", Rect::new([0.0, 0.0], [10.0, 10.0]));
//! tree.insert("sub-2", Rect::new([5.0, 5.0], [6.0, 6.0]));
//!
//! let hits = tree.search_point(&drtree_spatial::Point::new([5.5, 5.5]));
//! assert_eq!(hits.len(), 2);
//! tree.validate()?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bulk;
mod config;
pub mod split;
mod tree;
mod validate;

pub use config::{ConfigError, RTreeConfig};
pub use split::SplitMethod;
pub use tree::RTree;
pub use validate::{InvariantViolation, ValidationError};
