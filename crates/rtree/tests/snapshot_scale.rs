//! Release-only scale test: a 500k-entry snapshot must round-trip
//! byte-exactly and serve queries immediately after `load`, on both
//! the exact layout and the quantized/aligned hot layout. CI runs this
//! via `cargo test --release -p drtree-rtree`; under a debug build the
//! bulk load alone would dominate the suite, so it is ignored there.

use drtree_rtree::{PackedRTree, SnapshotOptions};
use drtree_spatial::{Point, Rect};

const N: usize = 500_000;

/// Deterministic workload: a jittered grid of small boxes, the same
/// shape the `scale` bench uses, so coverage matches what we gate on.
fn entries() -> Vec<(usize, Rect<2>)> {
    let side = (N as f64).sqrt().ceil() as usize;
    (0..N)
        .map(|i| {
            let x = (i % side) as f64;
            let y = (i / side) as f64;
            // Cheap LCG jitter keeps rectangles off the exact lattice.
            let j = ((i as u64)
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407)
                >> 33) as f64
                / (1u64 << 31) as f64;
            let w = 0.3 + 0.4 * j;
            (i, Rect::new([x, y], [x + w, y + w]))
        })
        .collect()
}

fn probe_points() -> Vec<Point<2>> {
    let side = (N as f64).sqrt().ceil();
    (0..64)
        .map(|i| {
            let t = i as f64 / 64.0;
            Point::new([t * side, (1.0 - t) * side])
        })
        .collect()
}

fn round_trip(options: SnapshotOptions) {
    let mut tree = PackedRTree::bulk_load(entries());
    // Leave the delta layer non-empty: stage a band of fresh entries
    // and tombstone a band of packed ones, so the snapshot carries all
    // three sections (core, staged, tombstones).
    let all = entries();
    for (i, (_, rect)) in all.iter().take(1_000).enumerate() {
        tree.stage_insert(N + i, *rect);
    }
    for (key, rect) in all.iter().skip(1_000).take(1_000) {
        assert!(tree.remove_entry(key, rect).is_some(), "tombstone {key}");
    }
    let live = tree.len();

    let bytes = tree.save_with_options(options);
    let restored = PackedRTree::<usize, 2>::load(bytes.clone()).expect("snapshot loads");
    assert_eq!(restored.len(), live);
    restored.verify_snapshot().expect("bulk checksum verifies");
    restored.validate().expect("restored tree validates");

    // The eager path must agree with the deferred path.
    let eager = PackedRTree::<usize, 2>::load_verified(bytes).expect("eager load verifies");
    assert_eq!(eager.len(), live);

    let mut hits = 0usize;
    for point in probe_points() {
        let mut want: Vec<usize> = tree.search_point(&point).into_iter().copied().collect();
        want.sort_unstable();
        let mut got: Vec<usize> = restored.search_point(&point).into_iter().copied().collect();
        got.sort_unstable();
        assert_eq!(got, want, "restored diverged at {point:?}");
        hits += want.len();
    }
    assert!(hits > 0, "probe set never hit an entry");
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "500k bulk load is release-only; run with `cargo test --release`"
)]
fn five_hundred_k_snapshot_round_trips_on_both_layouts() {
    round_trip(SnapshotOptions::default());
    round_trip(SnapshotOptions {
        quantize_interior: true,
        aligned_fanout: true,
    });
}
