//! Mobility-path tests for the packed tree: `update_entry` absorbs
//! moves as delta patches — in place while the new rectangle stays in
//! the slot's leaf subtree, tombstone + re-stage when it escapes, a
//! staged rewrite for delta-tier entries — TTL lease records follow
//! every move and are swept at compaction, and `validate()` catches a
//! stale curve key left behind by a corrupted in-place move.

use drtree_rtree::{DeltaRemoval, EntryUpdate, PackedRTree, PackedValidationError};
use drtree_spatial::{Point, Rect};
use proptest::prelude::*;
use proptest::strategy::Just;

/// A 16×16 grid of 5×5 rectangles — big enough for a multi-level
/// packed tree, regular enough to reason about containment.
fn grid_entries() -> Vec<(usize, Rect<2>)> {
    let mut entries = Vec::new();
    for i in 0..16 {
        for j in 0..16 {
            let (x, y) = (i as f64 * 10.0, j as f64 * 10.0);
            entries.push((i * 16 + j, Rect::new([x, y], [x + 5.0, y + 5.0])));
        }
    }
    entries
}

fn center(rect: &Rect<2>) -> Point<2> {
    Point::new(*rect.center().coords())
}

#[test]
fn small_delta_moves_in_place() {
    let mut tree = PackedRTree::bulk_load(grid_entries());
    let (&key, &old) = tree.entry(10);
    // A shrink is contained in the old rectangle, hence in every
    // ancestor MBR — always eligible for the in-place path.
    let new = Rect::new(
        [old.lo(0) + 0.5, old.lo(1) + 0.5],
        [old.hi(0) - 0.5, old.hi(1) - 0.5],
    );
    assert_eq!(
        tree.update_entry(&key, &old, new),
        Some(EntryUpdate::InPlace { slot: 10 })
    );
    assert_eq!(tree.delta_len(), 0, "an in-place move adds no delta");
    assert_eq!(tree.len(), 256);
    assert!(tree.search_point(&center(&new)).contains(&&key));
    tree.validate().expect("in-place move keeps the tree valid");
}

#[test]
fn escaping_move_falls_back_to_tombstone_and_restage() {
    let mut tree = PackedRTree::bulk_load(grid_entries());
    let (&key, &old) = tree.entry(0);
    let new = Rect::new([1000.0, 1000.0], [1001.0, 1001.0]);
    assert_eq!(
        tree.update_entry(&key, &old, new),
        Some(EntryUpdate::Restaged {
            removal: DeltaRemoval::Tombstoned { slot: 0 },
            index: 0,
        })
    );
    assert_eq!(tree.tombstone_count(), 1);
    assert_eq!(tree.staged_len(), 1);
    assert_eq!(tree.len(), 256, "a move never changes the live count");
    assert!(!tree.search_point(&center(&old)).contains(&&key));
    assert!(tree.search_point(&center(&new)).contains(&&key));
    tree.validate().expect("fallback move keeps the tree valid");
}

#[test]
fn staged_entry_moves_by_rewrite() {
    let mut tree: PackedRTree<usize, 2> = PackedRTree::bulk_load(grid_entries());
    let old = Rect::new([300.0, 300.0], [301.0, 301.0]);
    let new = Rect::new([400.0, 400.0], [402.0, 402.0]);
    tree.stage_insert(999, old);
    assert_eq!(
        tree.update_entry(&999, &old, new),
        Some(EntryUpdate::Staged { index: 0 })
    );
    assert_eq!(tree.staged_len(), 1, "a staged move rewrites, not appends");
    assert!(tree.search_point(&center(&new)).contains(&&999));
    assert!(!tree.search_point(&center(&old)).contains(&&999));
    tree.validate()
        .expect("staged rewrite keeps the tree valid");
}

#[test]
fn moving_a_missing_entry_is_none_and_harmless() {
    let mut tree = PackedRTree::bulk_load(grid_entries());
    let phantom = Rect::new([1.0, 1.0], [2.0, 2.0]);
    let new = Rect::new([3.0, 3.0], [4.0, 4.0]);
    assert_eq!(tree.update_entry(&777, &phantom, new), None);
    assert_eq!(tree.delta_len(), 0);
    assert_eq!(tree.len(), 256);
    tree.validate().expect("a failed move changes nothing");
}

#[test]
fn mid_freeze_moves_never_mutate_the_frozen_core_in_place() {
    let mut tree = PackedRTree::bulk_load(grid_entries());
    let staged_old = Rect::new([500.0, 500.0], [501.0, 501.0]);
    tree.stage_insert(500, staged_old);
    let frozen = tree.freeze();

    // A packed-slot move mid-freeze must not go in place (the merge
    // already snapshotted the core), even though the new rectangle
    // stays inside its leaf subtree.
    let (&key, &old) = tree.entry(20);
    let shrunk = Rect::new(
        [old.lo(0) + 1.0, old.lo(1) + 1.0],
        [old.hi(0) - 1.0, old.hi(1) - 1.0],
    );
    assert_eq!(
        tree.update_entry(&key, &old, shrunk),
        Some(EntryUpdate::Restaged {
            removal: DeltaRemoval::Tombstoned { slot: 20 },
            index: 1,
        })
    );

    // A frozen staged entry is retired in place and re-staged past the
    // frozen prefix — its index is owed to the install fixups.
    let staged_new = Rect::new([600.0, 600.0], [601.0, 601.0]);
    assert_eq!(
        tree.update_entry(&500, &staged_old, staged_new),
        Some(EntryUpdate::Restaged {
            removal: DeltaRemoval::Retired { index: 0 },
            index: 2,
        })
    );
    tree.validate()
        .expect("mid-freeze moves keep the tree valid");

    tree.install(frozen.merge());
    tree.validate()
        .expect("install reconciles mid-freeze moves");
    assert_eq!(tree.len(), 257);
    assert!(tree.search_point(&center(&shrunk)).contains(&&key));
    // A corner inside the old rectangle but outside the shrunk one.
    let old_corner = Point::new([old.lo(0) + 0.25, old.lo(1) + 0.25]);
    assert!(!tree.search_point(&old_corner).contains(&&key));
    assert!(tree.search_point(&center(&staged_new)).contains(&&500));
    assert!(!tree.search_point(&center(&staged_old)).contains(&&500));
}

#[test]
fn lease_follows_the_entry_through_moves() {
    let mut tree = PackedRTree::bulk_load(grid_entries());
    let (&key, &old) = tree.entry(30);
    tree.set_lease(key, old, 42);
    let new = Rect::new(
        [old.lo(0) + 0.5, old.lo(1) + 0.5],
        [old.hi(0) - 0.5, old.hi(1) - 0.5],
    );
    tree.update_entry(&key, &old, new).expect("entry is live");
    assert_eq!(
        tree.take_lease(&key, &old),
        None,
        "the lease no longer points at the old rectangle"
    );
    assert_eq!(tree.take_lease(&key, &new), Some(42));
}

#[test]
fn pop_expired_lease_respects_the_clock_and_touches_no_entry() {
    let mut tree = PackedRTree::bulk_load(grid_entries());
    let (&k0, &r0) = tree.entry(0);
    let (&k1, &r1) = tree.entry(1);
    tree.set_lease(k0, r0, 5);
    tree.set_lease(k1, r1, 9);
    assert_eq!(tree.pop_expired_lease(4), None);
    assert_eq!(tree.pop_expired_lease(5), Some((k0, r0)));
    assert!(
        tree.contains_entry(&k0, &r0),
        "expiry surfaces the entry; eviction is the caller's job"
    );
    assert_eq!(tree.lease_count(), 1);
    assert_eq!(tree.pop_expired_lease(100), Some((k1, r1)));
    assert_eq!(tree.lease_count(), 0);
}

#[test]
fn rearming_a_lease_replaces_the_deadline() {
    let mut tree = PackedRTree::bulk_load(grid_entries());
    let (&key, &rect) = tree.entry(7);
    tree.set_lease(key, rect, 10);
    tree.set_lease(key, rect, 99);
    assert_eq!(tree.lease_count(), 1, "one lease per entry identity");
    assert_eq!(tree.pop_expired_lease(10), None);
    assert_eq!(tree.pop_expired_lease(99), Some((key, rect)));
}

#[test]
fn compaction_sweeps_dangling_leases_and_keeps_live_ones() {
    let mut tree = PackedRTree::bulk_load(grid_entries());
    let (&live, &live_rect) = tree.entry(3);
    let (&dead, &dead_rect) = tree.entry(4);
    tree.set_lease(live, live_rect, 10);
    tree.set_lease(dead, dead_rect, 20);
    tree.remove_entry(&dead, &dead_rect).expect("entry is live");
    assert_eq!(
        tree.lease_count(),
        2,
        "the dangling record lingers until a sweep"
    );
    tree.compact();
    assert_eq!(tree.lease_count(), 1, "compaction sweeps the dangler");
    assert_eq!(tree.take_lease(&live, &live_rect), Some(10));
}

#[test]
fn install_sweeps_dangling_leases_too() {
    let mut tree = PackedRTree::bulk_load(grid_entries());
    let (&dead, &dead_rect) = tree.entry(5);
    tree.set_lease(dead, dead_rect, 7);
    let frozen = tree.freeze();
    tree.remove_entry(&dead, &dead_rect).expect("entry is live");
    tree.install(frozen.merge());
    assert_eq!(tree.lease_count(), 0);
    tree.validate().expect("install stays valid");
}

#[test]
fn validate_flags_a_stale_curve_key_after_a_corrupted_move() {
    // The regression the detector exists for: an in-place move that
    // rewrote the rectangle but skipped the curve-key re-derivation
    // would leave the entry mis-sorted for the next sorted-splice
    // merge. Simulate exactly that corruption and demand `validate`
    // names the slot.
    let mut tree = PackedRTree::bulk_load(grid_entries());
    tree.validate().expect("fresh bulk load is valid");
    tree.debug_corrupt_curve_key(3);
    assert_eq!(
        tree.validate(),
        Err(PackedValidationError::StaleCurveKey { slot: 3 })
    );
}

#[derive(Debug, Clone)]
enum MobOp {
    Insert(Rect<2>),
    MoveNth(usize, Rect<2>),
    RemoveNth(usize),
    LeaseNth(usize, u64),
    Expire(u64),
    Compact,
    Probe(Point<2>),
}

fn arb_rect() -> impl Strategy<Value = Rect<2>> {
    (0.0f64..150.0, 0.0f64..150.0, 0.1f64..20.0, 0.1f64..20.0)
        .prop_map(|(x, y, w, h)| Rect::new([x, y], [x + w, y + h]))
}

fn arb_mob_op() -> impl Strategy<Value = MobOp> {
    prop_oneof![
        2 => arb_rect().prop_map(MobOp::Insert),
        4 => ((0usize..128), arb_rect()).prop_map(|(n, r)| MobOp::MoveNth(n, r)),
        1 => (0usize..128).prop_map(MobOp::RemoveNth),
        1 => ((0usize..128), (0u64..40)).prop_map(|(n, d)| MobOp::LeaseNth(n, d)),
        1 => (0u64..40).prop_map(MobOp::Expire),
        1 => Just(MobOp::Compact),
        3 => (0.0f64..180.0, 0.0f64..180.0)
            .prop_map(|(x, y)| MobOp::Probe(Point::new([x, y]))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random interleavings of moves, inserts, removes, lease arming,
    /// expiry drives, and compactions: after every operation the tree
    /// validates (delta invariants *and* curve-key freshness), and
    /// every probe's hit set equals a shadow model scan.
    #[test]
    fn random_move_sequences_stay_exact_and_valid(
        seed_entries in prop::collection::vec(arb_rect(), 8..64),
        ops in prop::collection::vec(arb_mob_op(), 1..80),
    ) {
        let mut next_key = seed_entries.len();
        let mut model: Vec<(usize, Rect<2>)> =
            seed_entries.into_iter().enumerate().collect();
        let mut tree = PackedRTree::bulk_load(model.clone());
        let mut clock = 0u64;

        for op in ops {
            match op {
                MobOp::Insert(r) => {
                    tree.stage_insert(next_key, r);
                    model.push((next_key, r));
                    next_key += 1;
                }
                MobOp::MoveNth(n, new) => {
                    if !model.is_empty() {
                        let i = n % model.len();
                        let (k, old) = model[i];
                        prop_assert!(
                            tree.update_entry(&k, &old, new).is_some(),
                            "model entry {k} must be movable"
                        );
                        model[i].1 = new;
                    }
                }
                MobOp::RemoveNth(n) => {
                    if !model.is_empty() {
                        let (k, r) = model.remove(n % model.len());
                        prop_assert!(tree.remove_entry(&k, &r).is_some());
                    }
                }
                MobOp::LeaseNth(n, ttl) => {
                    if !model.is_empty() {
                        let (k, r) = model[n % model.len()];
                        tree.set_lease(k, r, clock + ttl);
                    }
                }
                MobOp::Expire(advance) => {
                    clock += advance;
                    while let Some((k, r)) = tree.pop_expired_lease(clock) {
                        // A moved or removed entry may have orphaned
                        // the record; evict only what is still live.
                        if tree.contains_entry(&k, &r) {
                            prop_assert!(tree.remove_entry(&k, &r).is_some());
                            model.retain(|&(mk, mr)| (mk, mr) != (k, r));
                        }
                    }
                }
                MobOp::Compact => {
                    tree.compact();
                }
                MobOp::Probe(p) => {
                    let mut got: Vec<usize> =
                        tree.search_point(&p).into_iter().copied().collect();
                    got.sort_unstable();
                    let mut want: Vec<usize> = model
                        .iter()
                        .filter(|(_, r)| r.contains_point(&p))
                        .map(|(k, _)| *k)
                        .collect();
                    want.sort_unstable();
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(tree.len(), model.len());
            prop_assert!(tree.validate().is_ok(), "invalid after {:?}", tree.validate());
        }
    }
}
