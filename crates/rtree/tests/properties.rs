//! Property-based tests: the R-tree stays valid and complete under random
//! operation sequences, for every split method; the packed backend
//! returns *identical* result sets to the pointer tree (it is a drop-in
//! oracle, not an approximation), including on the generated
//! subscription workloads of `drtree-workloads`; and the packed
//! backend's delta layer (staged inserts + tombstones) is invisible to
//! every visitor — before and after compaction, and throughout a
//! two-phase freeze/merge/install cycle with mutations landing
//! mid-compaction.

use drtree_rtree::{PackedRTree, RTree, RTreeConfig, SnapshotOptions, SplitMethod};
use drtree_spatial::{Point, Rect};
use drtree_workloads::SubscriptionWorkload;
use proptest::prelude::*;
use proptest::strategy::Just;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[derive(Debug, Clone)]
enum Op {
    Insert(Rect<2>),
    RemoveNth(usize),
    QueryPoint(Point<2>),
}

fn arb_rect() -> impl Strategy<Value = Rect<2>> {
    (0.0f64..100.0, 0.0f64..100.0, 0.1f64..30.0, 0.1f64..30.0)
        .prop_map(|(x, y, w, h)| Rect::new([x, y], [x + w, y + h]))
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => arb_rect().prop_map(Op::Insert),
        1 => (0usize..64).prop_map(Op::RemoveNth),
        2 => (0.0f64..130.0, 0.0f64..130.0).prop_map(|(x, y)| Op::QueryPoint(Point::new([x, y]))),
    ]
}

fn arb_config() -> impl Strategy<Value = RTreeConfig> {
    (1usize..5, prop::sample::select(SplitMethod::ALL.to_vec()))
        .prop_map(|(m, s)| RTreeConfig::new(m, 2 * m + m / 2 + 1, s).expect("valid bounds"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_ops_preserve_invariants(
        config in arb_config(),
        reinsert in any::<bool>(),
        ops in prop::collection::vec(arb_op(), 1..150),
    ) {
        let mut tree: RTree<usize, 2> = RTree::new(config);
        tree.set_reinsertion(reinsert);
        // shadow model: flat list of live entries
        let mut model: Vec<(usize, Rect<2>)> = Vec::new();
        let mut next_key = 0usize;

        for op in ops {
            match op {
                Op::Insert(r) => {
                    tree.insert(next_key, r);
                    model.push((next_key, r));
                    next_key += 1;
                }
                Op::RemoveNth(n) => {
                    if !model.is_empty() {
                        let (k, r) = model.remove(n % model.len());
                        prop_assert!(tree.remove(&k, &r));
                    }
                }
                Op::QueryPoint(p) => {
                    let mut got: Vec<usize> =
                        tree.search_point(&p).into_iter().copied().collect();
                    got.sort_unstable();
                    let mut want: Vec<usize> = model
                        .iter()
                        .filter(|(_, r)| r.contains_point(&p))
                        .map(|(k, _)| *k)
                        .collect();
                    want.sort_unstable();
                    prop_assert_eq!(got, want, "query mismatch");
                }
            }
            prop_assert_eq!(tree.len(), model.len());
            if let Err(e) = tree.validate() {
                prop_assert!(false, "invariants broken: {}", e);
            }
        }
    }

    #[test]
    fn window_query_matches_linear_scan(
        rects in prop::collection::vec(arb_rect(), 1..120),
        window in arb_rect(),
    ) {
        let mut tree: RTree<usize, 2> = RTree::new(RTreeConfig::default());
        for (i, r) in rects.iter().enumerate() {
            tree.insert(i, *r);
        }
        let mut got: Vec<usize> = tree.search_intersecting(&window).into_iter().copied().collect();
        got.sort_unstable();
        let mut want: Vec<usize> = rects
            .iter()
            .enumerate()
            .filter(|(_, r)| r.intersects(&window))
            .map(|(i, _)| i)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn height_is_logarithmic(
        n in 10usize..400,
        method in prop::sample::select(SplitMethod::ALL.to_vec()),
    ) {
        let m = 2usize;
        let max = 6usize;
        let mut tree: RTree<usize, 2> = RTree::new(RTreeConfig::new(m, max, method).unwrap());
        for i in 0..n {
            let x = (i % 20) as f64 * 5.0;
            let y = (i / 20) as f64 * 5.0;
            tree.insert(i, Rect::new([x, y], [x + 3.0, y + 3.0]));
        }
        // Lemma 3.1 shape: height bounded by log_m(N) plus a small constant.
        let bound = (n as f64).log(m as f64).ceil() as usize + 2;
        prop_assert!(tree.height() <= bound,
            "height {} exceeds bound {} at n={}", tree.height(), bound, n);
    }
}

/// Sorted key multiset of a point query against both backends.
fn point_results(
    pointer: &RTree<usize, 2>,
    packed: &PackedRTree<usize, 2>,
    p: &Point<2>,
) -> (Vec<usize>, Vec<usize>) {
    let mut a: Vec<usize> = pointer.search_point(p).into_iter().copied().collect();
    let mut b: Vec<usize> = packed.search_point(p).into_iter().copied().collect();
    a.sort_unstable();
    b.sort_unstable();
    (a, b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn packed_matches_pointer_on_random_rects(
        rects in prop::collection::vec(arb_rect(), 0..150),
        probes in prop::collection::vec(
            (0.0f64..140.0, 0.0f64..140.0), 1..20),
        windows in prop::collection::vec(arb_rect(), 0..6),
        node_size in 2usize..33,
    ) {
        let entries: Vec<(usize, Rect<2>)> = rects.iter().copied().enumerate().collect();
        let mut pointer: RTree<usize, 2> = RTree::new(RTreeConfig::default());
        for (k, r) in &entries {
            pointer.insert(*k, *r);
        }
        let packed = PackedRTree::bulk_load_with_node_size(node_size, entries);
        packed.validate().map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(packed.len(), pointer.len());

        for (x, y) in probes {
            let p = Point::new([x, y]);
            let (a, b) = point_results(&pointer, &packed, &p);
            prop_assert_eq!(a, b, "point query at {:?}", p);
        }
        for w in windows {
            let mut a: Vec<usize> =
                pointer.search_intersecting(&w).into_iter().copied().collect();
            let mut b: Vec<usize> =
                packed.search_intersecting(&w).into_iter().copied().collect();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b, "window query at {}", w);
        }
    }

    #[test]
    fn packed_matches_pointer_on_generated_workloads(
        seed in any::<u64>(),
        n in 1usize..400,
        workload_idx in 0usize..3,
    ) {
        let (_, workload) = SubscriptionWorkload::standard()[workload_idx];
        let mut rng = StdRng::seed_from_u64(seed);
        let rects: Vec<Rect<2>> = workload.generate(n, &mut rng);
        let entries: Vec<(usize, Rect<2>)> = rects.iter().copied().enumerate().collect();

        let mut pointer: RTree<usize, 2> =
            RTree::new(RTreeConfig::new(4, 16, SplitMethod::RStar).unwrap());
        for (k, r) in &entries {
            pointer.insert(*k, *r);
        }
        let packed = PackedRTree::bulk_load(entries);
        packed.validate().map_err(|e| TestCaseError::fail(e.to_string()))?;

        // Probe at every entry's center: the exact matching sets the
        // broker oracle computes must agree between backends.
        for r in rects.iter().take(64) {
            let p = r.center();
            let (a, b) = point_results(&pointer, &packed, &p);
            prop_assert_eq!(a, b, "center probe at {:?}", p);
        }
    }

    /// Every [`drtree_rtree::SpatialIndex`] visitor returns identical
    /// result sets with and without a populated delta layer: a tree
    /// carrying staged inserts and tombstones must answer exactly like
    /// a fresh bulk-load of its live entry set — before *and* after
    /// compaction.
    #[test]
    fn delta_layer_is_invisible_to_every_visitor(
        base in prop::collection::vec(arb_rect(), 0..100),
        staged in prop::collection::vec(arb_rect(), 0..40),
        removals in prop::collection::vec(0usize..140, 0..60),
        probes in prop::collection::vec(
            (0.0f64..140.0, 0.0f64..140.0).prop_map(|(x, y)| Point::<2>::new([x, y])),
            1..16),
        windows in prop::collection::vec(arb_rect(), 0..4),
        node_size in 2usize..33,
    ) {
        let mut model: Vec<(usize, Rect<2>)> =
            base.iter().copied().enumerate().collect();
        let mut tree =
            PackedRTree::bulk_load_with_node_size(node_size, model.clone());
        for (i, r) in staged.iter().enumerate() {
            tree.stage_insert(base.len() + i, *r);
            model.push((base.len() + i, *r));
        }
        for n in removals {
            if model.is_empty() {
                break;
            }
            let (k, r) = model.remove(n % model.len());
            prop_assert!(
                tree.remove_entry(&k, &r).is_some(),
                "live entry ({k}, {r}) not found for removal"
            );
        }
        tree.validate().map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(tree.len(), model.len());

        let reference = PackedRTree::bulk_load(model.clone());
        let mut delta_tree = tree;
        for pass in ["delta", "compacted"] {
            if pass == "compacted" {
                delta_tree.compact();
                prop_assert_eq!(delta_tree.delta_len(), 0);
                delta_tree
                    .validate()
                    .map_err(|e| TestCaseError::fail(e.to_string()))?;
            }
            for p in &probes {
                let mut a: Vec<usize> =
                    reference.search_point(p).into_iter().copied().collect();
                let mut b: Vec<usize> =
                    delta_tree.search_point(p).into_iter().copied().collect();
                a.sort_unstable();
                b.sort_unstable();
                prop_assert_eq!(a, b, "{} point query at {:?}", pass, p);
            }
            for w in &windows {
                let mut a: Vec<usize> =
                    reference.search_intersecting(w).into_iter().copied().collect();
                let mut b: Vec<usize> =
                    delta_tree.search_intersecting(w).into_iter().copied().collect();
                a.sort_unstable();
                b.sort_unstable();
                prop_assert_eq!(a, b, "{} window query at {}", pass, w);
                // The abortable walk sees the same full set when never
                // aborted.
                let mut c = Vec::new();
                delta_tree.for_each_intersecting_while(w, |&k, _| {
                    c.push(k);
                    true
                });
                c.sort_unstable();
                let mut d: Vec<usize> =
                    delta_tree.search_intersecting(w).into_iter().copied().collect();
                d.sort_unstable();
                prop_assert_eq!(c, d, "{} abortable walk at {}", pass, w);
            }
            // Batched visits equal per-probe visits.
            let mut batched: Vec<Vec<usize>> = vec![Vec::new(); probes.len()];
            delta_tree
                .for_each_containing_batch(&probes, |pi, &k, _| batched[pi as usize].push(k));
            for (i, p) in probes.iter().enumerate() {
                batched[i].sort_unstable();
                let mut want: Vec<usize> =
                    delta_tree.search_point(p).into_iter().copied().collect();
                want.sort_unstable();
                prop_assert_eq!(&batched[i], &want, "{} batch probe {:?}", pass, p);
            }
        }
    }

    #[test]
    fn packed_update_stays_exact(
        rects in prop::collection::vec(arb_rect(), 1..120),
        moves in prop::collection::vec((0usize..120, arb_rect()), 1..20),
    ) {
        let entries: Vec<(usize, Rect<2>)> = rects.iter().copied().enumerate().collect();
        let mut packed = PackedRTree::bulk_load_with_node_size(4, entries);
        let mut model = rects.clone();
        for (slot, rect) in moves {
            let slot = slot % packed.len();
            let (&key, _) = packed.entry(slot);
            packed.update(slot, rect);
            model[key] = rect;
            packed.validate().map_err(|e| TestCaseError::fail(e.to_string()))?;
        }
        // After arbitrary moves the tree still answers exactly.
        for (i, r) in model.iter().enumerate().take(40) {
            let p = r.center();
            let mut got: Vec<usize> =
                packed.search_point(&p).into_iter().copied().collect();
            got.sort_unstable();
            let mut want: Vec<usize> = model
                .iter()
                .enumerate()
                .filter(|(_, m)| m.contains_point(&p))
                .map(|(k, _)| k)
                .collect();
            want.sort_unstable();
            prop_assert_eq!(got, want, "after moving entry {}", i);
        }
    }

    /// The two-phase freeze/merge/install cycle is invisible to every
    /// visitor: with arbitrary staging, removals *between* freeze and
    /// install (hitting packed slots, the frozen staged prefix, and
    /// the second-generation delta alike), and fresh inserts overlaid
    /// on the frozen core, the tree answers exactly like a fresh
    /// bulk-load of the live set at every point of the cycle.
    #[test]
    fn frozen_epoch_is_invisible_to_every_visitor(
        base in prop::collection::vec(arb_rect(), 0..80),
        staged in prop::collection::vec(arb_rect(), 0..24),
        mid_inserts in prop::collection::vec(arb_rect(), 0..24),
        pre_removals in prop::collection::vec(0usize..104, 0..20),
        mid_removals in prop::collection::vec(0usize..128, 0..40),
        probes in prop::collection::vec(
            (0.0f64..140.0, 0.0f64..140.0).prop_map(|(x, y)| Point::<2>::new([x, y])),
            1..12),
        node_size in 2usize..33,
    ) {
        let mut model: Vec<(usize, Rect<2>)> =
            base.iter().copied().enumerate().collect();
        let mut tree = PackedRTree::bulk_load_with_node_size(node_size, model.clone());
        let mut next_key = base.len();
        for r in &staged {
            tree.stage_insert(next_key, *r);
            model.push((next_key, *r));
            next_key += 1;
        }
        for n in &pre_removals {
            if model.is_empty() { break; }
            let (k, r) = model.remove(n % model.len());
            prop_assert!(tree.remove_entry(&k, &r).is_some());
        }

        let frozen = tree.freeze();
        // Mid-compaction churn: inserts and removals interleaved.
        let mut pending_inserts = mid_inserts.iter();
        for (i, n) in mid_removals.iter().enumerate() {
            if i % 2 == 0 {
                if let Some(r) = pending_inserts.next() {
                    tree.stage_insert(next_key, *r);
                    model.push((next_key, *r));
                    next_key += 1;
                }
            }
            if !model.is_empty() {
                let (k, r) = model.remove(n % model.len());
                prop_assert!(
                    tree.remove_entry(&k, &r).is_some(),
                    "mid-compaction removal of ({k}, {r}) not found"
                );
            }
        }
        for r in pending_inserts {
            tree.stage_insert(next_key, *r);
            model.push((next_key, *r));
            next_key += 1;
        }
        tree.validate().map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(tree.len(), model.len());

        let check = |tree: &PackedRTree<usize, 2>, model: &[(usize, Rect<2>)], phase: &str|
            -> Result<(), TestCaseError> {
            for p in &probes {
                let mut got: Vec<usize> =
                    tree.search_point(p).into_iter().copied().collect();
                got.sort_unstable();
                let mut want: Vec<usize> = model
                    .iter()
                    .filter(|(_, r)| r.contains_point(p))
                    .map(|(k, _)| *k)
                    .collect();
                want.sort_unstable();
                prop_assert_eq!(got, want, "{} point query at {:?}", phase, p);
                // Batched form agrees.
                let mut batched = Vec::new();
                tree.for_each_containing_batch(
                    std::slice::from_ref(p),
                    |_, &k, _| batched.push(k),
                );
                batched.sort_unstable();
                let mut single: Vec<usize> =
                    tree.search_point(p).into_iter().copied().collect();
                single.sort_unstable();
                prop_assert_eq!(batched, single, "{} batch probe {:?}", phase, p);
            }
            Ok(())
        };
        check(&tree, &model, "mid-compaction")?;

        let merged = frozen.merge();
        merged.validate().map_err(|e| TestCaseError::fail(e.to_string()))?;
        tree.install(merged);
        tree.validate().map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(tree.len(), model.len());
        check(&tree, &model, "installed")?;

        // A trailing synchronous compact still agrees.
        tree.compact();
        tree.validate().map_err(|e| TestCaseError::fail(e.to_string()))?;
        check(&tree, &model, "recompacted")?;
    }
}

// ---------------------------------------------------------------------------
// Snapshot round-trips: save -> load must be invisible to every query,
// no matter where in a churn sequence the snapshot is taken, on both
// the exact-f64 layout and the quantized-f32 / aligned-fanout layout.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum ChurnOp {
    /// Stage a fresh entry into the delta layer.
    Stage(Rect<2>),
    /// Remove the n-th live entry (mod the live count).
    RemoveNth(usize),
    /// Merge the delta layer into a rebuilt core.
    Compact,
    /// Snapshot mid-sequence and compare against the live tree.
    Checkpoint,
}

fn arb_churn_op() -> impl Strategy<Value = ChurnOp> {
    prop_oneof![
        5 => arb_rect().prop_map(ChurnOp::Stage),
        2 => (0usize..1_000_000).prop_map(ChurnOp::RemoveNth),
        1 => Just(ChurnOp::Compact),
        1 => Just(ChurnOp::Checkpoint),
    ]
}

/// Serialize `tree`, reload it on both the deferred-checksum and the
/// eager-checksum paths, and require identical answers to every probe.
fn round_trip_matches(
    tree: &PackedRTree<usize, 2>,
    options: SnapshotOptions,
    probes: &[Point<2>],
    windows: &[Rect<2>],
) -> Result<(), TestCaseError> {
    let bytes = tree.save_with_options(options);
    let restored = PackedRTree::<usize, 2>::load(bytes.clone())
        .map_err(|e| TestCaseError::fail(format!("load: {e}")))?;
    restored
        .verify_snapshot()
        .map_err(|e| TestCaseError::fail(format!("verify_snapshot: {e}")))?;
    restored
        .validate()
        .map_err(|e| TestCaseError::fail(format!("restored validate: {e}")))?;
    let verified = PackedRTree::<usize, 2>::load_verified(bytes)
        .map_err(|e| TestCaseError::fail(format!("load_verified: {e}")))?;
    prop_assert_eq!(restored.len(), tree.len());
    prop_assert_eq!(verified.len(), tree.len());

    for point in probes {
        let mut want: Vec<usize> = tree.search_point(point).into_iter().copied().collect();
        want.sort_unstable();
        let mut lazy: Vec<usize> = restored.search_point(point).into_iter().copied().collect();
        lazy.sort_unstable();
        prop_assert_eq!(&lazy, &want, "restored point query diverged at {:?}", point);
        let mut eager: Vec<usize> = verified.search_point(point).into_iter().copied().collect();
        eager.sort_unstable();
        prop_assert_eq!(
            &eager,
            &want,
            "verified point query diverged at {:?}",
            point
        );
    }
    for window in windows {
        let mut want: Vec<usize> = tree
            .search_intersecting(window)
            .into_iter()
            .copied()
            .collect();
        want.sort_unstable();
        let mut got: Vec<usize> = restored
            .search_intersecting(window)
            .into_iter()
            .copied()
            .collect();
        got.sort_unstable();
        prop_assert_eq!(got, want, "restored window query diverged at {}", window);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn snapshot_round_trips_exactly_under_interleaved_churn(
        base in prop::collection::vec(arb_rect(), 0..100),
        ops in prop::collection::vec(arb_churn_op(), 0..50),
        quantize in any::<bool>(),
        probes in prop::collection::vec(
            (0.0f64..130.0, 0.0f64..130.0).prop_map(|(x, y)| Point::<2>::new([x, y])),
            1..10),
        windows in prop::collection::vec(arb_rect(), 1..4),
    ) {
        // The two hot-layout experiments ride the same header; exercise
        // the exact layout and the fully experimental one alternately.
        let options = SnapshotOptions { quantize_interior: quantize, aligned_fanout: quantize };

        let mut model: Vec<(usize, Rect<2>)> = base.iter().copied().enumerate().collect();
        let mut tree = PackedRTree::bulk_load(model.clone());
        let mut next_key = model.len();
        let mut checkpoints = 0usize;

        for op in &ops {
            match op {
                ChurnOp::Stage(rect) => {
                    tree.stage_insert(next_key, *rect);
                    model.push((next_key, *rect));
                    next_key += 1;
                }
                ChurnOp::RemoveNth(n) => {
                    if !model.is_empty() {
                        let (key, rect) = model.remove(n % model.len());
                        prop_assert!(tree.remove_entry(&key, &rect).is_some());
                    }
                }
                ChurnOp::Compact => {
                    tree.compact();
                    // Empty-delta fast path: a post-compaction snapshot
                    // shares the core and heap-allocates nothing.
                    prop_assert_eq!(tree.snapshot().delta_heap_bytes(), 0);
                }
                // Cap mid-sequence round-trips: each one serializes the
                // whole tree, and three interior placements (early,
                // mid-delta, post-compaction) cover the layout space.
                ChurnOp::Checkpoint if checkpoints < 3 => {
                    checkpoints += 1;
                    round_trip_matches(&tree, options, &probes, &windows)?;
                }
                ChurnOp::Checkpoint => {}
            }
        }

        prop_assert_eq!(tree.len(), model.len());
        round_trip_matches(&tree, options, &probes, &windows)?;
    }

    #[test]
    fn corrupted_snapshots_error_and_never_panic(
        base in prop::collection::vec(arb_rect(), 0..80),
        staged in prop::collection::vec(arb_rect(), 0..20),
        quantize in any::<bool>(),
        cut_at in 0usize..1_000_000,
        flips in prop::collection::vec((0usize..1_000_000, 1u8..255), 1..6),
        probe in (0.0f64..130.0, 0.0f64..130.0).prop_map(|(x, y)| Point::<2>::new([x, y])),
    ) {
        let entries: Vec<(usize, Rect<2>)> = base.iter().copied().enumerate().collect();
        let mut tree = PackedRTree::bulk_load(entries);
        for (i, rect) in staged.iter().enumerate() {
            tree.stage_insert(base.len() + i, *rect);
        }
        if !base.is_empty() {
            tree.remove_entry(&0, &base[0]);
        }
        let options = SnapshotOptions { quantize_interior: quantize, aligned_fanout: quantize };
        let bytes = tree.save_with_options(options);

        // Every strict prefix must be rejected: the header carries the
        // total payload length, so truncation is always detectable.
        let cut = cut_at % bytes.len();
        prop_assert!(PackedRTree::<usize, 2>::load(bytes[..cut].to_vec()).is_err());

        // Arbitrary bit flips: the deferred-checksum path may accept a
        // flip in bulk data (by design — load defers the bulk sum), but
        // must never panic, and an accepted tree must answer queries.
        // The eager path additionally re-sums the bulk sections.
        let mut fuzzed = bytes.clone();
        for &(at, mask) in &flips {
            let at = at % fuzzed.len();
            fuzzed[at] ^= mask;
        }
        if let Ok(loaded) = PackedRTree::<usize, 2>::load(fuzzed.clone()) {
            let _ = loaded.search_point(&probe);
            let _ = loaded.verify_snapshot();
        }
        if let Ok(loaded) = PackedRTree::<usize, 2>::load_verified(fuzzed) {
            let _ = loaded.search_point(&probe);
        }
    }
}
