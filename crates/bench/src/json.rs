//! Minimal hand-rolled JSON emission for the committed `BENCH_*.json`
//! files (the workspace is offline; no serde). One builder shared by
//! every `scale` mode — `rtree`, `shard`, and `churn` — so the
//! documents keep one stable, review-friendly shape: 2-space
//! indentation, insertion-ordered object fields, and fixed float
//! precision chosen per field.
//!
//! # Example
//!
//! ```
//! use drtree_bench::json::Json;
//!
//! let doc = Json::object()
//!     .field("bench", "demo")
//!     .field("samples", Json::Array(vec![
//!         Json::object().field("size", 1000u64).field("ns", Json::fixed(12.345, 1)),
//!     ]));
//! let rendered = doc.render();
//! assert!(rendered.contains("\"bench\": \"demo\""));
//! assert!(rendered.contains("{\"size\": 1000, \"ns\": 12.3}"));
//! ```

use std::fmt::Write as _;

/// A JSON value assembled programmatically and rendered with stable
/// formatting.
#[derive(Debug, Clone)]
pub enum Json {
    /// A string (escaped on render).
    Str(String),
    /// An unsigned integer.
    Int(u64),
    /// A float rendered with a fixed number of decimals.
    Fixed {
        /// The value.
        value: f64,
        /// Decimal places to keep.
        decimals: usize,
    },
    /// An array; elements render one per line unless every element is
    /// scalar.
    Array(Vec<Json>),
    /// An object; fields keep insertion order. Renders multiline at the
    /// top levels and inline once every value is scalar.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, ready for [`Json::field`] chaining.
    pub fn object() -> Self {
        Json::Object(Vec::new())
    }

    /// Appends a field to an object (builder style).
    ///
    /// # Panics
    ///
    /// Panics when `self` is not an object.
    pub fn field(mut self, name: &str, value: impl Into<Json>) -> Self {
        match &mut self {
            Json::Object(fields) => fields.push((name.to_string(), value.into())),
            other => panic!("field() on non-object {other:?}"),
        }
        self
    }

    /// A float rendered with `decimals` decimal places.
    pub fn fixed(value: f64, decimals: usize) -> Self {
        Json::Fixed { value, decimals }
    }

    /// Renders the document with a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// `true` when the value renders on one line regardless of nesting
    /// depth: scalars always, containers once everything inside them is
    /// scalar.
    fn is_inline(&self) -> bool {
        match self {
            Json::Str(_) | Json::Int(_) | Json::Fixed { .. } => true,
            Json::Array(items) => items.iter().all(Json::is_scalar),
            Json::Object(fields) => fields.iter().all(|(_, v)| v.is_scalar()),
        }
    }

    fn is_scalar(&self) -> bool {
        matches!(self, Json::Str(_) | Json::Int(_) | Json::Fixed { .. })
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Fixed { value, decimals } => {
                let _ = write!(out, "{value:.decimals$}");
            }
            Json::Array(items) if self.is_inline() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.write(out, indent);
                }
                out.push(']');
            }
            Json::Array(items) => {
                out.push_str("[\n");
                let inner = indent + 1;
                for (i, item) in items.iter().enumerate() {
                    let _ = write!(out, "{:indent$}", "", indent = 2 * inner);
                    item.write(out, inner);
                    out.push_str(if i + 1 == items.len() { "\n" } else { ",\n" });
                }
                let _ = write!(out, "{:indent$}]", "", indent = 2 * indent);
            }
            Json::Object(fields) if self.is_inline() => {
                out.push('{');
                for (i, (name, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "\"{name}\": ");
                    value.write(out, indent);
                }
                out.push('}');
            }
            Json::Object(fields) => {
                out.push_str("{\n");
                let inner = indent + 1;
                for (i, (name, value)) in fields.iter().enumerate() {
                    let _ = write!(out, "{:indent$}\"{name}\": ", "", indent = 2 * inner);
                    value.write(out, inner);
                    out.push_str(if i + 1 == fields.len() { "\n" } else { ",\n" });
                }
                let _ = write!(out, "{:indent$}}}", "", indent = 2 * indent);
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Int(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Int(v as u64)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Self {
        Json::Array(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_documents_render_with_stable_shape() {
        let doc = Json::object()
            .field("bench", "t")
            .field(
                "sizes",
                Json::object().field(
                    "1000",
                    Json::Array(vec![
                        Json::object()
                            .field("a", 1u64)
                            .field("b", Json::fixed(2.5, 2)),
                        Json::object()
                            .field("a", 2u64)
                            .field("b", Json::fixed(0.149, 1)),
                    ]),
                ),
            )
            .field("speedup", Json::fixed(3.456, 2));
        let rendered = doc.render();
        assert_eq!(
            rendered,
            "{\n  \"bench\": \"t\",\n  \"sizes\": {\n    \"1000\": [\n      \
             {\"a\": 1, \"b\": 2.50},\n      {\"a\": 2, \"b\": 0.1}\n    ]\n  },\n  \
             \"speedup\": 3.46\n}\n"
        );
    }

    #[test]
    fn strings_are_escaped() {
        // A flat object is inline; escaping applies either way.
        let doc = Json::object().field("s", "a \"quoted\" \\ line\nnext");
        assert_eq!(
            doc.render(),
            "{\"s\": \"a \\\"quoted\\\" \\\\ line\\nnext\"}\n"
        );
    }

    #[test]
    fn scalar_arrays_render_inline() {
        let doc = Json::Array(vec![Json::Int(1), Json::Int(2), Json::fixed(3.0, 1)]);
        assert_eq!(doc.render(), "[1, 2, 3.0]\n");
    }
}
