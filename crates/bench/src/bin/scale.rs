//! Scale probes: the tracked performance numbers of this repo.
//!
//! # Modes
//!
//! * **Overlay** (default): builds large overlays and prints the
//!   Lemma-3.1 numbers plus wall-clock build time, complementing the
//!   `experiments` binary with sizes beyond the default sweep. Prints
//!   a Markdown table only; emits no JSON.
//!
//!   ```text
//!   cargo run -p drtree-bench --release --bin scale -- [max_n]
//!   ```
//!
//! * **R-tree backends** (`rtree`): measures bulk build and point-query
//!   cost of the pointer [`RTree`] (incremental and STR bulk load) vs
//!   the packed [`PackedRTree`] at 1k/10k/100k entries, and writes the
//!   numbers to `BENCH_rtree.json` (or the given path).
//!
//!   ```text
//!   cargo run -p drtree-bench --release --bin scale -- rtree [out.json] [--check <t>]
//!   ```
//!
//! * **Sharded oracle** (`shard`): measures the publish-matching side
//!   of [`drtree_pubsub::ShardedOracle`] at 10k/100k/250k/500k
//!   subscriptions across 1/2/4/8 shards — eager flush cost
//!   (`flush_ns`), single-probe matching (`single_ns` per event), and
//!   batched matching (`batch_ns` per event, batches of 16384 through
//!   one joint shard pass) — and writes `BENCH_shard.json` (or the
//!   given path). Flushes happen *before* timing, so the matching
//!   columns never include a rebuild (`Broker::flush_oracle`
//!   semantics).
//!
//!   ```text
//!   cargo run -p drtree-bench --release --bin scale -- shard [out.json] [--check <t>]
//!   ```
//!
//! * **Churn throughput** (`churn`): the mixed mutate/publish mode.
//!   Drives a Poisson subscribe/unsubscribe schedule
//!   ([`drtree_workloads::churn`]) interleaved with batched publishes
//!   against the sharded oracle at 10k/100k/250k subscriptions —
//!   ~1024 churn operations plus 1024 publishes per batch, 4 shards,
//!   one worker — three ways: incremental delta-layer maintenance
//!   with synchronous (inline) compaction, the delta fraction forced
//!   to `0.0` (compact-every-flush: the pre-delta rebuild-on-flush
//!   baseline), and incremental maintenance with **concurrent**
//!   compaction (frozen snapshots merged on a background worker;
//!   in-flight merges drained inside the timed window so the mode
//!   pays for all the work it starts). Per mode it records mean
//!   throughput *and* the publish-path pause profile: the longest
//!   single flush stall (`max_pause_ns`) plus p50/p99 whole-batch
//!   latencies. Writes `BENCH_churn.json`. The batch count per size
//!   is chosen so the measured window spans at least two full
//!   compaction cycles, so incremental numbers amortize real merges,
//!   not an empty delta honeymoon.
//!
//!   ```text
//!   cargo run -p drtree-bench --release --bin scale -- churn [out.json] [--check <t>]
//!   ```
//!
//! * **Pipelined dissemination** (`pipeline`): the overlay-side
//!   batching mode. Publishes the same event stream through a
//!   bulk-built overlay ([`DrTreeCluster::build_bulk`]) at 1k/4k/16k
//!   subscribers, once with the sequential
//!   [`DrTreeCluster::publish_from`] loop (every event drains the
//!   network before the next may enter) and once with
//!   [`DrTreeCluster::publish_pipeline_from`] at windows 1/8/32/128
//!   (a sliding window of events sharing dissemination rounds, with
//!   tag-scoped per-event accounting). Reports ns/event and
//!   rounds/event and asserts that every window delivers exactly the
//!   sequential delivery multiset. Writes `BENCH_pipeline.json` (or
//!   the given path).
//!
//!   ```text
//!   cargo run -p drtree-bench --release --bin scale -- pipeline [out.json] [--check <t>]
//!   ```
//!
//! * **Fault schedules** (`faults`): the robustness mode. Drives the
//!   six canonical adversarial [`FaultSchedule`]s (partition-then-
//!   heal, correlated regional crash, lossy burst, duplication +
//!   reordering window, corruption volleys, broker churn) against bulk-built
//!   overlays at 64/256/1024 subscribers with pipelined background
//!   publishes flowing *during* the faults, then measures
//!   rounds-to-legal recovery against a per-scale budget, exact
//!   post-recovery delivery (pipelined vs sequential, zero false
//!   negatives), and the in-fault injection-to-quiescence latency
//!   tail (p50/p99/p999). One additional probe runs the asynchronous
//!   engine under a duplication + reordering window. Writes
//!   `BENCH_faults.json` (or the given path).
//!
//!   ```text
//!   cargo run -p drtree-bench --release --bin scale -- faults [out.json] [--check <t>]
//!   ```
//!
//! * **Multi-publisher ingress** (`multipub`): the concurrent
//!   front-end mode. Drives [`drtree_pubsub::MultiBroker`] over a
//!   bulk-built 2048-subscriber broker with 1/4/16 publisher threads,
//!   each feeding a bounded ingress queue drained round-robin by the
//!   batching commit loop. Two phases per publisher count: a
//!   **closed-loop** saturation run (publishers block on
//!   backpressure; throughput = committed events / wall clock, with
//!   latency still billed from the moment each publish was issued)
//!   and an **open-loop** run at a fixed offered rate
//!   ([`drtree_workloads::ArrivalSchedule`]; latency billed from each
//!   event's *scheduled* arrival, so queue wait is measured instead
//!   of coordinated away). More publishers mean deeper committed
//!   batches — that pipeline-depth amortization, not thread
//!   parallelism, is the scaling mechanism (single-core friendly).
//!   Writes `BENCH_multipub.json` (or the given path).
//!
//!   ```text
//!   cargo run -p drtree-bench --release --bin scale -- multipub [out.json] [--check <t>]
//!   ```
//!
//! * **Moving subscriptions** (`mobility`): the continuous-query
//!   mobility mode. Drives a seeded random-waypoint
//!   [`drtree_workloads::MotionField`] over 100k/500k movers and
//!   applies every per-tick delta to a 4-shard
//!   [`drtree_pubsub::ShardedOracle`] two ways on identical
//!   trajectories: through the [`ShardedOracle::move_entry`] fast path
//!   (in-place `PackedRTree::update_entry` when the new rect stays in
//!   its leaf subtree, tombstone + restage otherwise, Hilbert re-key
//!   only on shard-boundary crossings) and through the naive
//!   remove + reinsert baseline. Both pay their flushes — and any
//!   compactions those trigger — inside the timed window. An untimed
//!   prelude pins two full ticks per size against a fresh-built
//!   reference oracle, and the move-path counters must account for
//!   every delta (`moved_in_place + rekeyed == moves`). Writes
//!   `BENCH_mobility.json` (or the given path).
//!
//!   ```text
//!   cargo run -p drtree-bench --release --bin scale -- mobility [out.json] [--check <t>]
//!   ```
//!
//! * **Federated fabric** (`federate`): the federation robustness
//!   mode. Splits one million subscriptions across a
//!   [`drtree_pubsub::FederatedFabric`] of 4/8/16 broker instances
//!   (each owning a contiguous Hilbert range, replicated to its curve
//!   neighbors) and drives the canonical broker-churn
//!   [`FaultSchedule`] through
//!   [`drtree_pubsub::run_federated_convergence`]: a broker crashes
//!   and warm-rejoins from a checkpoint, another crashes and rejoins
//!   cold, with client churn and publications flowing throughout.
//!   Reports rounds-to-legal reconvergence against the schedule
//!   budget, the in-fault and post-recovery publication latency
//!   tails, forward amplification, and exactness: every post-recovery
//!   probe's delivery set must equal the single-broker reference with
//!   zero false negatives. Writes `BENCH_federate.json` (or the given
//!   path).
//!
//!   ```text
//!   cargo run -p drtree-bench --release --bin scale -- federate [out.json] [--check <t>]
//!   ```
//!
//! # Emitted JSON
//!
//! The JSON files are committed at the repo root and refreshed
//! whenever the respective subsystem changes, so the perf trajectory
//! is reviewable across PRs (all emitted through
//! [`drtree_bench::json`]):
//!
//! * `BENCH_rtree.json` — per-backend `{size, build_ns, query_ns}`
//!   samples plus packed-vs-pointer speedups at the largest size.
//! * `BENCH_shard.json` — per-size, per-shard-count
//!   `{shards, flush_ns, single_ns, batch_ns}` samples plus the
//!   headline `batch4_vs_single1_at_100k` ratio: batched throughput on
//!   4 shards over single-probe throughput on 1 shard at 100k
//!   subscriptions.
//! * `BENCH_churn.json` — per-size, per-mode (incremental / rebuild /
//!   concurrent) `{ns_per_op, max_pause_ns, p50_batch_ns,
//!   p99_batch_ns}` plus maintenance accounting (compactions, staged
//!   absorbed, tombstones reclaimed, rebuilds), and the headlines
//!   `incremental_vs_rebuild_at_100k`,
//!   `concurrent_vs_sync_pause_ratio_at_250k`, and
//!   `concurrent_vs_sync_throughput_at_250k`.
//! * `BENCH_pipeline.json` — per-size sequential
//!   `{ns_per_event, rounds_per_event}` plus per-window
//!   `{window, ns_per_event, rounds_per_event, speedup}` samples, and
//!   the headline `pipeline_vs_sequential_at_16k_w32`.
//! * `BENCH_faults.json` — per-size, per-schedule `{recovery_rounds,
//!   budget, survivors, post_exact, fault/post p50/p99/p999, fault
//!   counter deltas}` samples, the asynchronous-engine probe, and the
//!   headlines `min_budget_headroom` (budget ÷ recovery rounds, worst
//!   schedule) and `all_exact`.
//! * `BENCH_multipub.json` — per-publisher-count closed-loop
//!   `{throughput_eps, mean_batch, p50/p99/p999/max ns}` and
//!   open-loop `{offered_eps, p50/p99/p999/max ns}` samples, and the
//!   headline `throughput_16pub_vs_1pub`.
//! * `BENCH_mobility.json` — per-mover-count `{ticks,
//!   update_ns_per_move, reinsert_ns_per_move, speedup,
//!   moved_in_place, rekeyed, update_compactions,
//!   reinsert_compactions}` samples and the headline
//!   `update_vs_reinsert_at_100k`.
//! * `BENCH_federate.json` — per-broker-count `{recovery_rounds,
//!   budget, crashes/rejoins, post_exact, fault/post p50/p99/p999,
//!   forward amplification, populate throughput}` samples over the
//!   broker-churn schedule at one million subscriptions, and the
//!   headlines `min_budget_headroom` and `all_exact`.
//!
//! # `--check` (regression gates)
//!
//! With `--check <t>` the binary still prints and writes everything,
//! then **exits nonzero** if the mode's headline ratio falls below
//! `t`:
//!
//! * `rtree --check t` — packed must beat the STR pointer build by ≥
//!   `t`× on *both* build and query at the largest size.
//! * `shard --check t` — batched publish matching on 4 shards must be
//!   ≥ `t`× the single-probe single-shard rate at 100k subscriptions.
//! * `churn --check t` — incremental maintenance must sustain ≥ `t`×
//!   the mutate+publish throughput of the rebuild-on-flush baseline at
//!   100k subscriptions; additionally (fixed bounds, not scaled by
//!   `t`), at 250k the concurrent path's max publish-path pause must
//!   be ≤ ½ the synchronous baseline's while sustaining ≥ 90% of its
//!   throughput.
//! * `pipeline --check t` — the windowed pipeline (window 32) must
//!   publish ≥ `t`× faster per event than the sequential loop at 16k
//!   subscribers.
//! * `faults --check t` — every schedule must re-reach a legal
//!   configuration with ≥ `t`× budget headroom, and post-recovery
//!   delivery (both engines) must stay exact. `t = 1.0` means "within
//!   budget"; CI uses a higher floor since steady-state recoveries
//!   finish in tens of rounds.
//! * `multipub --check t` — 16 concurrent publishers must sustain ≥
//!   `t`× the closed-loop commit throughput of a single publisher
//!   (the batching amortization claim).
//! * `mobility --check t` — the `move_entry` update path must apply
//!   motion ticks ≥ `t`× faster per move than remove + reinsert at
//!   100k movers (the in-place fast-path claim), with the exactness
//!   prelude and counter accounting asserted unconditionally.
//! * `federate --check t` — every broker count must reconverge from
//!   broker churn with ≥ `t`× budget headroom, with every publication
//!   resolved and post-recovery delivery equal to the single-broker
//!   reference (zero false negatives) asserted unconditionally.
//!
//! CI runs all eight gates with thresholds *below* the steady state
//! (see `.github/workflows/ci.yml`) so shared-runner noise cannot
//! flake a merge while a structural regression still fails the build.

use std::time::Instant;

use drtree_bench::json::Json;
use drtree_core::{
    run_convergence, AsyncDrTreeCluster, ConvergenceConfig, ConvergenceReport, DrTreeCluster,
    DrTreeConfig, FaultProfile, FaultSchedule, LatencyDistribution, ProcessId,
};
use drtree_pubsub::{
    run_federated_convergence, BatchMatches, Broker, CompactionMode, FedConfig,
    FedConvergenceConfig, FedEngine, FederatedFabric, IngressConfig, LatencySummary, MultiBroker,
    ShardedOracle,
};
use drtree_rtree::{PackedRTree, RTree, RTreeConfig, SplitMethod};
use drtree_sim::{LatencyModel, NetConfig};
use drtree_spatial::{Point, Rect, Schema};
use drtree_workloads::churn::{ChurnOp, PoissonChurn};
use drtree_workloads::{ArrivalSchedule, MotionField, MotionModel, SubscriptionWorkload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `[out.json] [--check <t>]` tail shared by the `rtree` and `shard`
/// modes.
fn parse_out_and_check(args: &[String], default_out: &str) -> (String, Option<f64>) {
    let mut out = default_out.to_string();
    let mut check = None;
    let mut rest = args.iter();
    while let Some(a) = rest.next() {
        if a == "--check" {
            check = Some(
                rest.next()
                    .and_then(|v| v.parse().ok())
                    .expect("--check requires a numeric threshold"),
            );
        } else {
            out = a.clone();
        }
    }
    (out, check)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("rtree") => {
            let (out, check) = parse_out_and_check(&args[1..], "BENCH_rtree.json");
            rtree_backends(&out, check);
        }
        Some("shard") => {
            let (out, check) = parse_out_and_check(&args[1..], "BENCH_shard.json");
            shard_oracle(&out, check);
        }
        Some("churn") => {
            let (out, check) = parse_out_and_check(&args[1..], "BENCH_churn.json");
            churn_throughput(&out, check);
        }
        Some("pipeline") => {
            let (out, check) = parse_out_and_check(&args[1..], "BENCH_pipeline.json");
            pipeline_dissemination(&out, check);
        }
        Some("faults") => {
            let (out, check) = parse_out_and_check(&args[1..], "BENCH_faults.json");
            fault_schedules(&out, check);
        }
        Some("multipub") => {
            let (out, check) = parse_out_and_check(&args[1..], "BENCH_multipub.json");
            multipub_ingress(&out, check);
        }
        Some("mobility") => {
            let (out, check) = parse_out_and_check(&args[1..], "BENCH_mobility.json");
            mobility_moves(&out, check);
        }
        Some("federate") => {
            let (out, check) = parse_out_and_check(&args[1..], "BENCH_federate.json");
            federated_fabric(&out, check);
        }
        other => {
            let max_n = other.and_then(|s| s.parse().ok()).unwrap_or(1024);
            overlay_scale(max_n);
        }
    }
}

/// The original overlay probe (Lemma 3.1 shape numbers).
fn overlay_scale(max_n: usize) {
    println!("| N | build (s) | height | ceil(log2 N) | max degree | mem max | mem mean |");
    println!("|---|-----------|--------|--------------|------------|---------|----------|");
    let mut n = 64usize;
    while n <= max_n {
        let mut rng = StdRng::seed_from_u64(9_000 + n as u64);
        let filters = SubscriptionWorkload::Uniform {
            min_extent: 2.0,
            max_extent: 20.0,
        }
        .generate::<2>(n, &mut rng);
        let start = Instant::now();
        let cluster = DrTreeCluster::build(DrTreeConfig::default(), 9_500, &filters);
        let elapsed = start.elapsed().as_secs_f64();
        assert!(cluster.check_legal().is_ok(), "N={n} not legal");
        let (mem_max, mem_mean) = cluster.memory_stats();
        println!(
            "| {n} | {elapsed:.2} | {} | {} | {} | {} | {:.1} |",
            cluster.height(),
            (n as f64).log2().ceil(),
            cluster.max_degree_observed(),
            mem_max,
            mem_mean,
        );
        n *= 2;
    }
}

/// One backend measurement at one size.
struct Sample {
    size: usize,
    build_ns: u64,
    query_ns: f64,
}

/// Constant-selectivity rectangle workload: extents 1–10 in a world
/// whose side grows with `sqrt(n)` so a point query matches ~10
/// entries at *every* size. Keeping the output constant isolates what
/// the backends differ in — traversal and layout — and mirrors the
/// serving regime the north star targets (an event at million-user
/// scale interests a bounded audience, not 0.3% of the planet).
fn scaled_rects(n: usize, seed: u64) -> Vec<Rect<2>> {
    const TARGET_MATCHES: f64 = 10.0;
    let avg_area = 5.5 * 5.5;
    let side = (n as f64 * avg_area / TARGET_MATCHES).sqrt();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let w = rng.gen_range(1.0..10.0);
            let h = rng.gen_range(1.0..10.0);
            let x = rng.gen_range(0.0..side - w);
            let y = rng.gen_range(0.0..side - h);
            Rect::new([x, y], [x + w, y + h])
        })
        .collect()
}

/// Pointer-vs-packed backend probe; writes `out_path`. With
/// `check = Some(t)`, exits nonzero unless the packed backend beats
/// the STR pointer build by at least `t`× on both build and query at
/// the largest size — the regression gate CI runs (with a threshold
/// below the ~2× steady state to absorb runner noise).
fn rtree_backends(out_path: &str, check: Option<f64>) {
    const SIZES: [usize; 4] = [1_000, 10_000, 100_000, 500_000];
    const QUERY_PROBES: usize = 20_000;
    let config = RTreeConfig::new(4, 16, SplitMethod::RStar).expect("valid");

    let mut incremental_samples = Vec::new();
    let mut pointer_samples = Vec::new();
    let mut packed_samples = Vec::new();
    // `(size, save_ns, load_ns, first_query_ns, restore_vs_build)` at
    // the 100k/500k points.
    let mut snapshot_samples: Vec<(usize, u64, u64, u64, f64)> = Vec::new();
    println!("| N | backend | build (ns) | point query (ns) |");
    println!("|---|---------|------------|------------------|");
    for size in SIZES {
        let rects = scaled_rects(size, 7_700 + size as u64);
        let entries: Vec<(usize, Rect<2>)> = rects.iter().copied().enumerate().collect();
        let probes: Vec<Point<2>> = rects
            .iter()
            .cycle()
            .take(QUERY_PROBES)
            .map(Rect::center)
            .collect();

        // Pointer backend built the way the seed's hot consumers did:
        // one insert per subscription.
        let (incremental, incremental_build_ns) = time_build(1, || {
            let mut tree: RTree<usize, 2> = RTree::new(config);
            for (k, r) in &entries {
                tree.insert(*k, *r);
            }
            tree
        });
        let incremental_query_ns = time_queries(&probes, |p| incremental.search_point(p).len());
        println!(
            "| {size} | pointer-incremental | {incremental_build_ns} | {incremental_query_ns:.1} |"
        );
        incremental_samples.push(Sample {
            size,
            build_ns: incremental_build_ns,
            query_ns: incremental_query_ns,
        });
        drop(incremental);

        // Pointer backend at its best: STR bulk load.
        let (pointer, pointer_build_ns) =
            time_build_with(3, || entries.clone(), |e| RTree::bulk_load(config, e));
        let pointer_query_ns = time_queries(&probes, |p| pointer.search_point(p).len());
        println!("| {size} | pointer-str | {pointer_build_ns} | {pointer_query_ns:.1} |");
        pointer_samples.push(Sample {
            size,
            build_ns: pointer_build_ns,
            query_ns: pointer_query_ns,
        });

        // Packed backend: Hilbert bulk load, visitor queries.
        let (packed, packed_build_ns) =
            time_build_with(3, || entries.clone(), PackedRTree::bulk_load);
        let packed_query_ns = time_queries(&probes, |p| {
            let mut count = 0usize;
            packed.for_each_containing(p, |_, _| count += 1);
            count
        });
        println!("| {size} | packed | {packed_build_ns} | {packed_query_ns:.1} |");
        packed_samples.push(Sample {
            size,
            build_ns: packed_build_ns,
            query_ns: packed_query_ns,
        });

        // Flat-buffer snapshot columns: serialize, zero-copy restore,
        // and the first query on the restored tree (which pays the
        // lazy key materialization the load deferred). Restore skips
        // the bulk checksum — that is `verify_snapshot`, off the
        // cold-start path — so the gate below compares it against the
        // full Hilbert bulk build.
        if size >= 100_000 {
            let (snapshot, save_ns) = time_build(3, || packed.save());
            let snapshot_len = snapshot.len();
            let (restored, load_ns) = time_build_with(
                5,
                || snapshot.clone(),
                |b| PackedRTree::<usize, 2>::load(b).expect("snapshot loads"),
            );
            assert_eq!(restored.len(), packed.len(), "restore is lossless");
            let t0 = Instant::now();
            let mut count = 0usize;
            restored.for_each_containing(&probes[0], |_, _| count += 1);
            let first_query_ns = t0.elapsed().as_nanos() as u64;
            assert!(count > 0, "probe center hits its own entry");
            let restore_vs_build = packed_build_ns as f64 / load_ns.max(1) as f64;
            println!(
                "| {size} | packed-snapshot | save {save_ns} ns ({snapshot_len} B) | \
                 load {load_ns} ns, first query {first_query_ns} ns, \
                 restore {restore_vs_build:.0}x faster than build |"
            );
            snapshot_samples.push((size, save_ns, load_ns, first_query_ns, restore_vs_build));
        }
    }

    let last_incr = incremental_samples.last().expect("sizes non-empty");
    let last_pointer = pointer_samples.last().expect("sizes non-empty");
    let last_packed = packed_samples.last().expect("sizes non-empty");
    let vs_incr_build = last_incr.build_ns as f64 / last_packed.build_ns as f64;
    let vs_incr_query = last_incr.query_ns / last_packed.query_ns;
    let vs_str_build = last_pointer.build_ns as f64 / last_packed.build_ns as f64;
    let vs_str_query = last_pointer.query_ns / last_packed.query_ns;
    println!(
        "packed speedup at {}: {vs_incr_build:.1}x build / {vs_incr_query:.1}x query vs incremental, \
         {vs_str_build:.1}x build / {vs_str_query:.1}x query vs STR",
        last_packed.size
    );

    let backends = [
        ("pointer_incremental", &incremental_samples),
        ("pointer_str", &pointer_samples),
        ("packed", &packed_samples),
    ]
    .into_iter()
    .fold(Json::object(), |obj, (name, samples)| {
        obj.field(
            name,
            Json::Array(
                samples
                    .iter()
                    .map(|s| {
                        Json::object()
                            .field("size", s.size)
                            .field("build_ns", s.build_ns)
                            .field("query_ns", Json::fixed(s.query_ns, 1))
                    })
                    .collect(),
            ),
        )
    });
    let json = Json::object()
        .field("bench", "rtree-backends")
        .field(
            "workload",
            "uniform 2d, extents 1-10, world scaled to ~10 matches per point query",
        )
        .field(
            "query",
            "point search at entry centers, mean ns over 20000 probes",
        )
        .field("backends", backends)
        .field(
            "snapshot",
            Json::Array(
                snapshot_samples
                    .iter()
                    .map(|&(size, save_ns, load_ns, first_query_ns, ratio)| {
                        Json::object()
                            .field("size", size)
                            .field("save_ns", save_ns)
                            .field("load_ns", load_ns)
                            .field("first_query_ns", first_query_ns)
                            .field("restore_vs_build", Json::fixed(ratio, 1))
                    })
                    .collect(),
            ),
        )
        .field(
            format!("packed_speedup_at_{}k", last_packed.size / 1000).as_str(),
            Json::object()
                .field("build_vs_incremental", Json::fixed(vs_incr_build, 2))
                .field("query_vs_incremental", Json::fixed(vs_incr_query, 2))
                .field("build_vs_str", Json::fixed(vs_str_build, 2))
                .field("query_vs_str", Json::fixed(vs_str_query, 2)),
        );
    std::fs::write(out_path, json.render()).expect("write BENCH_rtree.json");
    println!("wrote {out_path}");

    if let Some(threshold) = check {
        if vs_str_build < threshold || vs_str_query < threshold {
            eprintln!(
                "REGRESSION: packed speedup vs STR fell below {threshold}x \
                 (build {vs_str_build:.2}x, query {vs_str_query:.2}x)"
            );
            std::process::exit(1);
        }
        println!("check passed: packed >= {threshold}x vs STR on build and query");
        // Zero-copy restore must stay in a different complexity class
        // than the bulk build it replaces — the cold-start promise of
        // the flat-buffer snapshot format.
        const RESTORE_GATE: f64 = 50.0;
        let &(size, _, _, _, ratio) = snapshot_samples
            .last()
            .expect("snapshot measured at the largest size");
        if ratio < RESTORE_GATE {
            eprintln!(
                "REGRESSION: snapshot restore at {size} is only {ratio:.1}x \
                 faster than bulk build (gate {RESTORE_GATE}x)"
            );
            std::process::exit(1);
        }
        println!("check passed: restore >= {RESTORE_GATE}x faster than bulk build at {size}");
    }
}

/// One sharded-oracle measurement at one (size, shard-count) point.
struct ShardSample {
    shards: usize,
    flush_ns: u64,
    single_ns: f64,
    batch_ns: f64,
}

/// Sharded-oracle probe (see the module docs): single vs batched
/// publish matching per shard count, `BENCH_shard.json`, and the
/// `batch4_vs_single1_at_100k` gate.
fn shard_oracle(out_path: &str, check: Option<f64>) {
    const SIZES: [usize; 4] = [10_000, 100_000, 250_000, 500_000];
    const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
    const QUERY_PROBES: usize = 32_768;
    const BATCH: usize = 16_384;
    const REPS: usize = 5;
    const GATE_SIZE: usize = 100_000;
    const GATE_SHARDS: usize = 4;

    let mut per_size: Vec<(usize, Vec<ShardSample>)> = Vec::new();
    let mut single_at_gate = None;
    let mut batch_at_gate = None;
    println!(
        "| N | shards | flush (ns) | single publish (ns/event) | batched publish (ns/event) |"
    );
    println!(
        "|---|--------|------------|---------------------------|----------------------------|"
    );
    for size in SIZES {
        let rects = scaled_rects(size, 7_700 + size as u64);
        let probes: Vec<Point<2>> = rects
            .iter()
            .cycle()
            .take(QUERY_PROBES)
            .map(Rect::center)
            .collect();
        let mut samples = Vec::new();
        for shards in SHARD_COUNTS {
            let mut oracle: ShardedOracle<2> = ShardedOracle::new(shards);
            for (i, r) in rects.iter().enumerate() {
                oracle.insert(ProcessId::from_raw(i as u64), *r);
            }
            // Eager flush outside the timed matching loops — the
            // `Broker::flush_oracle` discipline — so single/batched
            // columns measure matching only.
            let flush_ns = oracle.flush().elapsed.as_nanos() as u64;

            // Best-of-`REPS`, single and batched passes interleaved
            // so clock drift and neighbor noise hit both columns the
            // same way; the first round doubles as buffer warm-up.
            let mut hits = Vec::new();
            let mut batch = BatchMatches::new();
            let mut sink = 0usize;
            let mut single_ns = f64::INFINITY;
            let mut batch_ns = f64::INFINITY;
            for _ in 0..REPS {
                let t0 = Instant::now();
                for p in &probes {
                    oracle.match_point_into(p, &mut hits);
                    sink += hits.len();
                }
                single_ns = single_ns.min(t0.elapsed().as_nanos() as f64 / probes.len() as f64);

                let t0 = Instant::now();
                for chunk in probes.chunks(BATCH) {
                    oracle.match_batch_into(chunk, &mut batch);
                    sink += batch.total_hits();
                }
                batch_ns = batch_ns.min(t0.elapsed().as_nanos() as f64 / probes.len() as f64);
            }
            std::hint::black_box(sink);

            println!("| {size} | {shards} | {flush_ns} | {single_ns:.1} | {batch_ns:.1} |");
            if size == GATE_SIZE && shards == 1 {
                single_at_gate = Some(single_ns);
            }
            if size == GATE_SIZE && shards == GATE_SHARDS {
                batch_at_gate = Some(batch_ns);
            }
            samples.push(ShardSample {
                shards,
                flush_ns,
                single_ns,
                batch_ns,
            });
        }
        per_size.push((size, samples));
    }

    let single1 = single_at_gate.expect("gate size measured");
    let batch4 = batch_at_gate.expect("gate size measured");
    let speedup = single1 / batch4;
    println!(
        "batched publish on {GATE_SHARDS} shards vs single publish on 1 shard at {GATE_SIZE}: \
         {speedup:.2}x ({single1:.1} -> {batch4:.1} ns/event)"
    );

    let sizes = per_size
        .iter()
        .fold(Json::object(), |obj, (size, samples)| {
            obj.field(
                size.to_string().as_str(),
                Json::Array(
                    samples
                        .iter()
                        .map(|s| {
                            Json::object()
                                .field("shards", s.shards)
                                .field("flush_ns", s.flush_ns)
                                .field("single_ns", Json::fixed(s.single_ns, 1))
                                .field("batch_ns", Json::fixed(s.batch_ns, 1))
                        })
                        .collect(),
                ),
            )
        });
    let json = Json::object()
        .field("bench", "sharded-oracle")
        .field(
            "workload",
            "uniform 2d, extents 1-10, world scaled to ~10 matches per point query",
        )
        .field(
            "query",
            "publish matching at entry centers, best-of-5 mean ns per event over 32768 probes; \
             batches of 16384; flush excluded (paid eagerly)",
        )
        .field("sizes", sizes)
        .field("batch4_vs_single1_at_100k", Json::fixed(speedup, 2));
    std::fs::write(out_path, json.render()).expect("write BENCH_shard.json");
    println!("wrote {out_path}");

    if let Some(threshold) = check {
        if speedup < threshold {
            eprintln!(
                "REGRESSION: batched publish speedup fell below {threshold}x \
                 (measured {speedup:.2}x)"
            );
            std::process::exit(1);
        }
        println!("check passed: batched >= {threshold}x vs single-shard single publish");
    }
}

/// One churn-mode measurement at one size, for one maintenance mode.
#[derive(Debug, Clone, Copy)]
struct ChurnSample {
    /// Mean nanoseconds per operation (mutations + publishes) over the
    /// whole measured window, maintenance included.
    ns_per_op: f64,
    /// Largest single publish-path pause: the longest any one
    /// in-window `flush()` blocked the driver. This is the
    /// stop-the-world number concurrent compaction exists to kill.
    max_pause_ns: u64,
    /// End-of-window shutdown cost: draining every in-flight and
    /// still-owed merge so both modes pay for identical work inside
    /// the timed window. Not a publish-path pause — the serving loop
    /// never experiences it — but part of `ns_per_op`.
    drain_ns: u64,
    /// Median whole-batch latency (mutations + flush + batched
    /// publish), nanoseconds.
    p50_batch_ns: u64,
    /// 99th-percentile whole-batch latency, nanoseconds.
    p99_batch_ns: u64,
    /// Delta-layer merges performed during the window.
    compactions: u64,
    /// Staged entries absorbed by those merges.
    staged_absorbed: u64,
    /// Tombstones reclaimed by those merges.
    tombstones_reclaimed: u64,
    /// Packed-tree rebuilds (compactions + rebalances).
    rebuilds: u64,
}

/// The `q`-quantile of `samples` by nearest-rank (samples get sorted).
fn percentile_ns(samples: &mut [u64], q: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    let rank = ((samples.len() - 1) as f64 * q).round() as usize;
    samples[rank]
}

/// One pre-generated churn mutation, replayed identically against both
/// maintenance modes.
#[derive(Debug, Clone, Copy)]
enum MutOp {
    Join(u64, Rect<2>),
    Leave(u64, Rect<2>),
}

/// The mixed mutate/publish throughput probe (see the module docs):
/// a Poisson subscribe/unsubscribe schedule interleaved with batched
/// publishes, measured three ways on a single worker — incremental
/// delta-layer maintenance with synchronous (inline) compaction, the
/// compact-every-flush rebuild baseline, and incremental maintenance
/// with *concurrent* compaction (frozen snapshots merged on a
/// background worker, two-phase flush). Per run it records throughput
/// plus the publish-path pause profile: the longest single flush
/// stall and the p50/p99 whole-batch latencies. Writes
/// `BENCH_churn.json` and gates `incremental_vs_rebuild_at_100k`,
/// the concurrent-vs-synchronous max-pause ratio, and the
/// concurrent-vs-synchronous throughput ratio.
fn churn_throughput(out_path: &str, check: Option<f64>) {
    const SIZES: [usize; 3] = [10_000, 100_000, 250_000];
    const SHARDS: usize = 4;
    const PUBLISHES_PER_BATCH: usize = 1024;
    /// Expected joins (and leaves) per batch: λ of each Poisson
    /// process, one batch per schedule time unit.
    const CHURN_RATE: f64 = 512.0;
    const GATE_SIZE: usize = 100_000;

    const PAUSE_GATE_SIZE: usize = 250_000;
    /// CI bound on the concurrent path: its max publish-path pause
    /// must be at most half the synchronous baseline's…
    const PAUSE_RATIO_FLOOR: f64 = 2.0;
    /// …while sustaining at least 90% of its throughput.
    const THROUGHPUT_RATIO_FLOOR: f64 = 0.9;

    let default_fraction = drtree_rtree::DEFAULT_DELTA_FRACTION;
    let mut per_size: Vec<(usize, ChurnSample, ChurnSample, ChurnSample)> = Vec::new();
    println!(
        "| N | batches | incremental (ns/op) | rebuild (ns/op) | concurrent (ns/op) | speedup | \
         sync max pause (ms) | conc max pause (ms) | pause ratio |"
    );
    println!(
        "|---|---------|---------------------|-----------------|--------------------|---------|\
         ---------------------|---------------------|-------------|"
    );
    for size in SIZES {
        let rects = scaled_rects(size, 7_700 + size as u64);
        // Enough batches that the measured window spans ≥ 2 full
        // compaction cycles of the default fraction — the incremental
        // numbers must amortize real merges.
        let churn_per_batch = 2.0 * CHURN_RATE;
        let batches =
            ((2.0 * default_fraction * size as f64 / churn_per_batch).ceil() as usize).max(16);

        // Pre-generate the whole mutation schedule (and the publish
        // probes) outside any timed region, by simulating the live set
        // the way the driver will mutate it. Both modes replay exactly
        // this schedule.
        let mut rng = StdRng::seed_from_u64(9_100 + size as u64);
        let world = drtree_spatial::hilbert::GridMapper::world_of(rects.iter())
            .expect("rect pool is non-empty");
        let schedule = PoissonChurn {
            lambda_join: CHURN_RATE,
            lambda_leave: CHURN_RATE,
        }
        .schedule(batches as f64, &mut rng);
        let mut sim_live: Vec<(u64, Rect<2>)> =
            (0..size as u64).zip(rects.iter().copied()).collect();
        let mut next_id = size as u64;
        let mut batch_ops: Vec<Vec<MutOp>> = vec![Vec::new(); batches];
        let mut mutations = 0usize;
        for event in &schedule {
            let batch = (event.at as usize).min(batches - 1);
            match event.op {
                ChurnOp::Join => {
                    // A fresh subscription inside the mapped world (so
                    // churn exercises the delta layer, not constant
                    // world-growth rebalances).
                    let w = rng.gen_range(1.0..10.0);
                    let h = rng.gen_range(1.0..10.0);
                    let x = rng.gen_range(world.lo(0)..world.hi(0) - w);
                    let y = rng.gen_range(world.lo(1)..world.hi(1) - h);
                    let rect = Rect::new([x, y], [x + w, y + h]);
                    batch_ops[batch].push(MutOp::Join(next_id, rect));
                    sim_live.push((next_id, rect));
                    next_id += 1;
                }
                ChurnOp::Leave => {
                    if sim_live.is_empty() {
                        continue;
                    }
                    let i = rng.gen_range(0..sim_live.len());
                    let (id, rect) = sim_live.swap_remove(i);
                    batch_ops[batch].push(MutOp::Leave(id, rect));
                }
            }
            mutations += 1;
        }
        let probes: Vec<Point<2>> = rects
            .iter()
            .cycle()
            .take(batches * PUBLISHES_PER_BATCH)
            .map(Rect::center)
            .collect();

        let run = |fraction: f64, mode: CompactionMode| -> ChurnSample {
            let mut oracle: ShardedOracle<2> = ShardedOracle::new(SHARDS);
            oracle.set_threads(1); // committed numbers are single-core
            oracle.set_delta_fraction(fraction);
            oracle.set_compaction_mode(mode);
            for (i, r) in rects.iter().enumerate() {
                oracle.insert(ProcessId::from_raw(i as u64), *r);
            }
            oracle.flush();
            let compactions0 = oracle.compaction_count();
            let staged0 = oracle.staged_absorbed_total();
            let tombstones0 = oracle.tombstones_reclaimed_total();
            let rebuilds0 = oracle.rebuild_count();

            let mut batch = BatchMatches::new();
            let mut sink = 0usize;
            let mut pauses: Vec<u64> = Vec::with_capacity(batches + 1);
            let mut batch_ns: Vec<u64> = Vec::with_capacity(batches);
            let t0 = Instant::now();
            for (ops, chunk) in batch_ops.iter().zip(probes.chunks(PUBLISHES_PER_BATCH)) {
                let t_batch = Instant::now();
                for op in ops {
                    match *op {
                        MutOp::Join(id, rect) => oracle.insert(ProcessId::from_raw(id), rect),
                        MutOp::Leave(id, rect) => {
                            assert!(
                                oracle.remove(ProcessId::from_raw(id), &rect),
                                "scheduled leave not found"
                            );
                        }
                    }
                }
                // The broker discipline: maintenance is paid eagerly
                // per batch (here inside the timed window — this mode
                // measures mutate+publish throughput, maintenance
                // included). The flush duration *is* the publish-path
                // pause: synchronous compaction stalls here for the
                // whole merge, the two-phase path only for the
                // freeze/swap bookkeeping.
                let t_flush = Instant::now();
                oracle.flush();
                pauses.push(t_flush.elapsed().as_nanos() as u64);
                oracle.match_batch_into(chunk, &mut batch);
                sink += batch.total_hits();
                batch_ns.push(t_batch.elapsed().as_nanos() as u64);
            }
            // Drain inside the timed window until no merge is in
            // flight or owed: the staggered concurrent path must pay
            // for every compaction the synchronous baseline performed
            // in-window, so the throughput comparison is work-parity.
            // (Shutdown cost, not a publish-path pause — the serving
            // loop never experiences it; reported as drain_ns.)
            let t_drain = Instant::now();
            loop {
                let f = oracle.flush();
                oracle.finish_compactions();
                if oracle.compacting_shards() == 0 && f == drtree_pubsub::OracleFlush::default() {
                    break;
                }
            }
            let drain_ns = t_drain.elapsed().as_nanos() as u64;
            let elapsed = t0.elapsed().as_nanos() as f64;
            std::hint::black_box(sink);
            ChurnSample {
                ns_per_op: elapsed / (mutations + batches * PUBLISHES_PER_BATCH) as f64,
                max_pause_ns: pauses.iter().copied().max().unwrap_or(0),
                drain_ns,
                p50_batch_ns: percentile_ns(&mut batch_ns, 0.50),
                p99_batch_ns: percentile_ns(&mut batch_ns, 0.99),
                compactions: oracle.compaction_count() - compactions0,
                staged_absorbed: oracle.staged_absorbed_total() - staged0,
                tombstones_reclaimed: oracle.tombstones_reclaimed_total() - tombstones0,
                rebuilds: oracle.rebuild_count() - rebuilds0,
            }
        };

        // Best-of-REPS, the gated modes interleaved so slow-machine
        // noise (the dominant variance source at these run lengths)
        // hits both the same way; the rebuild baseline is 10-20x off
        // its gate, one run suffices.
        const REPS: usize = 3;
        let best = |a: ChurnSample, b: ChurnSample| {
            if b.ns_per_op < a.ns_per_op {
                b
            } else {
                a
            }
        };
        let mut incremental = run(default_fraction, CompactionMode::Synchronous);
        let mut concurrent = run(default_fraction, CompactionMode::Concurrent);
        for _ in 1..REPS {
            incremental = best(
                incremental,
                run(default_fraction, CompactionMode::Synchronous),
            );
            concurrent = best(
                concurrent,
                run(default_fraction, CompactionMode::Concurrent),
            );
        }
        let rebuild = run(0.0, CompactionMode::Synchronous);
        let speedup = rebuild.ns_per_op / incremental.ns_per_op;
        println!(
            "| {size} | {batches} | {:.1} | {:.1} | {:.1} | {speedup:.2}x | {:.2} | {:.2} | {:.2} |",
            incremental.ns_per_op,
            rebuild.ns_per_op,
            concurrent.ns_per_op,
            incremental.max_pause_ns as f64 / 1e6,
            concurrent.max_pause_ns as f64 / 1e6,
            incremental.max_pause_ns as f64 / concurrent.max_pause_ns.max(1) as f64,
        );
        per_size.push((size, incremental, rebuild, concurrent));
    }

    let (_, incr_gate, rebuild_gate, _) = per_size
        .iter()
        .find(|&&(size, _, _, _)| size == GATE_SIZE)
        .expect("gate size measured");
    let speedup = rebuild_gate.ns_per_op / incr_gate.ns_per_op;
    println!(
        "incremental maintenance vs rebuild-on-flush at {GATE_SIZE}: {speedup:.2}x \
         ({:.1} -> {:.1} ns/op)",
        rebuild_gate.ns_per_op, incr_gate.ns_per_op
    );
    let (_, sync_gate, _, conc_gate) = per_size
        .iter()
        .find(|&&(size, _, _, _)| size == PAUSE_GATE_SIZE)
        .expect("pause gate size measured");
    let pause_ratio = sync_gate.max_pause_ns as f64 / conc_gate.max_pause_ns.max(1) as f64;
    let throughput_ratio = sync_gate.ns_per_op / conc_gate.ns_per_op;
    println!(
        "concurrent vs synchronous compaction at {PAUSE_GATE_SIZE}: max pause {:.2}ms -> \
         {:.2}ms ({pause_ratio:.1}x smaller), throughput ratio {throughput_ratio:.2}",
        sync_gate.max_pause_ns as f64 / 1e6,
        conc_gate.max_pause_ns as f64 / 1e6,
    );

    let mode_json = |s: &ChurnSample| {
        Json::object()
            .field("ns_per_op", Json::fixed(s.ns_per_op, 1))
            .field("max_pause_ns", s.max_pause_ns)
            .field("drain_ns", s.drain_ns)
            .field("p50_batch_ns", s.p50_batch_ns)
            .field("p99_batch_ns", s.p99_batch_ns)
            .field("compactions", s.compactions)
            .field("staged_absorbed", s.staged_absorbed)
            .field("tombstones_reclaimed", s.tombstones_reclaimed)
            .field("rebuilds", s.rebuilds)
    };
    let sizes = per_size
        .iter()
        .fold(Json::object(), |obj, (size, incr, rebuild, conc)| {
            obj.field(
                size.to_string().as_str(),
                Json::object()
                    .field("incremental", mode_json(incr))
                    .field("rebuild", mode_json(rebuild))
                    .field("concurrent", mode_json(conc))
                    .field(
                        "speedup",
                        Json::fixed(rebuild.ns_per_op / incr.ns_per_op, 2),
                    )
                    .field(
                        "pause_ratio",
                        Json::fixed(
                            incr.max_pause_ns as f64 / conc.max_pause_ns.max(1) as f64,
                            2,
                        ),
                    ),
            )
        });
    let json = Json::object()
        .field("bench", "churn-oracle")
        .field(
            "workload",
            "uniform 2d, extents 1-10, world scaled to ~10 matches per point query; \
             Poisson churn (lambda_join = lambda_leave = 512/batch) interleaved with \
             1024 batched publishes per batch",
        )
        .field(
            "query",
            "mean ns per operation (mutations + publishes) over the whole window, \
             maintenance included; 4 shards, single worker; window spans >= 2 \
             compaction cycles of the default delta fraction. Three modes: \
             incremental = delta layer with synchronous (inline) compaction, \
             rebuild = compact-every-flush baseline, concurrent = delta layer \
             with frozen-snapshot merges on a background worker (two-phase \
             flush, staggered to one merge in flight; every in-flight and \
             owed merge drained inside the timed window for work parity). \
             max_pause_ns is the longest single in-window flush stall on the \
             publish path; drain_ns the end-of-window shutdown drain; \
             p50/p99_batch_ns are whole-batch latencies",
        )
        .field("sizes", sizes)
        .field("incremental_vs_rebuild_at_100k", Json::fixed(speedup, 2))
        .field(
            "concurrent_vs_sync_pause_ratio_at_250k",
            Json::fixed(pause_ratio, 2),
        )
        .field(
            "concurrent_vs_sync_throughput_at_250k",
            Json::fixed(throughput_ratio, 2),
        );
    std::fs::write(out_path, json.render()).expect("write BENCH_churn.json");
    println!("wrote {out_path}");

    if let Some(threshold) = check {
        let mut failed = false;
        if speedup < threshold {
            eprintln!(
                "REGRESSION: incremental churn speedup fell below {threshold}x \
                 (measured {speedup:.2}x)"
            );
            failed = true;
        }
        if pause_ratio < PAUSE_RATIO_FLOOR {
            eprintln!(
                "REGRESSION: concurrent compaction's max pause is no longer <= \
                 1/{PAUSE_RATIO_FLOOR} of the synchronous baseline at {PAUSE_GATE_SIZE} \
                 (measured ratio {pause_ratio:.2}x)"
            );
            failed = true;
        }
        if throughput_ratio < THROUGHPUT_RATIO_FLOOR {
            eprintln!(
                "REGRESSION: concurrent compaction throughput fell below \
                 {THROUGHPUT_RATIO_FLOOR} of the synchronous path at {PAUSE_GATE_SIZE} \
                 (measured ratio {throughput_ratio:.2})"
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "check passed: incremental >= {threshold}x vs rebuild-on-flush; concurrent \
             pause <= 1/{PAUSE_RATIO_FLOOR} of synchronous with >= {THROUGHPUT_RATIO_FLOOR} \
             throughput"
        );
    }
}

/// One pipelined-dissemination measurement at one (size, window).
struct PipelineSample {
    window: usize,
    ns_per_event: f64,
    rounds_per_event: f64,
}

/// The overlay-side batching probe (see the module docs): sequential
/// `publish_from` loop vs `publish_pipeline_from` at several window
/// sizes, on identical bulk-built overlays replaying an identical
/// event schedule. Writes `BENCH_pipeline.json` and gates the
/// `pipeline_vs_sequential_at_16k_w32` ratio.
fn pipeline_dissemination(out_path: &str, check: Option<f64>) {
    const SIZES: [usize; 3] = [1_000, 4_000, 16_000];
    const WINDOWS: [usize; 4] = [1, 8, 32, 128];
    const EVENTS: usize = 128;
    const GATE_SIZE: usize = 16_000;
    const GATE_WINDOW: usize = 32;

    let mut per_size: Vec<(usize, f64, f64, Vec<PipelineSample>)> = Vec::new();
    let mut seq_at_gate = None;
    let mut pipe_at_gate = None;
    println!("| N | mode | ns/event | rounds/event | speedup |");
    println!("|---|------|----------|--------------|---------|");
    for size in SIZES {
        let rects = scaled_rects(size, 7_700 + size as u64);
        let base: DrTreeCluster<2> =
            DrTreeCluster::build_bulk(DrTreeConfig::default(), 9_600 + size as u64, &rects);
        // One fixed schedule per size: rotating publishers, events at
        // subscription centers (traffic that interests somebody), the
        // same stream replayed by every mode.
        let ids = base.ids();
        let mut rng = StdRng::seed_from_u64(9_700 + size as u64);
        let events: Vec<(ProcessId, Point<2>)> = (0..EVENTS)
            .map(|_| {
                let publisher = ids[rng.gen_range(0..ids.len())];
                let point = rects[rng.gen_range(0..rects.len())].center();
                (publisher, point)
            })
            .collect();

        // Sequential reference: drain the network once per event.
        let mut cluster = base.clone();
        let t0 = Instant::now();
        let seq_reports: Vec<_> = events
            .iter()
            .map(|&(publisher, point)| cluster.publish_from(publisher, point))
            .collect();
        let seq_ns = t0.elapsed().as_nanos() as f64 / EVENTS as f64;
        let seq_rounds = seq_reports.iter().map(|r| r.rounds).sum::<u64>() as f64 / EVENTS as f64;
        let seq_receivers: Vec<&[ProcessId]> =
            seq_reports.iter().map(|r| r.receivers.as_slice()).collect();
        println!("| {size} | sequential | {seq_ns:.0} | {seq_rounds:.1} | 1.00x |");
        if size == GATE_SIZE {
            seq_at_gate = Some(seq_ns);
        }

        let mut samples = Vec::new();
        for window in WINDOWS {
            let mut cluster = base.clone();
            let t0 = Instant::now();
            let reports = cluster.publish_pipeline_from(&events, window);
            let ns = t0.elapsed().as_nanos() as f64 / EVENTS as f64;
            let rounds = reports.iter().map(|r| r.rounds).sum::<u64>() as f64 / EVENTS as f64;
            // Pipelining must not change what is delivered: identical
            // overlays replaying an identical schedule must reproduce
            // every sequential per-event delivery set (the property
            // tests pin this on small overlays; this guards the
            // measured configuration).
            for (i, report) in reports.iter().enumerate() {
                assert_eq!(
                    report.receivers.as_slice(),
                    seq_receivers[i],
                    "window {window} changed event {i}'s deliveries at {size}"
                );
            }
            let speedup = seq_ns / ns;
            println!("| {size} | window {window} | {ns:.0} | {rounds:.1} | {speedup:.2}x |");
            if size == GATE_SIZE && window == GATE_WINDOW {
                pipe_at_gate = Some(ns);
            }
            samples.push(PipelineSample {
                window,
                ns_per_event: ns,
                rounds_per_event: rounds,
            });
        }
        per_size.push((size, seq_ns, seq_rounds, samples));
    }

    let seq = seq_at_gate.expect("gate size measured");
    let pipe = pipe_at_gate.expect("gate size measured");
    let speedup = seq / pipe;
    println!(
        "windowed pipeline (w={GATE_WINDOW}) vs sequential publish at {GATE_SIZE}: \
         {speedup:.2}x ({seq:.0} -> {pipe:.0} ns/event)"
    );

    let sizes = per_size.iter().fold(
        Json::object(),
        |obj, (size, seq_ns, seq_rounds, samples)| {
            obj.field(
                size.to_string().as_str(),
                Json::object()
                    .field(
                        "sequential",
                        Json::object()
                            .field("ns_per_event", Json::fixed(*seq_ns, 1))
                            .field("rounds_per_event", Json::fixed(*seq_rounds, 1)),
                    )
                    .field(
                        "windows",
                        Json::Array(
                            samples
                                .iter()
                                .map(|s| {
                                    Json::object()
                                        .field("window", s.window)
                                        .field("ns_per_event", Json::fixed(s.ns_per_event, 1))
                                        .field(
                                            "rounds_per_event",
                                            Json::fixed(s.rounds_per_event, 1),
                                        )
                                        .field("speedup", Json::fixed(seq_ns / s.ns_per_event, 2))
                                })
                                .collect(),
                        ),
                    ),
            )
        },
    );
    let json = Json::object()
        .field("bench", "pipelined-dissemination")
        .field(
            "workload",
            "uniform 2d, extents 1-10, world scaled to ~10 matches per point query; \
             bulk-built overlay (m=2, M=4); 128 events at subscription centers from \
             rotating publishers",
        )
        .field(
            "query",
            "overlay publish ns per event, whole stream timed; sequential = drain per \
             event, windows = sliding-window pipeline with tag-scoped accounting; \
             rounds_per_event is the per-event injection-to-quiescence span",
        )
        .field("sizes", sizes)
        .field("pipeline_vs_sequential_at_16k_w32", Json::fixed(speedup, 2));
    std::fs::write(out_path, json.render()).expect("write BENCH_pipeline.json");
    println!("wrote {out_path}");

    if let Some(threshold) = check {
        if speedup < threshold {
            eprintln!(
                "REGRESSION: pipelined publish speedup fell below {threshold}x \
                 (measured {speedup:.2}x)"
            );
            std::process::exit(1);
        }
        println!("check passed: pipeline >= {threshold}x vs sequential publish");
    }
}

/// One multipub measurement: a fresh bulk-built broker wrapped in a
/// [`MultiBroker`], `publishers` threads running `body`, then drain +
/// teardown. Returns (wall-clock seconds, committed events, latency
/// summary, batches committed).
fn multipub_run(
    rects: &[Rect<2>],
    publishers: usize,
    seed: u64,
    body: impl Fn(usize, &drtree_pubsub::PublisherHandle<2>) + Sync,
) -> (f64, u64, LatencySummary, f64) {
    const QUEUE_CAPACITY: usize = 32;
    const MAX_BATCH: usize = 512;
    let schema = Schema::new(["x", "y"]);
    let (mut broker, _ids) =
        Broker::build_bulk(schema, DrTreeConfig::default(), seed, rects).expect("2d schema");
    // Pin the overlay window at its maximum: the committed batch depth
    // (queue backlog aggregated across publishers) is then the only
    // thing that varies with the publisher count.
    broker.set_publish_window(256);
    let multi = MultiBroker::new(
        broker,
        IngressConfig {
            queue_capacity: QUEUE_CAPACITY,
            fair_budget: QUEUE_CAPACITY,
            max_batch: MAX_BATCH,
            audit_log: false,
            refresh_snapshots: false,
            auto_drain: true,
        },
    );
    let mut rng = StdRng::seed_from_u64(seed ^ 0xff);
    let handles: Vec<_> = (0..publishers)
        .map(|_| {
            let r = rects[rng.gen_range(0..rects.len())];
            multi.add_publisher(r)
        })
        .collect();
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for (i, handle) in handles.iter().enumerate() {
            let body = &body;
            s.spawn(move || body(i, handle));
        }
    });
    multi.drain();
    let elapsed = t0.elapsed().as_secs_f64();
    let rate = multi.rate();
    assert_eq!(rate.committed, rate.submitted, "ingress lost publications");
    let latency = multi.latency();
    let stats = multi.stats();
    assert_eq!(stats.ingress_committed(), rate.committed);
    let batches = multi.batches().max(1);
    multi.finish();
    (
        elapsed,
        rate.committed,
        latency,
        rate.committed as f64 / batches as f64,
    )
}

/// The concurrent ingress probe (see the module docs): closed-loop
/// saturation throughput plus open-loop latency quantiles at 1/4/16
/// publishers over one 2048-subscriber broker configuration. Writes
/// `BENCH_multipub.json` and gates `throughput_16pub_vs_1pub`.
fn multipub_ingress(out_path: &str, check: Option<f64>) {
    const SUBS: usize = 2_048;
    const PUBLISHERS: [usize; 3] = [1, 4, 16];
    const TOTAL_EVENTS: usize = 512;
    const OPEN_EVENTS: usize = 256;

    let rects = scaled_rects(SUBS, 8_800);
    // Pre-generated per-publisher event scripts: points at
    // subscription centers (traffic that interests somebody).
    let script = |publisher: usize, n: usize, seed: u64| -> Vec<Point<2>> {
        let mut rng = StdRng::seed_from_u64(seed + publisher as u64);
        (0..n)
            .map(|_| rects[rng.gen_range(0..rects.len())].center())
            .collect()
    };

    println!("| publishers | mode | events/s | mean batch | p50 | p99 | p999 |");
    println!("|------------|------|----------|------------|-----|-----|------|");
    let mut closed_tput: Vec<(usize, f64)> = Vec::new();
    let mut samples: Vec<(usize, f64, f64, LatencySummary, f64, LatencySummary)> = Vec::new();
    for &publishers in &PUBLISHERS {
        // Closed loop: every publisher saturates its bounded queue;
        // backpressure is the pacing. Latency is billed from the
        // moment each publish was issued (blocking wait included).
        let per_pub = TOTAL_EVENTS / publishers;
        let (elapsed, committed, closed_lat, mean_batch) =
            multipub_run(&rects, publishers, 8_900, |i, handle| {
                for point in script(i, per_pub, 8_950) {
                    handle.publish(point).expect("ingress open");
                }
            });
        assert_eq!(committed as usize, per_pub * publishers);
        let tput = committed as f64 / elapsed;
        println!(
            "| {publishers} | closed | {tput:.0} | {mean_batch:.0} | {:.2}ms | {:.2}ms | {:.2}ms |",
            closed_lat.p50_ns as f64 / 1e6,
            closed_lat.p99_ns as f64 / 1e6,
            closed_lat.p999_ns as f64 / 1e6,
        );
        closed_tput.push((publishers, tput));

        // Open loop: a fixed offered rate well under single-publisher
        // capacity, identical for every publisher count, latency
        // billed from each event's scheduled arrival time. The
        // schedule is split round-robin across publishers.
        let base_tput = closed_tput[0].1;
        let offered = base_tput * 0.5;
        let mean_gap_ns = (1e9 / offered) as u64;
        let arrivals = ArrivalSchedule::Poisson { mean_gap_ns }.generate(OPEN_EVENTS, 8_970);
        let (_, committed, open_lat, _) = multipub_run(&rects, publishers, 9_000, |i, handle| {
            let points = script(i, OPEN_EVENTS, 9_050);
            // Round-robin split of the shared schedule: publisher i
            // serves events i, i+P, i+2P, …
            for (&at, point) in arrivals.iter().zip(points).skip(i).step_by(publishers) {
                // Pace to the schedule, then bill from it.
                loop {
                    let now = handle.now_ns();
                    if now >= at {
                        break;
                    }
                    let gap = at - now;
                    if gap > 1_000_000 {
                        std::thread::sleep(std::time::Duration::from_nanos(gap - 500_000));
                    } else {
                        std::thread::yield_now();
                    }
                }
                handle.publish_at(point, at).expect("ingress open");
            }
        });
        assert_eq!(committed as usize, OPEN_EVENTS);
        println!(
            "| {publishers} | open @{offered:.0}/s | - | - | {:.2}ms | {:.2}ms | {:.2}ms |",
            open_lat.p50_ns as f64 / 1e6,
            open_lat.p99_ns as f64 / 1e6,
            open_lat.p999_ns as f64 / 1e6,
        );
        samples.push((publishers, tput, mean_batch, closed_lat, offered, open_lat));
    }

    let one = closed_tput[0].1;
    let sixteen = closed_tput.last().unwrap().1;
    let scaling = sixteen / one;
    println!(
        "16-publisher vs single-publisher closed-loop throughput: {scaling:.2}x \
         ({one:.0} -> {sixteen:.0} events/s)"
    );

    let lat_json = |l: &LatencySummary| {
        Json::object()
            .field("p50_ns", l.p50_ns)
            .field("p99_ns", l.p99_ns)
            .field("p999_ns", l.p999_ns)
            .field("max_ns", l.max_ns)
    };
    let json = Json::object()
        .field("bench", "multipub-ingress")
        .field(
            "workload",
            "uniform 2d, extents 1-10, world scaled to ~10 matches per point query; \
             bulk-built 2048-subscriber broker, overlay window pinned at 256; events at \
             subscription centers; bounded ingress queues (capacity 32, fair budget 32, \
             max batch 512) drained round-robin by the commit loop",
        )
        .field(
            "query",
            "closed = publishers saturate their queues, throughput over the whole \
             commit span, latency billed from publish issue time; open = Poisson \
             arrivals at half the single-publisher closed-loop rate, latency billed \
             from scheduled arrival (no coordinated omission)",
        )
        .field("subscribers", SUBS)
        .field(
            "samples",
            Json::Array(
                samples
                    .iter()
                    .map(|(publishers, tput, mean_batch, closed, offered, open)| {
                        Json::object()
                            .field("publishers", *publishers)
                            .field(
                                "closed",
                                lat_json(closed)
                                    .field("throughput_eps", Json::fixed(*tput, 0))
                                    .field("mean_batch", Json::fixed(*mean_batch, 1)),
                            )
                            .field(
                                "open",
                                lat_json(open).field("offered_eps", Json::fixed(*offered, 0)),
                            )
                    })
                    .collect(),
            ),
        )
        .field("throughput_16pub_vs_1pub", Json::fixed(scaling, 2));
    std::fs::write(out_path, json.render()).expect("write BENCH_multipub.json");
    println!("wrote {out_path}");

    if let Some(threshold) = check {
        if scaling < threshold {
            eprintln!(
                "REGRESSION: 16-publisher ingress scaling fell below {threshold}x \
                 (measured {scaling:.2}x)"
            );
            std::process::exit(1);
        }
        println!("check passed: 16-publisher ingress >= {threshold}x single-publisher");
    }
}

/// The adversarial robustness probe (see the module docs): drives the
/// six canonical [`FaultSchedule`]s against bulk-built overlays at
/// 64/256/1024 subscribers, measuring rounds-to-legal recovery,
/// post-recovery delivery exactness (pipelined vs sequential), and the
/// in-fault injection-to-quiescence latency tail; plus one
/// asynchronous-engine SLO probe under a duplication + reordering
/// window. Writes `BENCH_faults.json` and gates
/// `min_budget_headroom` (budget ÷ recovery rounds, worst case).
fn fault_schedules(out_path: &str, check: Option<f64>) {
    const SIZES: [usize; 3] = [64, 256, 1024];
    const ASYNC_SIZE: usize = 256;
    const ASYNC_EVENTS: usize = 64;

    let cfg = ConvergenceConfig::default();
    let mut per_size: Vec<(usize, Vec<(FaultSchedule<2>, ConvergenceReport)>)> = Vec::new();
    let mut min_headroom = f64::INFINITY;
    let mut all_converged = true;
    let mut all_exact = true;
    println!(
        "| N | schedule | recovery (rounds) | budget | survivors | exact | fault p99/p999 | post p999 |"
    );
    println!(
        "|---|----------|-------------------|--------|-----------|-------|----------------|-----------|"
    );
    for size in SIZES {
        let rects = scaled_rects(size, 7_700 + size as u64);
        let world = Rect::union_all(rects.iter()).expect("rect pool is non-empty");
        let mut runs = Vec::new();
        for mut schedule in FaultSchedule::canonical(&world, size) {
            // Recovery after a merge/crash repairs level by level, so
            // the budget grows with the scale (generously — steady
            // state is tens of rounds, see BENCH_faults.json).
            schedule.budget = 1_500 + 6 * size as u64;
            let mut cluster =
                DrTreeCluster::build_bulk(DrTreeConfig::default(), 9_800 + size as u64, &rects);
            let report = run_convergence(&mut cluster, &schedule, &cfg);
            let exact = report.post_pipeline_matches_sequential && report.post_false_negatives == 0;
            all_exact &= exact;
            match report.recovery_rounds {
                Some(r) => {
                    min_headroom = min_headroom.min(report.budget as f64 / r.max(1) as f64);
                }
                None => all_converged = false,
            }
            println!(
                "| {size} | {} | {} | {} | {} | {} | {}/{} | {} |",
                schedule.name,
                report
                    .recovery_rounds
                    .map_or("DNF".into(), |r| r.to_string()),
                report.budget,
                report.survivors,
                if exact { "yes" } else { "NO" },
                report.fault_latency.p99,
                report.fault_latency.p999,
                report.post_latency.p999,
            );
            runs.push((schedule, report));
        }
        per_size.push((size, runs));
    }

    // Asynchronous-engine SLO probe: pipelined publishes under a
    // duplication + reordering window (loss-free, so delivery stays
    // exact); the latency distribution is in simulated time units.
    let rects = scaled_rects(ASYNC_SIZE, 7_700 + ASYNC_SIZE as u64);
    let net = NetConfig {
        latency: LatencyModel::Uniform { min: 1, max: 4 },
        ..NetConfig::default()
    };
    let async_config = DrTreeConfig {
        tick_interval: 8,
        failure_timeout: 40,
        join_retry: 32,
        ..DrTreeConfig::default()
    };
    let mut async_cluster: AsyncDrTreeCluster<2> =
        AsyncDrTreeCluster::build_bulk(async_config, net, 9_900, &rects);
    async_cluster.set_faults(FaultProfile {
        duplicate_probability: 0.2,
        reorder_probability: 0.2,
        reorder_extra: 3,
        ..FaultProfile::default()
    });
    let ids = async_cluster.ids();
    let mut rng = StdRng::seed_from_u64(9_901);
    let events: Vec<(ProcessId, Point<2>)> = (0..ASYNC_EVENTS)
        .map(|_| {
            let publisher = ids[rng.gen_range(0..ids.len())];
            let point = rects[rng.gen_range(0..rects.len())].center();
            (publisher, point)
        })
        .collect();
    let reports = async_cluster.publish_pipeline_from(&events, 32);
    let async_fn: u64 = reports.iter().map(|r| r.false_negatives.len() as u64).sum();
    all_exact &= async_fn == 0;
    let mut spans: Vec<u64> = reports.iter().map(|r| r.rounds).collect();
    let async_latency = LatencyDistribution::from_samples(&mut spans);
    println!(
        "async engine (n={ASYNC_SIZE}, dup 0.2 / reorder 0.2x3): p50={} p99={} p999={} \
         time units, false negatives {async_fn}",
        async_latency.p50, async_latency.p99, async_latency.p999
    );
    println!(
        "worst budget headroom across schedules: {}",
        if all_converged {
            format!("{min_headroom:.1}x")
        } else {
            "DNF".into()
        }
    );

    let run_json = |schedule: &FaultSchedule<2>, r: &ConvergenceReport| {
        Json::object()
            .field("schedule", schedule.name.as_str())
            .field("script", r.schedule.as_str())
            .field("recovery_rounds", r.recovery_rounds.unwrap_or(u64::MAX))
            .field("converged", u64::from(r.recovery_rounds.is_some()))
            .field("budget", r.budget)
            .field("survivors", r.survivors)
            .field("crashed", r.crashed)
            .field(
                "post_exact",
                u64::from(r.post_pipeline_matches_sequential && r.post_false_negatives == 0),
            )
            .field("fault_p50", r.fault_latency.p50)
            .field("fault_p99", r.fault_latency.p99)
            .field("fault_p999", r.fault_latency.p999)
            .field("post_p50", r.post_latency.p50)
            .field("post_p99", r.post_latency.p99)
            .field("post_p999", r.post_latency.p999)
            .field("duplicated", r.duplicated)
            .field("reordered", r.reordered)
            .field("partitioned_drops", r.partitioned_drops)
            .field("dropped", r.dropped)
    };
    let sizes = per_size.iter().fold(Json::object(), |obj, (size, runs)| {
        obj.field(
            size.to_string().as_str(),
            Json::Array(runs.iter().map(|(s, r)| run_json(s, r)).collect()),
        )
    });
    let json = Json::object()
        .field("bench", "fault-schedules")
        .field(
            "workload",
            "uniform 2d, extents 1-10, world scaled to ~10 matches per point query; \
             bulk-built overlays; six canonical fault schedules (partition-heal, \
             regional-crash, lossy-burst, dup-reorder, corruption-volley, \
             broker-churn) with pipelined background publishes during the \
             faulty phase",
        )
        .field(
            "query",
            "recovery_rounds = rounds from forced heal to check_legal == Ok \
             (stride-quantized); fault/post percentiles are per-event \
             injection-to-quiescence spans in rounds; post_exact = pipelined \
             post-recovery delivery equals the sequential reference with zero \
             false negatives; async probe runs the event engine under a \
             duplication + reordering window (spans in time units)",
        )
        .field("sizes", sizes)
        .field(
            "async_probe",
            Json::object()
                .field("size", ASYNC_SIZE)
                .field("profile", "dup 0.2, reorder 0.2 extra 3, latency U(1,4)")
                .field("events", ASYNC_EVENTS)
                .field("p50", async_latency.p50)
                .field("p99", async_latency.p99)
                .field("p999", async_latency.p999)
                .field("false_negatives", async_fn),
        )
        .field(
            "min_budget_headroom",
            if all_converged {
                Json::fixed(min_headroom, 2)
            } else {
                Json::fixed(0.0, 2)
            },
        )
        .field("all_exact", u64::from(all_exact));
    std::fs::write(out_path, json.render()).expect("write BENCH_faults.json");
    println!("wrote {out_path}");

    if let Some(threshold) = check {
        let mut failed = false;
        if !all_converged {
            eprintln!("REGRESSION: a fault schedule did not re-reach a legal configuration");
            failed = true;
        } else if min_headroom < threshold {
            eprintln!(
                "REGRESSION: budget headroom fell below {threshold}x \
                 (worst measured {min_headroom:.2}x)"
            );
            failed = true;
        }
        if !all_exact {
            eprintln!("REGRESSION: post-recovery delivery is no longer exact");
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "check passed: every schedule converged with >= {threshold}x budget headroom \
             and exact post-recovery delivery"
        );
    }
}

/// Federation robustness probe: one million subscriptions spread
/// across a [`FederatedFabric`] of 4/8/16 brokers, each owning one
/// contiguous Hilbert range replicated to its curve neighbors, driven
/// through the canonical broker-churn [`FaultSchedule`] (crash → warm
/// rejoin from checkpoint → second crash → cold rejoin) with client
/// churn and publications flowing throughout. Writes
/// `BENCH_federate.json` and gates `min_budget_headroom` (budget ÷
/// reconvergence rounds, worst broker count); exactness — every
/// publication resolved, post-recovery delivery equal to the
/// single-broker reference, zero false negatives — is asserted
/// unconditionally.
fn federated_fabric(out_path: &str, check: Option<f64>) {
    const SUBS: usize = 1_000_000;
    const BROKERS: [usize; 3] = [4, 8, 16];

    let rects = scaled_rects(SUBS, 11_000);
    let world = Rect::union_all(rects.iter()).expect("rect pool is non-empty");
    let cfg = FedConvergenceConfig::default();
    let mut runs = Vec::new();
    let mut min_headroom = f64::INFINITY;
    let mut all_converged = true;
    let mut all_exact = true;
    println!(
        "| brokers | populate (M subs/s) | recovery (rounds) | budget | crashes | warm/cold | \
         exact | fault p99/p999 | post p999 | fwd/event |"
    );
    println!(
        "|---------|---------------------|-------------------|--------|---------|-----------|\
         -------|----------------|-----------|-----------|"
    );
    for k in BROKERS {
        let schedule = FaultSchedule::broker_churn();
        let mut fabric = FederatedFabric::new(
            k,
            &world,
            11_100 + k as u64,
            FedEngine::Rounds,
            FedConfig::default(),
        );
        let t0 = Instant::now();
        fabric.bulk_populate(&rects);
        assert!(
            fabric.settle(2_000),
            "populated fabric (k={k}) never reached legal: {:?}",
            fabric.check_legal()
        );
        let populate_ns = t0.elapsed().as_nanos() as u64;
        let report = run_federated_convergence(&mut fabric, &schedule, &cfg);

        let exact = report.post_matches_reference
            && report.post_false_negatives == 0
            && report.events_unresolved == 0;
        all_exact &= exact;
        match report.recovery_rounds {
            Some(r) => min_headroom = min_headroom.min(report.budget as f64 / r.max(1) as f64),
            None => all_converged = false,
        }
        let populate_rate = SUBS as f64 / (populate_ns as f64 / 1e9) / 1e6;
        let fwd_per_event = report.forwarded as f64 / report.events_completed.max(1) as f64;
        println!(
            "| {k} | {populate_rate:.2} | {} | {} | {} | {}/{} | {} | {}/{} | {} | {fwd_per_event:.2} |",
            report
                .recovery_rounds
                .map_or("DNF".into(), |r| r.to_string()),
            report.budget,
            report.broker_crashes,
            report.warm_rejoins,
            report.cold_rejoins + report.cold_fallbacks,
            if exact { "yes" } else { "NO" },
            report.fault_latency.p99,
            report.fault_latency.p999,
            report.post_latency.p999,
        );
        runs.push((k, populate_ns, report));
    }
    println!(
        "worst budget headroom across broker counts: {}",
        if all_converged {
            format!("{min_headroom:.1}x")
        } else {
            "DNF".into()
        }
    );

    let samples = Json::Array(
        runs.iter()
            .map(|(k, populate_ns, r)| {
                Json::object()
                    .field("brokers", *k as u64)
                    .field("subscriptions", SUBS as u64)
                    .field("populate_ns", *populate_ns)
                    .field("recovery_rounds", r.recovery_rounds.unwrap_or(u64::MAX))
                    .field("converged", u64::from(r.recovery_rounds.is_some()))
                    .field("budget", r.budget)
                    .field("broker_crashes", r.broker_crashes)
                    .field("warm_rejoins", r.warm_rejoins)
                    .field("cold_rejoins", r.cold_rejoins)
                    .field("cold_fallbacks", r.cold_fallbacks)
                    .field(
                        "post_exact",
                        u64::from(r.post_matches_reference && r.post_false_negatives == 0),
                    )
                    .field("post_false_negatives", r.post_false_negatives)
                    .field("events_completed", r.events_completed)
                    .field("events_unresolved", r.events_unresolved)
                    .field("forwarded", r.forwarded)
                    .field("delivered_matches", r.delivered_matches)
                    .field("fault_p50", r.fault_latency.p50)
                    .field("fault_p99", r.fault_latency.p99)
                    .field("fault_p999", r.fault_latency.p999)
                    .field("post_p50", r.post_latency.p50)
                    .field("post_p99", r.post_latency.p99)
                    .field("post_p999", r.post_latency.p999)
            })
            .collect(),
    );
    let json = Json::object()
        .field("bench", "federated-fabric")
        .field(
            "workload",
            "uniform 2d, extents 1-10, world scaled to ~10 matches per point query; \
             1M subscriptions bulk-populated across K brokers (contiguous Hilbert \
             ranges, curve-neighbor replication); canonical broker-churn schedule \
             (crash -> warm rejoin from checkpoint -> crash -> cold rejoin) with \
             client churn and publications flowing throughout",
        )
        .field(
            "query",
            "recovery_rounds = rounds from schedule end to check_legal == Ok with \
             no publication outstanding (stride-quantized); fault/post percentiles \
             are per-publication injection-to-resolution spans in rounds; \
             post_exact = every post-recovery probe's delivery set equals the \
             single-broker reference with zero false negatives",
        )
        .field("brokers", samples)
        .field(
            "min_budget_headroom",
            if all_converged {
                Json::fixed(min_headroom, 2)
            } else {
                Json::fixed(0.0, 2)
            },
        )
        .field("all_exact", u64::from(all_exact));
    std::fs::write(out_path, json.render()).expect("write BENCH_federate.json");
    println!("wrote {out_path}");

    if let Some(threshold) = check {
        let mut failed = false;
        if !all_converged {
            eprintln!("REGRESSION: a broker count did not re-reach a legal configuration");
            failed = true;
        } else if min_headroom < threshold {
            eprintln!(
                "REGRESSION: broker-churn budget headroom fell below {threshold}x \
                 (worst measured {min_headroom:.2}x)"
            );
            failed = true;
        }
        if !all_exact {
            eprintln!("REGRESSION: federated post-recovery delivery is no longer exact");
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "check passed: every broker count reconverged with >= {threshold}x budget \
             headroom and exact post-recovery delivery"
        );
    }
}

/// Best-of-`reps` wall-clock build time; returns the last tree built.
/// The per-repetition entry clone happens outside the timed region.
fn time_build<T>(reps: usize, mut build: impl FnMut() -> T) -> (T, u64) {
    let mut best = u64::MAX;
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let tree = build();
        best = best.min(t0.elapsed().as_nanos() as u64);
        out = Some(tree);
    }
    (out.expect("reps > 0"), best)
}

/// Like [`time_build`] but excludes input preparation from the timing.
fn time_build_with<I, T>(
    reps: usize,
    mut setup: impl FnMut() -> I,
    mut build: impl FnMut(I) -> T,
) -> (T, u64) {
    let mut best = u64::MAX;
    let mut out = None;
    for _ in 0..reps {
        let input = setup();
        let t0 = Instant::now();
        let tree = build(input);
        best = best.min(t0.elapsed().as_nanos() as u64);
        out = Some(tree);
    }
    (out.expect("reps > 0"), best)
}

/// Mean per-query nanoseconds over all probes.
fn time_queries<const D: usize>(
    probes: &[Point<D>],
    mut query: impl FnMut(&Point<D>) -> usize,
) -> f64 {
    // Warm-up pass, also forcing the work to be observable.
    let mut hits = 0usize;
    for p in probes.iter().take(100) {
        hits += query(p);
    }
    let t0 = Instant::now();
    for p in probes {
        hits += query(p);
    }
    let elapsed = t0.elapsed().as_nanos() as f64;
    std::hint::black_box(hits);
    elapsed / probes.len() as f64
}

/// One mobility measurement at one mover count.
struct MobilitySample {
    movers: usize,
    ticks: usize,
    update_ns_per_move: f64,
    reinsert_ns_per_move: f64,
    speedup: f64,
    moved_in_place: u64,
    rekeyed: u64,
    update_compactions: u64,
    reinsert_compactions: u64,
}

/// The moving-subscriptions probe (see the module docs): identical
/// seeded random-waypoint trajectories applied through
/// [`ShardedOracle::move_entry`] and through remove + reinsert, both
/// flushing (and compacting) inside the timed window, with an untimed
/// per-tick exactness prelude against a fresh-built reference oracle.
/// Writes `BENCH_mobility.json` and gates `update_vs_reinsert_at_100k`.
fn mobility_moves(out_path: &str, check: Option<f64>) {
    // (movers, timed ticks): fewer ticks at 500k keep the wall clock
    // bounded while still spanning several flush cycles.
    const SIZES: [(usize, usize); 2] = [(100_000, 6), (500_000, 3)];
    const SHARDS: usize = 4;
    const EXACT_TICKS: usize = 2;
    const PROBE_GRID: usize = 6;
    const GATE_SIZE: usize = 100_000;

    let mut samples: Vec<MobilitySample> = Vec::new();
    let mut headline = None;
    println!(
        "| movers | ticks | update (ns/move) | reinsert (ns/move) | speedup | in-place | rekeyed |"
    );
    println!(
        "|--------|-------|------------------|--------------------|---------|----------|---------|"
    );
    for (movers, ticks) in SIZES {
        let seed = 31_000 + movers as u64;
        let rects = scaled_rects(movers, seed);
        // Same world construction as `scaled_rects`: side scaled so a
        // point query matches ~10 movers at every size.
        let side = (movers as f64 * 5.5 * 5.5 / 10.0).sqrt();
        let world = Rect::new([0.0, 0.0], [side, side]);
        // Small per-tick deltas — the fast path's contract: movers
        // drift at most half a unit per tick under extents of 1-10, so
        // most moves stay inside their leaf subtree and the delta
        // layer grows only from genuine escapes and boundary
        // crossings. The baseline replays the *same* small deltas, it
        // just pays remove+reinsert (and the per-tick compactions that
        // forces) for them.
        let model = MotionModel::RandomWaypoint {
            min_speed: 0.05,
            max_speed: 0.5,
        };
        let ids: Vec<ProcessId> = (0..movers).map(|i| ProcessId::from_raw(i as u64)).collect();

        // Pre-generate the whole trajectory once so both paths replay
        // byte-identical deltas and neither pays motion-model cost
        // inside its timed window.
        let mut field = MotionField::new(model, world, rects.clone(), seed ^ 0x0b11e);
        let trajectory: Vec<Vec<(u32, Rect<2>)>> =
            (0..ticks + EXACT_TICKS).map(|_| field.step()).collect();

        // Untimed exactness prelude, on the same oracle the timed
        // window then measures: the first EXACT_TICKS ticks are
        // applied through `move_entry` and pinned per tick against an
        // oracle rebuilt from scratch over the same rect set. This
        // doubles as steady-state warm-up — the timed window measures
        // a mobility engine already tracking its movers, not the
        // one-off cost of meeting 100k ids for the first time.
        let mut update_oracle: ShardedOracle<2> = ShardedOracle::new(SHARDS);
        for (id, r) in ids.iter().zip(&rects) {
            update_oracle.insert(*id, *r);
        }
        update_oracle.flush();
        let mut current = rects.clone();
        for tick in &trajectory[..EXACT_TICKS] {
            for &(i, new) in tick {
                let i = i as usize;
                assert!(
                    update_oracle.move_entry(ids[i], &current[i], new),
                    "move_entry lost mover {i}"
                );
                current[i] = new;
            }
            update_oracle.flush();
            let mut reference: ShardedOracle<2> = ShardedOracle::new(SHARDS);
            for (id, r) in ids.iter().zip(&current) {
                reference.insert(*id, *r);
            }
            reference.flush();
            let mut got = Vec::new();
            let mut want = Vec::new();
            for gx in 0..PROBE_GRID {
                for gy in 0..PROBE_GRID {
                    let p = Point::new([
                        side * (gx as f64 + 0.5) / PROBE_GRID as f64,
                        side * (gy as f64 + 0.5) / PROBE_GRID as f64,
                    ]);
                    update_oracle.match_point_into(&p, &mut got);
                    reference.match_point_into(&p, &mut want);
                    got.sort_unstable();
                    want.sort_unstable();
                    assert_eq!(got, want, "post-tick delivery set diverged from rebuild");
                }
            }
        }
        let moved_rects = current;

        // Timed update pass: move_entry per delta, flush per tick.
        let mut current = moved_rects.clone();
        let t0 = Instant::now();
        for tick in &trajectory[EXACT_TICKS..] {
            for &(i, new) in tick {
                let i = i as usize;
                update_oracle.move_entry(ids[i], &current[i], new);
                current[i] = new;
            }
            update_oracle.flush();
        }
        let update_ns = t0.elapsed().as_nanos() as f64;
        let moves = (ticks * movers) as u64;
        let all_moves = ((ticks + EXACT_TICKS) * movers) as u64;
        update_oracle.flush();
        assert_eq!(
            update_oracle.moved_in_place_total() + update_oracle.rekeyed_total(),
            all_moves,
            "move counters must account for every delta"
        );

        // Baseline pass: remove + reinsert per delta over the
        // identical trajectory, flush per tick (its compactions are
        // part of the price being measured). Same warm-up discipline:
        // the prelude ticks run untimed on the same oracle first.
        let mut reinsert_oracle: ShardedOracle<2> = ShardedOracle::new(SHARDS);
        for (id, r) in ids.iter().zip(&rects) {
            reinsert_oracle.insert(*id, *r);
        }
        reinsert_oracle.flush();
        let mut current = rects.clone();
        for tick in &trajectory[..EXACT_TICKS] {
            for &(i, new) in tick {
                let i = i as usize;
                assert!(reinsert_oracle.remove(ids[i], &current[i]));
                reinsert_oracle.insert(ids[i], new);
                current[i] = new;
            }
            reinsert_oracle.flush();
        }
        let t0 = Instant::now();
        for tick in &trajectory[EXACT_TICKS..] {
            for &(i, new) in tick {
                let i = i as usize;
                assert!(reinsert_oracle.remove(ids[i], &current[i]));
                reinsert_oracle.insert(ids[i], new);
                current[i] = new;
            }
            reinsert_oracle.flush();
        }
        let reinsert_ns = t0.elapsed().as_nanos() as f64;

        // Both paths must land on the same final index: probe the grid
        // once more against each other.
        let mut got = Vec::new();
        let mut want = Vec::new();
        for gx in 0..PROBE_GRID {
            for gy in 0..PROBE_GRID {
                let p = Point::new([
                    side * (gx as f64 + 0.5) / PROBE_GRID as f64,
                    side * (gy as f64 + 0.5) / PROBE_GRID as f64,
                ]);
                update_oracle.match_point_into(&p, &mut got);
                reinsert_oracle.match_point_into(&p, &mut want);
                got.sort_unstable();
                want.sort_unstable();
                assert_eq!(got, want, "update and reinsert paths diverged");
            }
        }

        let update_ns_per_move = update_ns / moves as f64;
        let reinsert_ns_per_move = reinsert_ns / moves as f64;
        let speedup = reinsert_ns_per_move / update_ns_per_move;
        println!(
            "| {movers} | {ticks} | {update_ns_per_move:.1} | {reinsert_ns_per_move:.1} | \
             {speedup:.2}x | {} | {} |",
            update_oracle.moved_in_place_total(),
            update_oracle.rekeyed_total(),
        );
        if movers == GATE_SIZE {
            headline = Some(speedup);
        }
        samples.push(MobilitySample {
            movers,
            ticks,
            update_ns_per_move,
            reinsert_ns_per_move,
            speedup,
            moved_in_place: update_oracle.moved_in_place_total(),
            rekeyed: update_oracle.rekeyed_total(),
            update_compactions: update_oracle.compaction_count(),
            reinsert_compactions: reinsert_oracle.compaction_count(),
        });
    }

    let speedup = headline.expect("gate size measured");
    println!(
        "move_entry vs remove+reinsert at {GATE_SIZE} movers: {speedup:.2}x \
         ({:.1} -> {:.1} ns/move)",
        samples[0].reinsert_ns_per_move, samples[0].update_ns_per_move,
    );

    let sizes = samples.iter().fold(Json::object(), |obj, s| {
        obj.field(
            s.movers.to_string().as_str(),
            Json::object()
                .field("ticks", s.ticks)
                .field("update_ns_per_move", Json::fixed(s.update_ns_per_move, 1))
                .field(
                    "reinsert_ns_per_move",
                    Json::fixed(s.reinsert_ns_per_move, 1),
                )
                .field("speedup", Json::fixed(s.speedup, 2))
                .field("moved_in_place", s.moved_in_place)
                .field("rekeyed", s.rekeyed)
                .field("update_compactions", s.update_compactions)
                .field("reinsert_compactions", s.reinsert_compactions),
        )
    });
    let json = Json::object()
        .field("bench", "mobility-moves")
        .field(
            "workload",
            "uniform 2d movers, extents 1-10, world scaled to ~10 matches per point query",
        )
        .field(
            "motion",
            "seeded random waypoint, speed 0.05-0.5 per tick, 4 shards, flush per tick; \
             identical trajectories for both paths; exactness prelude of 2 pinned ticks",
        )
        .field("sizes", sizes)
        .field("update_vs_reinsert_at_100k", Json::fixed(speedup, 2));
    std::fs::write(out_path, json.render()).expect("write BENCH_mobility.json");
    println!("wrote {out_path}");

    if let Some(threshold) = check {
        if speedup < threshold {
            eprintln!(
                "REGRESSION: move_entry speedup over remove+reinsert fell below {threshold}x \
                 (measured {speedup:.2}x)"
            );
            std::process::exit(1);
        }
        println!("check passed: move_entry >= {threshold}x vs remove+reinsert at 100k movers");
    }
}
