//! Scale probe: builds large overlays and prints the Lemma-3.1 numbers
//! plus wall-clock build time. Complements the `experiments` binary
//! with sizes beyond the default sweep.
//!
//! ```text
//! cargo run -p drtree-bench --release --bin scale -- [max_n]
//! ```

use std::time::Instant;

use drtree_core::{DrTreeCluster, DrTreeConfig};
use drtree_workloads::SubscriptionWorkload;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let max_n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1024);
    println!("| N | build (s) | height | ceil(log2 N) | max degree | mem max | mem mean |");
    println!("|---|-----------|--------|--------------|------------|---------|----------|");
    let mut n = 64usize;
    while n <= max_n {
        let mut rng = StdRng::seed_from_u64(9_000 + n as u64);
        let filters = SubscriptionWorkload::Uniform {
            min_extent: 2.0,
            max_extent: 20.0,
        }
        .generate::<2>(n, &mut rng);
        let start = Instant::now();
        let cluster = DrTreeCluster::build(DrTreeConfig::default(), 9_500, &filters);
        let elapsed = start.elapsed().as_secs_f64();
        assert!(cluster.check_legal().is_ok(), "N={n} not legal");
        let (mem_max, mem_mean) = cluster.memory_stats();
        println!(
            "| {n} | {elapsed:.2} | {} | {} | {} | {} | {:.1} |",
            cluster.height(),
            (n as f64).log2().ceil(),
            cluster.max_degree_observed(),
            mem_max,
            mem_mean,
        );
        n *= 2;
    }
}
