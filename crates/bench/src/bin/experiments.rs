//! Regenerates every table of EXPERIMENTS.md.
//!
//! ```text
//! experiments [all | height | join | leave | crash | corrupt | churn |
//!              fp | messages | baselines | ablation] [--fast]
//! ```

use std::time::Instant;

use drtree_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let which: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let selected = if which.is_empty() || which.contains(&"all") {
        None
    } else {
        Some(which)
    };

    let registry = experiments::registry();
    let mut ran = 0usize;
    for (name, runner) in &registry {
        if let Some(sel) = &selected {
            if !sel.contains(name) {
                continue;
            }
        }
        let start = Instant::now();
        eprintln!(
            "running experiment `{name}`{}…",
            if fast { " (fast)" } else { "" }
        );
        for table in runner(fast) {
            println!("{table}");
        }
        eprintln!("  `{name}` done in {:.1?}", start.elapsed());
        ran += 1;
    }
    if ran == 0 {
        eprintln!(
            "unknown experiment; available: all, {}",
            registry
                .iter()
                .map(|(n, _)| *n)
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(2);
    }
}
