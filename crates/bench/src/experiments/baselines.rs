//! T-BASE: the DR-tree against the overlays §3.1/§4 discusses — the
//! containment-graph tree \[11\], the per-dimension forest \[3\], and
//! flooding. Reported per workload: accuracy, message cost, structural
//! depth (latency bound) and the maximum fan-out any node must carry
//! (the containment tree's virtual root and the per-dimension roots are
//! the paper's stated weaknesses).

use drtree_baselines::{Baseline, ContainmentTreeOverlay, FloodingOverlay, PerDimensionOverlay};
use drtree_core::{DrTreeCluster, DrTreeConfig};
use drtree_spatial::{Point, Rect};
use drtree_workloads::{EventWorkload, SubscriptionWorkload};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::table::fmt_f;
use crate::Table;

struct Row {
    name: String,
    fp_rate: f64,
    fns: u64,
    msgs_per_event: f64,
    depth: usize,
    fanout: usize,
}

fn run_baseline<const D: usize>(
    b: &dyn Baseline<D>,
    events: &[Point<D>],
    depth: usize,
    fanout: usize,
) -> Row {
    let mut deliveries = 0u64;
    let mut fps = 0u64;
    let mut fns = 0u64;
    let mut msgs = 0u64;
    for e in events {
        let out = b.route(e);
        deliveries += out.receivers as u64;
        fps += out.false_positives as u64;
        fns += out.false_negatives as u64;
        msgs += out.messages as u64;
    }
    Row {
        name: b.name().to_string(),
        fp_rate: if deliveries == 0 {
            0.0
        } else {
            fps as f64 / deliveries as f64
        },
        fns,
        msgs_per_event: msgs as f64 / events.len() as f64,
        depth,
        fanout,
    }
}

/// Runs the experiment; `fast` shrinks sizes.
pub fn run(fast: bool) -> Vec<Table> {
    let n = if fast { 48 } else { 96 };
    let n_events = if fast { 60 } else { 200 };
    let mut tables = Vec::new();
    for (wl_name, workload) in SubscriptionWorkload::standard() {
        let mut rng = StdRng::seed_from_u64(41_000);
        let filters: Vec<Rect<2>> = workload.generate(n, &mut rng);
        let events = EventWorkload::Following.generate_with(n_events, &filters, &mut rng);

        let mut rows: Vec<Row> = Vec::new();

        // DR-tree (the real protocol, simulated).
        let mut cluster = DrTreeCluster::build(DrTreeConfig::default(), 41_500, &filters);
        let acc = super::fp::measure(&mut cluster, &events);
        rows.push(Row {
            name: "dr-tree".into(),
            fp_rate: acc.fp_per_delivery,
            fns: acc.false_negatives,
            msgs_per_event: acc.msgs_per_event,
            depth: cluster.height() as usize,
            fanout: cluster.max_degree_observed(),
        });

        let containment = ContainmentTreeOverlay::build(&filters);
        rows.push(run_baseline(
            &containment,
            &events,
            containment.depth(),
            containment.max_fanout(),
        ));
        let per_dim = PerDimensionOverlay::build(&filters);
        rows.push(run_baseline(
            &per_dim,
            &events,
            per_dim.depth(),
            per_dim.max_fanout(),
        ));
        let flooding = FloodingOverlay::build(&filters, 4);
        rows.push(run_baseline(
            &flooding,
            &events,
            flooding.depth(),
            flooding.max_fanout(),
        ));

        let mut t = Table::new(
            format!("T-BASE — overlay comparison, {wl_name} workload (N={n}, {n_events} events)"),
            &[
                "overlay",
                "FP/delivery",
                "false negatives",
                "msgs/event",
                "depth",
                "max fan-out",
            ],
        );
        for r in rows {
            t.push(vec![
                r.name,
                fmt_f(r.fp_rate * 100.0, 1) + "%",
                r.fns.to_string(),
                fmt_f(r.msgs_per_event, 1),
                r.depth.to_string(),
                r.fanout.to_string(),
            ]);
        }
        tables.push(t);
    }
    tables
}
