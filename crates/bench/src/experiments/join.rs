//! T-JOIN (Lemma 3.2): after a join from a legitimate configuration,
//! the system is legitimate again "in O(log_m(N)) steps".
//!
//! For each N we add a handful of fresh subscribers, one at a time,
//! measuring the rounds until the configuration is legal again and the
//! join-phase message cost (JOIN routing + ADD_CHILD + acknowledgment
//! traffic, heartbeats excluded).

use drtree_core::DrTreeConfig;
use drtree_spatial::Rect;
use rand::Rng;

use crate::table::fmt_f;
use crate::Table;

use super::{build_uniform, n_sweep};

const JOINS_PER_SIZE: usize = 5;

/// Runs the experiment; `fast` shrinks the sweep.
pub fn run(fast: bool) -> Vec<Table> {
    let mut t = Table::new(
        "T-JOIN — single-join recovery vs N (Lemma 3.2)",
        &[
            "N",
            "rounds to legal (mean)",
            "rounds (max)",
            "join msgs (mean)",
            "ceil(log_2 N)",
        ],
    );
    for &n in &n_sweep(fast) {
        let mut cluster = build_uniform(n, DrTreeConfig::default(), 7000 + n as u64);
        let mut rounds_sum = 0u64;
        let mut rounds_max = 0u64;
        let mut msgs_sum = 0u64;
        for k in 0..JOINS_PER_SIZE {
            let filter = {
                let rng = cluster.rng();
                let x: f64 = rng.gen_range(0.0..85.0);
                let y: f64 = rng.gen_range(0.0..85.0);
                let w: f64 = rng.gen_range(2.0..15.0);
                let h: f64 = rng.gen_range(2.0..15.0);
                Rect::new([x, y], [x + w, y + h])
            };
            let labels = ["join", "add-child", "adopted", "assume-role", "reparent"];
            let before: u64 = labels
                .iter()
                .map(|l| cluster.metrics().label_count(l))
                .sum();
            cluster.add_subscriber(filter);
            let rounds = cluster
                .stabilize(3_000)
                .unwrap_or_else(|| panic!("join {k} at n={n} did not stabilize"));
            let after: u64 = labels
                .iter()
                .map(|l| cluster.metrics().label_count(l))
                .sum();
            rounds_sum += rounds;
            rounds_max = rounds_max.max(rounds);
            msgs_sum += after - before;
        }
        t.push(vec![
            n.to_string(),
            fmt_f(rounds_sum as f64 / JOINS_PER_SIZE as f64, 1),
            rounds_max.to_string(),
            fmt_f(msgs_sum as f64 / JOINS_PER_SIZE as f64, 1),
            fmt_f((n as f64).log2().ceil(), 0),
        ]);
    }
    vec![t]
}
