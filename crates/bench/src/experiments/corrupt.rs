//! T-CORRUPT (Lemma 3.6): "Let c be an initial arbitrary configuration
//! of the system. The system reaches a legitimate configuration c′ in a
//! finite number of steps." The adversary corrupts the memory of a
//! fraction of the processes with each strategy; the table reports the
//! rounds until Definition 3.1 holds again.

use drtree_core::corruption::CorruptionKind;
use drtree_core::DrTreeConfig;

use crate::Table;

use super::build_uniform;

/// Runs the experiment; `fast` shrinks the sweep.
pub fn run(fast: bool) -> Vec<Table> {
    let mut t = Table::new(
        "T-CORRUPT — recovery from adversarial memory corruption (Lemma 3.6)",
        &["corruption", "victims", "rounds to legal", "legal again"],
    );
    let n = if fast { 32 } else { 64 };
    let fractions: &[usize] = if fast { &[3] } else { &[3, 1] }; // every 3rd / every process
    for kind in CorruptionKind::ALL {
        for &step in fractions {
            let mut cluster = build_uniform(n, DrTreeConfig::default(), 17_000);
            let victims: Vec<_> = cluster.ids().into_iter().step_by(step).collect();
            let count = victims.len();
            for v in victims {
                cluster.corrupt(v, kind);
            }
            let rounds = cluster.stabilize(10_000);
            t.push(vec![
                format!("{kind:?}"),
                format!("{count}/{n}"),
                rounds.map_or("timeout".into(), |r| r.to_string()),
                cluster.check_legal().is_ok().to_string(),
            ]);
        }
    }

    // The "arbitrary configuration" case: every process corrupted with a
    // different strategy at once.
    let mut cluster = build_uniform(n, DrTreeConfig::default(), 17_001);
    let ids = cluster.ids();
    for (i, id) in ids.iter().enumerate() {
        cluster.corrupt(*id, CorruptionKind::ALL[i % CorruptionKind::ALL.len()]);
    }
    let rounds = cluster.stabilize(10_000);
    t.push(vec![
        "Mixed (all kinds)".into(),
        format!("{n}/{n}"),
        rounds.map_or("timeout".into(), |r| r.to_string()),
        cluster.check_legal().is_ok().to_string(),
    ]);
    vec![t]
}
