//! One module per table/figure of the evaluation (DESIGN.md §4).

pub mod ablation;
pub mod baselines;
pub mod churn;
pub mod corrupt;
pub mod crash;
pub mod fp;
pub mod height;
pub mod join;
pub mod leave;
pub mod messages;

use drtree_core::{DrTreeCluster, DrTreeConfig};
use drtree_spatial::Rect;
use drtree_workloads::SubscriptionWorkload;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::Table;

/// An experiment entry point: `fast` in, tables out.
pub type Runner = fn(bool) -> Vec<Table>;

/// The experiment registry: `(name, runner)` for the CLI.
pub fn registry() -> Vec<(&'static str, Runner)> {
    vec![
        ("height", height::run as Runner),
        ("join", join::run),
        ("leave", leave::run),
        ("crash", crash::run),
        ("corrupt", corrupt::run),
        ("churn", churn::run),
        ("fp", fp::run),
        ("messages", messages::run),
        ("baselines", baselines::run),
        ("ablation", ablation::run),
    ]
}

/// Standard uniform filters used by the structural experiments.
pub(crate) fn uniform_filters(n: usize, seed: u64) -> Vec<Rect<2>> {
    let mut rng = StdRng::seed_from_u64(seed);
    SubscriptionWorkload::Uniform {
        min_extent: 2.0,
        max_extent: 20.0,
    }
    .generate(n, &mut rng)
}

/// Builds a stabilized overlay over uniform filters.
pub(crate) fn build_uniform(n: usize, config: DrTreeConfig, seed: u64) -> DrTreeCluster<2> {
    DrTreeCluster::build(config, seed, &uniform_filters(n, seed ^ 0x9e37_79b9))
}

/// N sweep used by the scaling experiments.
pub(crate) fn n_sweep(fast: bool) -> Vec<usize> {
    if fast {
        vec![16, 32, 64]
    } else {
        vec![16, 32, 64, 128, 256]
    }
}
