//! T-FP: the headline accuracy claim — "the false positive rate is in
//! the order of 2−3% with most workloads" while "eradicating the false
//! negatives" (§4).
//!
//! For each subscription workload × split method the table reports the
//! false-positive rate per delivery and per population, the (always
//! zero) false negatives, and the message cost per event. The
//! containment-rich workloads the paper targets land in the low
//! single-digit percent range; uniform low-selectivity workloads are
//! the adversarial case, dominated by the up-path (reported for
//! completeness).

use drtree_core::{DrTreeCluster, DrTreeConfig, SplitMethod};
use drtree_spatial::Point;
use drtree_workloads::{EventWorkload, SubscriptionWorkload};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::table::fmt_f;
use crate::Table;

/// Routing accuracy for one overlay + event stream.
pub(crate) struct Accuracy {
    pub(crate) fp_per_delivery: f64,
    pub(crate) fp_per_population: f64,
    pub(crate) false_negatives: u64,
    pub(crate) msgs_per_event: f64,
}

pub(crate) fn measure(cluster: &mut DrTreeCluster<2>, events: &[Point<2>]) -> Accuracy {
    let ids = cluster.ids();
    let n = ids.len() as f64;
    let mut deliveries = 0u64;
    let mut fps = 0u64;
    let mut fns = 0u64;
    let mut msgs = 0u64;
    for (i, e) in events.iter().enumerate() {
        let publisher = ids[(i * 13) % ids.len()];
        let report = cluster.publish_from(publisher, *e);
        deliveries += report.receivers.len() as u64;
        fps += report.false_positives.len() as u64;
        fns += report.false_negatives.len() as u64;
        msgs += report.messages;
    }
    Accuracy {
        fp_per_delivery: if deliveries == 0 {
            0.0
        } else {
            fps as f64 / deliveries as f64
        },
        fp_per_population: fps as f64 / (events.len() as f64 * (n - 1.0)),
        false_negatives: fns,
        msgs_per_event: msgs as f64 / events.len() as f64,
    }
}

/// Runs the experiment; `fast` shrinks sizes.
pub fn run(fast: bool) -> Vec<Table> {
    let n = if fast { 48 } else { 96 };
    let n_events = if fast { 60 } else { 200 };
    let mut t = Table::new(
        format!("T-FP — routing accuracy by workload × split method (N={n}, {n_events} events)"),
        &[
            "workload",
            "split",
            "FP/delivery",
            "FP/population",
            "false negatives",
            "msgs/event",
        ],
    );
    for (wl_name, workload) in SubscriptionWorkload::standard() {
        for split in SplitMethod::ALL {
            let mut rng = StdRng::seed_from_u64(31_000);
            let filters = workload.generate::<2>(n, &mut rng);
            let config = DrTreeConfig::with_degree(2, 4, split).expect("valid");
            let mut cluster = DrTreeCluster::build(config, 31_500, &filters);
            let events = EventWorkload::Following.generate_with(n_events, &filters, &mut rng);
            let acc = measure(&mut cluster, &events);
            t.push(vec![
                wl_name.to_string(),
                split.to_string(),
                fmt_f(acc.fp_per_delivery * 100.0, 1) + "%",
                fmt_f(acc.fp_per_population * 100.0, 2) + "%",
                acc.false_negatives.to_string(),
                fmt_f(acc.msgs_per_event, 1),
            ]);
        }
    }
    vec![t]
}
