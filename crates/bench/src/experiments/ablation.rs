//! T-ABL: ablations of the design choices DESIGN.md calls out.
//!
//! 1. **CHECK_COVER on/off** — without the cover exchange (Fig. 13) the
//!    root is whatever node happened to be promoted, not the best
//!    cover; routing accuracy degrades.
//! 2. **FP-driven reorganization on/off under a hotspot** — §3.2's
//!    second dynamic reorganization: with biased events, swapping
//!    parents by observed false positives should reduce the FP rate of
//!    the later part of the stream.
//! 3. **Split methods** — linear vs quadratic vs R\* grouping quality
//!    (measured through the resulting FP rate).

use drtree_core::{DrTreeCluster, DrTreeConfig, FpReorgConfig, SplitMethod};
use drtree_workloads::{EventWorkload, SubscriptionWorkload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::table::fmt_f;
use crate::Table;

/// Runs the experiment; `fast` shrinks sizes.
pub fn run(fast: bool) -> Vec<Table> {
    let n = if fast { 40 } else { 80 };
    let n_events = if fast { 80 } else { 240 };
    let mut tables = Vec::new();

    // --- 1) cover swap ------------------------------------------------------
    //
    // Fresh builds already place large filters high through the split-
    // time election, so the ablation must exercise tree *evolution*:
    // small filters join first, the containers join last. CHECK_COVER
    // is what promotes the late-arriving containers over their
    // small-filter parents (Property 3.1 maintenance).
    {
        let mut t = Table::new(
            format!("T-ABL-1 — CHECK_COVER ablation, containers join last (N={n})"),
            &[
                "cover swap",
                "FP/delivery",
                "FP/population",
                "root area ratio",
            ],
        );
        for enabled in [true, false] {
            let mut rng = StdRng::seed_from_u64(43_000);
            let mut filters = SubscriptionWorkload::Containment {
                chains: 6,
                shrink: 0.72,
            }
            .generate::<2>(n, &mut rng);
            // ascending area: containees first, containers last
            filters.sort_by(|a, b| a.area().partial_cmp(&b.area()).expect("finite"));
            let config = DrTreeConfig {
                cover_swap: enabled,
                ..DrTreeConfig::default()
            };
            let mut cluster = DrTreeCluster::build(config, 43_500, &filters);
            let events = EventWorkload::Following.generate_with(n_events, &filters, &mut rng);
            let acc = super::fp::measure(&mut cluster, &events);
            let max_area = filters.iter().map(|f| f.area()).fold(0.0f64, f64::max);
            let root_area = cluster
                .root()
                .and_then(|r| cluster.node(r))
                .map_or(0.0, |nd| nd.filter().area());
            t.push(vec![
                if enabled { "on".into() } else { "off".into() },
                fmt_f(acc.fp_per_delivery * 100.0, 1) + "%",
                fmt_f(acc.fp_per_population * 100.0, 2) + "%",
                fmt_f(root_area / max_area, 2),
            ]);
        }
        tables.push(t);
    }

    // --- 2) FP-driven reorganization under a hotspot -------------------------
    {
        let mut t = Table::new(
            format!("T-ABL-2 — FP-driven reorganization under hotspot events (N={n})"),
            &[
                "fp reorg",
                "FP/event (first half)",
                "FP/event (second half)",
            ],
        );
        let reorg_events = n_events.max(240);
        for enabled in [false, true] {
            let mut rng = StdRng::seed_from_u64(47_000);
            // §3.2's scenario: "small false positive regions are hit by
            // many events while larger areas see none." Medium filters
            // cover the (hot) region around (30, 30); strictly larger
            // filters sit in the cold half of the space, so the static
            // area-based election promotes cold filters.
            let mut filters: Vec<drtree_spatial::Rect<2>> = Vec::new();
            for _ in 0..n / 4 {
                let cx: f64 = rng.gen_range(27.0..33.0);
                let cy: f64 = rng.gen_range(27.0..33.0);
                filters.push(drtree_spatial::Rect::new(
                    [cx - 8.0, cy - 8.0],
                    [cx + 8.0, cy + 8.0],
                ));
            }
            while filters.len() < n {
                let x: f64 = rng.gen_range(55.0..75.0);
                let y: f64 = rng.gen_range(0.0..75.0);
                filters.push(drtree_spatial::Rect::new([x, y], [x + 24.0, y + 24.0]));
            }
            let config = DrTreeConfig {
                fp_reorg: FpReorgConfig {
                    enabled,
                    min_samples: 12,
                    cover_cooldown: 400,
                },
                ..DrTreeConfig::default()
            };
            let mut cluster = DrTreeCluster::build(config, 47_500, &filters);
            let events = EventWorkload::Hotspot {
                center: 30.0,
                radius: 5.0,
                bias: 0.95,
            }
            .generate_with::<2>(reorg_events, &filters, &mut rng);
            let half = events.len() / 2;
            let first = super::fp::measure(&mut cluster, &events[..half]);
            // Let any pending swaps settle before the second half.
            cluster.stabilize(2_000);
            let second = super::fp::measure(&mut cluster, &events[half..]);
            let fp_per_event = |a: &super::fp::Accuracy| a.fp_per_population * (n as f64 - 1.0);
            t.push(vec![
                if enabled { "on".into() } else { "off".into() },
                fmt_f(fp_per_event(&first), 2),
                fmt_f(fp_per_event(&second), 2),
            ]);
        }
        tables.push(t);
    }

    // --- 3) split methods -----------------------------------------------------
    {
        let mut t = Table::new(
            format!("T-ABL-3 — split-method comparison (clustered workload, N={n})"),
            &["split", "FP/delivery", "msgs/event", "height"],
        );
        for split in SplitMethod::ALL {
            let mut rng = StdRng::seed_from_u64(53_000);
            let filters = SubscriptionWorkload::Clustered {
                clusters: 6,
                skew: 0.9,
                spread: 4.0,
                min_extent: 2.0,
                max_extent: 18.0,
            }
            .generate::<2>(n, &mut rng);
            let config = DrTreeConfig::with_degree(2, 4, split).expect("valid");
            let mut cluster = DrTreeCluster::build(config, 53_500, &filters);
            let events = EventWorkload::Following.generate_with(n_events, &filters, &mut rng);
            let acc = super::fp::measure(&mut cluster, &events);
            t.push(vec![
                split.to_string(),
                fmt_f(acc.fp_per_delivery * 100.0, 1) + "%",
                fmt_f(acc.msgs_per_event, 1),
                cluster.height().to_string(),
            ]);
        }
        tables.push(t);
    }

    tables
}
