//! T-MSG: publish/subscribe cost — "the DR-tree overlay also guarantees
//! subscription and publication times logarithmic in the size of the
//! network" (abstract). The table sweeps N and reports the message and
//! latency (round) cost of publications, with the flooding cost N·k as
//! the contrast line.

use drtree_core::DrTreeConfig;
use drtree_workloads::EventWorkload;

use crate::table::fmt_f;
use crate::Table;

use super::{build_uniform, n_sweep, uniform_filters};

/// Runs the experiment; `fast` shrinks the sweep.
pub fn run(fast: bool) -> Vec<Table> {
    let n_events = if fast { 30 } else { 100 };
    let mut t = Table::new(
        format!("T-MSG — dissemination cost vs N ({n_events} events, following workload)"),
        &[
            "N",
            "height",
            "msgs/event",
            "matching/event",
            "publish rounds (≈2·h+6)",
            "flooding msgs (N·4)",
        ],
    );
    for &n in &n_sweep(fast) {
        let mut cluster = build_uniform(n, DrTreeConfig::default(), 37_000 + n as u64);
        let filters = uniform_filters(n, (37_000 + n as u64) ^ 0x9e37_79b9);
        let events = {
            let rng = cluster.rng();
            EventWorkload::Following.generate_with(n_events, &filters, rng)
        };
        let ids = cluster.ids();
        let mut msgs = 0u64;
        let mut matching = 0u64;
        let mut rounds = 0u64;
        for (i, e) in events.iter().enumerate() {
            let report = cluster.publish_from(ids[(i * 7) % ids.len()], *e);
            msgs += report.messages;
            matching += report.matching.len() as u64;
            rounds = rounds.max(report.rounds);
            assert!(report.false_negatives.is_empty());
        }
        t.push(vec![
            n.to_string(),
            cluster.height().to_string(),
            fmt_f(msgs as f64 / n_events as f64, 1),
            fmt_f(matching as f64 / n_events as f64, 1),
            rounds.to_string(),
            (n * 4).to_string(),
        ]);
    }
    vec![t]
}
