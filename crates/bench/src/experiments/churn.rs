//! T-CHURN (Lemma 3.7): "Let ∆ be an interval of time during which no
//! stabilization operation is triggered and let λ be the rate of
//! departures. The expected time before the DR-tree disconnects is
//! (∆/N)·e^((N−∆λ)²/(4∆λ))."
//!
//! Two measurements sit next to the analytic bound:
//!
//! 1. **Window model (Monte-Carlo)** — the reading consistent with the
//!    formula's Chernoff-style exponent: between stabilization passes
//!    (windows of length ∆) departures arrive as Poisson(∆λ); the
//!    overlay is lost when a single window churns through the whole
//!    population. Mean disconnection time over many trials.
//! 2. **Overlay measurement** — on the real DR-tree with stabilization
//!    suspended, Poisson departures per round; rounds until a subtree
//!    is orphaned (some live process's parent is gone). This shows the
//!    raw (unrepaired) vulnerability decreasing in λ with the same
//!    shape.

use drtree_core::churn::expected_disconnect_time;
use drtree_core::DrTreeConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::table::fmt_f;
use crate::Table;

use super::build_uniform;

/// Draws a Poisson(mean) count (Knuth's method; mean kept small here).
fn poisson(rng: &mut StdRng, mean: f64) -> usize {
    let l = (-mean).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.gen_range(0.0..1.0);
        if p <= l {
            return k;
        }
        k += 1;
        if k > 10_000 {
            return k; // numerical guard for very large means
        }
    }
}

/// Runs the experiment; `fast` shrinks the trial counts.
pub fn run(fast: bool) -> Vec<Table> {
    let n = 24usize;
    let delta = 4.0f64;
    let trials = if fast { 40 } else { 200 };
    let max_windows = 200_000u64;

    let mut t = Table::new(
        "T-CHURN — expected time to disconnection vs departure rate λ (Lemma 3.7, N=24, ∆=4)",
        &[
            "λ (dep/unit)",
            "∆λ / N",
            "analytic E[T]",
            "window-model E[T] (MC)",
            "overlay rounds to orphan (mean)",
        ],
    );

    let lambdas = [3.0f64, 4.5, 6.0, 7.5, 9.0];
    for &lambda in &lambdas {
        // 1) Monte-Carlo window model.
        let mut rng = StdRng::seed_from_u64(23_000 + (lambda * 10.0) as u64);
        let mut total_windows = 0.0f64;
        for _ in 0..trials {
            let mut windows = 1u64;
            while poisson(&mut rng, delta * lambda) < n && windows < max_windows {
                windows += 1;
            }
            total_windows += windows as f64;
        }
        let mc_time = delta * total_windows / trials as f64;

        // 2) Overlay measurement: stabilization suspended, Poisson
        //    departures per round, stop at the first orphaned subtree.
        let overlay_trials = if fast { 3 } else { 10 };
        let mut orphan_rounds_sum = 0.0f64;
        for trial in 0..overlay_trials {
            let mut cluster = build_uniform(n, DrTreeConfig::default(), 29_000 + trial as u64);
            cluster.set_stabilization_enabled(false);
            // Per-round departure mean scaled so a round ≈ one time unit.
            let per_round = lambda / delta;
            let mut rounds = 0u64;
            'outer: loop {
                rounds += 1;
                let k = {
                    let rng = cluster.rng();
                    poisson(rng, per_round)
                };
                for _ in 0..k {
                    let ids = cluster.ids();
                    if ids.len() <= 1 {
                        break 'outer;
                    }
                    let victim = {
                        let rng = cluster.rng();
                        ids[rng.gen_range(0..ids.len())]
                    };
                    cluster.crash(victim);
                }
                // Disconnected as soon as a live process's topmost
                // parent is gone.
                let snapshot = cluster.snapshot();
                let orphaned = snapshot.iter().any(|(&id, st)| {
                    let parent = st.level(st.top()).map_or(id, |l| l.parent);
                    parent != id && !snapshot.contains_key(&parent)
                });
                if orphaned || rounds > 100_000 {
                    break;
                }
            }
            orphan_rounds_sum += rounds as f64;
        }

        let analytic = expected_disconnect_time(n, delta, lambda);
        t.push(vec![
            fmt_f(lambda, 1),
            fmt_f(delta * lambda / n as f64, 2),
            if analytic.is_finite() {
                fmt_f(analytic, 1)
            } else {
                "inf".into()
            },
            fmt_f(mc_time, 1),
            fmt_f(orphan_rounds_sum / overlay_trials as f64, 1),
        ]);
    }
    vec![t]
}
