//! T-LEAVE (Lemmas 3.3/3.4): recovery after controlled departures and
//! the compaction they trigger, bounded by O(N log_m N) steps (with
//! far smaller constants in practice, as the paper notes subtree
//! reconnection makes recovery cheap).

use drtree_core::DrTreeConfig;

use crate::table::fmt_f;
use crate::Table;

use super::{build_uniform, n_sweep};

const LEAVES_PER_SIZE: usize = 5;

/// Runs the experiment; `fast` shrinks the sweep.
pub fn run(fast: bool) -> Vec<Table> {
    let mut t = Table::new(
        "T-LEAVE — controlled-departure recovery vs N (Lemmas 3.3/3.4)",
        &[
            "N",
            "rounds to legal (mean)",
            "rounds (max)",
            "N·log2 N (bound)",
        ],
    );
    for &n in &n_sweep(fast) {
        let mut cluster = build_uniform(n, DrTreeConfig::default(), 11_000 + n as u64);
        let mut rounds_sum = 0u64;
        let mut rounds_max = 0u64;
        let mut done = 0usize;
        for k in 0..LEAVES_PER_SIZE {
            let ids = cluster.ids();
            if ids.len() <= 3 {
                break;
            }
            let root = cluster.root();
            // Prefer interior victims: their departure orphans subtrees.
            let victim = ids
                .iter()
                .copied()
                .filter(|&id| Some(id) != root)
                .max_by_key(|&id| cluster.node(id).map(|nd| nd.top()).unwrap_or(0))
                .expect("non-root victim exists");
            cluster.controlled_leave(victim);
            let rounds = cluster
                .stabilize(6_000)
                .unwrap_or_else(|| panic!("leave {k} at n={n} did not stabilize"));
            rounds_sum += rounds;
            rounds_max = rounds_max.max(rounds);
            done += 1;
        }
        t.push(vec![
            n.to_string(),
            fmt_f(rounds_sum as f64 / done.max(1) as f64, 1),
            rounds_max.to_string(),
            fmt_f(n as f64 * (n as f64).log2(), 0),
        ]);
    }
    vec![t]
}
