//! T-CRASH (Lemma 3.5): recovery after *uncontrolled* departures —
//! simultaneous crash failures of a fraction of the population. The
//! lemma bounds stabilization by O(N log_m N) steps; the table shows
//! rounds to a legitimate configuration for several failure fractions.

use drtree_core::DrTreeConfig;

use crate::table::fmt_f;
use crate::Table;

use super::build_uniform;

/// Runs the experiment; `fast` shrinks the sweep.
pub fn run(fast: bool) -> Vec<Table> {
    let mut t = Table::new(
        "T-CRASH — recovery after simultaneous crash failures (Lemma 3.5)",
        &[
            "N",
            "failed",
            "fraction",
            "rounds to legal",
            "survivors legal",
        ],
    );
    let sizes: &[usize] = if fast { &[48] } else { &[48, 96, 192] };
    let fractions = [0.02, 0.05, 0.10, 0.25];
    for &n in sizes {
        for &frac in &fractions {
            let mut cluster = build_uniform(n, DrTreeConfig::default(), 13_000 + n as u64);
            let root = cluster.root();
            let victims: Vec<_> = {
                let ids = cluster.ids();
                let count = ((n as f64 * frac).round() as usize).max(1);
                ids.into_iter()
                    .filter(|&id| Some(id) != root)
                    .step_by(3)
                    .take(count)
                    .collect()
            };
            let failed = victims.len();
            for v in victims {
                cluster.crash(v);
            }
            let rounds = cluster.stabilize(10_000);
            t.push(vec![
                n.to_string(),
                failed.to_string(),
                fmt_f(frac * 100.0, 0) + "%",
                rounds.map_or("timeout".into(), |r| r.to_string()),
                cluster.check_legal().is_ok().to_string(),
            ]);
        }
    }
    vec![t]
}
