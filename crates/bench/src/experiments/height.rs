//! T-HEIGHT (Lemma 3.1): "In a legitimate configuration the height of
//! the DR-tree is O(log_m(N)) while the memory complexity for the
//! structure maintenance is O(M log²(N)/log(m))."
//!
//! For a sweep of N and (m, M) the table reports the measured height
//! against ⌈log_m N⌉, the maximum observed degree against M, and the
//! per-process memory (children-table entries) against the lemma's
//! bound.

use drtree_core::{DrTreeConfig, SplitMethod};

use crate::table::fmt_f;
use crate::Table;

use super::{build_uniform, n_sweep};

/// Runs the experiment; `fast` shrinks the sweep.
pub fn run(fast: bool) -> Vec<Table> {
    let mut t = Table::new(
        "T-HEIGHT — height and memory vs N (Lemma 3.1)",
        &[
            "N",
            "m",
            "M",
            "height",
            "ceil(log_m N)",
            "max degree",
            "mem max",
            "mem mean",
            "M·log²N/log m",
        ],
    );
    let degree_settings: &[(usize, usize)] = if fast {
        &[(2, 4)]
    } else {
        &[(2, 4), (2, 6), (4, 8)]
    };
    for &n in &n_sweep(fast) {
        for &(m, max) in degree_settings {
            let config =
                DrTreeConfig::with_degree(m, max, SplitMethod::Quadratic).expect("valid degree");
            let cluster = build_uniform(n, config, 1000 + n as u64 + m as u64);
            assert!(cluster.check_legal().is_ok());
            let (mem_max, mem_mean) = cluster.memory_stats();
            let logm = (n as f64).ln() / (m as f64).ln();
            t.push(vec![
                n.to_string(),
                m.to_string(),
                max.to_string(),
                cluster.height().to_string(),
                fmt_f(logm.ceil(), 0),
                cluster.max_degree_observed().to_string(),
                mem_max.to_string(),
                fmt_f(mem_mean, 1),
                fmt_f(max as f64 * (n as f64).ln().powi(2) / (m as f64).ln(), 0),
            ]);
        }
    }
    vec![t]
}
