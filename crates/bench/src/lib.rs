//! Experiment harness for the DR-tree reproduction.
//!
//! One experiment per table/figure of the evaluation (see DESIGN.md §4
//! and EXPERIMENTS.md): each [`experiments`] module exposes
//! `run(fast) -> Vec<Table>` regenerating the corresponding rows. The
//! `experiments` binary prints them:
//!
//! ```text
//! cargo run -p drtree-bench --release --bin experiments -- all
//! cargo run -p drtree-bench --release --bin experiments -- height --fast
//! ```
//!
//! The Criterion benches under `benches/` measure the raw operation
//! costs (joins, publishes, splits, stabilization rounds, recovery),
//! and the `scale` binary tracks the committed perf numbers
//! (`BENCH_rtree.json`, `BENCH_shard.json`) with `--check` regression
//! gates — see its module docs for every mode.
//!
//! # Example
//!
//! Experiments return [`Table`]s that render as Markdown:
//!
//! ```
//! use drtree_bench::Table;
//!
//! let mut table = Table::new("demo", &["N", "rounds"]);
//! table.push(vec!["64".into(), "6".into()]);
//! assert_eq!(table.len(), 1);
//! let rendered = table.to_string();
//! assert!(rendered.contains("### demo"));
//! assert!(rendered.contains("| N  | rounds |")); // cells pad to column width
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod json;
mod table;

pub use table::Table;
