//! Experiment harness for the DR-tree reproduction.
//!
//! One experiment per table/figure of the evaluation (see DESIGN.md §4
//! and EXPERIMENTS.md): each [`experiments`] module exposes
//! `run(fast) -> Vec<Table>` regenerating the corresponding rows. The
//! `experiments` binary prints them:
//!
//! ```text
//! cargo run -p drtree-bench --release --bin experiments -- all
//! cargo run -p drtree-bench --release --bin experiments -- height --fast
//! ```
//!
//! The Criterion benches under `benches/` measure the raw operation
//! costs (joins, publishes, splits, stabilization rounds, recovery).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
mod table;

pub use table::Table;
