use std::fmt;

/// A small aligned text table for experiment reports.
///
/// Rendered as GitHub-flavored Markdown so EXPERIMENTS.md can embed the
/// output verbatim.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header length).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "### {}\n", self.title)?;
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, cell) in cells.iter().enumerate() {
                write!(f, " {cell:width$} |", width = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.header)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<width$}|", "", width = w + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with `digits` decimals.
pub(crate) fn fmt_f(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let mut t = Table::new("demo", &["n", "value"]);
        t.push(vec!["1".into(), "long-cell".into()]);
        t.push(vec!["22".into(), "x".into()]);
        let s = t.to_string();
        assert!(s.contains("### demo"));
        assert!(s.contains("| n  | value     |"));
        assert!(s.contains("| 22 | x         |"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push(vec!["only-one".into()]);
    }
}
