//! Criterion benches of the overlay's core operations: joins,
//! publications, stabilization rounds, and crash recovery. These
//! complement the `experiments` binary (which regenerates the paper's
//! tables) with raw wall-clock costs.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

use drtree_core::{DrTreeCluster, DrTreeConfig};
use drtree_spatial::{Point, Rect};
use drtree_workloads::{EventWorkload, SubscriptionWorkload};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn filters(n: usize, seed: u64) -> Vec<Rect<2>> {
    let mut rng = StdRng::seed_from_u64(seed);
    SubscriptionWorkload::Uniform {
        min_extent: 2.0,
        max_extent: 20.0,
    }
    .generate(n, &mut rng)
}

/// Cost of one subscriber joining a stable overlay (Lemma 3.2's
/// operation), per overlay size.
fn bench_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("join");
    group.sample_size(10);
    for n in [32usize, 64, 128] {
        let base = DrTreeCluster::build(DrTreeConfig::default(), 71, &filters(n, 72));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter_batched(
                || base.clone(),
                |mut cluster| {
                    cluster.add_subscriber(Rect::new([40.0, 40.0], [52.0, 52.0]));
                    cluster.stabilize(3_000).expect("join stabilizes");
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

/// Cost of publishing one event through the overlay (T-MSG's
/// operation), per overlay size.
fn bench_publish(c: &mut Criterion) {
    let mut group = c.benchmark_group("publish");
    group.sample_size(10);
    for n in [32usize, 64, 128] {
        let fs = filters(n, 73);
        let base = DrTreeCluster::build(DrTreeConfig::default(), 74, &fs);
        let mut rng = StdRng::seed_from_u64(75);
        let events: Vec<Point<2>> = EventWorkload::Following.generate_with(64, &fs, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut cluster = base.clone();
            let ids = cluster.ids();
            let mut i = 0usize;
            b.iter(|| {
                let report = cluster.publish_from(ids[i % ids.len()], events[i % events.len()]);
                i += 1;
                report.messages
            });
        });
    }
    group.finish();
}

/// Cost of one synchronous stabilization round on a quiescent overlay
/// (the steady-state maintenance price).
fn bench_stabilization_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("stabilize-round");
    group.sample_size(10);
    for n in [64usize, 256] {
        let base = DrTreeCluster::build(DrTreeConfig::default(), 76, &filters(n, 77));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut cluster = base.clone();
            b.iter(|| cluster.run_round());
        });
    }
    group.finish();
}

/// Recovery cost after 10% simultaneous crash failures (Lemma 3.5's
/// operation).
fn bench_crash_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("crash-recovery");
    group.sample_size(10);
    {
        let n = 64usize;
        let base = DrTreeCluster::build(DrTreeConfig::default(), 78, &filters(n, 79));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter_batched(
                || base.clone(),
                |mut cluster| {
                    let root = cluster.root();
                    let victims: Vec<_> = cluster
                        .ids()
                        .into_iter()
                        .filter(|&id| Some(id) != root)
                        .step_by(10)
                        .collect();
                    for v in victims {
                        cluster.crash(v);
                    }
                    cluster.stabilize(10_000).expect("recovers");
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_join,
    bench_publish,
    bench_stabilization_round,
    bench_crash_recovery
);
criterion_main!(benches);
