//! Criterion benches of the sharded publish oracle: single-probe vs
//! batched matching per shard count. The `scale` binary's `shard` mode
//! is the tracked, JSON-emitting version of the same comparison at
//! larger sizes; this bench is the quick local loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use drtree_core::ProcessId;
use drtree_pubsub::{BatchMatches, ShardedOracle};
use drtree_spatial::{Point, Rect};
use drtree_workloads::SubscriptionWorkload;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SUBSCRIPTIONS: usize = 10_000;
const BATCH: usize = 512;

fn oracle(shards: usize) -> (ShardedOracle<2>, Vec<Point<2>>) {
    let mut rng = StdRng::seed_from_u64(4242);
    let rects: Vec<Rect<2>> = SubscriptionWorkload::Uniform {
        min_extent: 1.0,
        max_extent: 10.0,
    }
    .generate(SUBSCRIPTIONS, &mut rng);
    let mut oracle = ShardedOracle::new(shards);
    for (i, r) in rects.iter().enumerate() {
        oracle.insert(ProcessId::from_raw(i as u64), *r);
    }
    oracle.flush();
    let probes: Vec<Point<2>> = rects.iter().take(BATCH).map(Rect::center).collect();
    (oracle, probes)
}

/// Per-event matching cost, one probe at a time.
fn bench_single(c: &mut Criterion) {
    let mut group = c.benchmark_group("shard-oracle-single-10k");
    group.sample_size(20);
    for shards in [1usize, 4] {
        let (mut oracle, probes) = oracle(shards);
        let mut hits = Vec::new();
        group.bench_with_input(BenchmarkId::from_parameter(shards), &shards, |b, _| {
            b.iter(|| {
                let mut total = 0usize;
                for p in &probes {
                    oracle.match_point_into(p, &mut hits);
                    total += hits.len();
                }
                total
            });
        });
    }
    group.finish();
}

/// Per-event matching cost amortized over one batched shard pass.
fn bench_batched(c: &mut Criterion) {
    let mut group = c.benchmark_group("shard-oracle-batched-10k");
    group.sample_size(20);
    for shards in [1usize, 4] {
        let (mut oracle, probes) = oracle(shards);
        let mut batch = BatchMatches::new();
        group.bench_with_input(BenchmarkId::from_parameter(shards), &shards, |b, _| {
            b.iter(|| {
                oracle.match_batch_into(&probes, &mut batch);
                batch.total_hits()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_single, bench_batched);
criterion_main!(benches);
