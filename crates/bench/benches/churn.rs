//! Criterion benches of oracle maintenance under churn: one mixed
//! mutate/flush/publish round against the sharded oracle, with
//! incremental delta-layer maintenance (synchronous and concurrent
//! compaction) vs the rebuild-on-flush baseline (delta fraction
//! forced to 0). The `scale` binary's `churn` mode is the tracked,
//! JSON-emitting version of the same comparison at larger sizes; this
//! bench is the quick local loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use drtree_core::ProcessId;
use drtree_pubsub::{BatchMatches, CompactionMode, ShardedOracle};
use drtree_spatial::{Point, Rect};
use drtree_workloads::SubscriptionWorkload;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SUBSCRIPTIONS: usize = 10_000;
const CHURN_PER_ROUND: usize = 128;
const PUBLISHES_PER_ROUND: usize = 512;

/// One mixed round per iteration: `CHURN_PER_ROUND` paired
/// subscribe/unsubscribe operations (so the live size stays constant),
/// one flush, one publish batch.
fn bench_churn_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("churn-mutate-publish-10k");
    group.sample_size(20);
    for (name, fraction, mode) in [
        (
            "incremental",
            drtree_rtree::DEFAULT_DELTA_FRACTION,
            CompactionMode::Synchronous,
        ),
        ("rebuild-on-flush", 0.0, CompactionMode::Synchronous),
        (
            "concurrent",
            drtree_rtree::DEFAULT_DELTA_FRACTION,
            CompactionMode::Concurrent,
        ),
    ] {
        let mut rng = StdRng::seed_from_u64(4242);
        let rects: Vec<Rect<2>> = SubscriptionWorkload::Uniform {
            min_extent: 1.0,
            max_extent: 10.0,
        }
        .generate(SUBSCRIPTIONS, &mut rng);
        let mut oracle: ShardedOracle<2> = ShardedOracle::new(4);
        oracle.set_threads(1);
        oracle.set_delta_fraction(fraction);
        oracle.set_compaction_mode(mode);
        let mut live: Vec<(u64, Rect<2>)> = Vec::with_capacity(rects.len());
        for (i, r) in rects.iter().enumerate() {
            oracle.insert(ProcessId::from_raw(i as u64), *r);
            live.push((i as u64, *r));
        }
        oracle.flush();
        let probes: Vec<Point<2>> = rects
            .iter()
            .take(PUBLISHES_PER_ROUND)
            .map(Rect::center)
            .collect();
        let mut batch = BatchMatches::new();
        let mut next_id = rects.len() as u64;
        let mut victim = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
            b.iter(|| {
                for _ in 0..CHURN_PER_ROUND {
                    // Leave the current victim, join a fresh entry with
                    // the same rectangle: constant size, full delta
                    // traffic.
                    let (id, rect) = live[victim];
                    assert!(oracle.remove(ProcessId::from_raw(id), &rect));
                    oracle.insert(ProcessId::from_raw(next_id), rect);
                    live[victim] = (next_id, rect);
                    next_id += 1;
                    victim = (victim + 1) % live.len();
                }
                oracle.flush();
                oracle.match_batch_into(&probes, &mut batch);
                batch.total_hits()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_churn_round);
criterion_main!(benches);
