//! Criterion benches of the centralized R-tree substrate: insertion and
//! point queries per split method, and the raw split procedures — the
//! costs behind the paper's "linear time" / "quadratic time" discussion
//! of §3.2.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

use drtree_rtree::{PackedRTree, RTree, RTreeConfig, SplitMethod};
use drtree_spatial::Rect;
use drtree_workloads::SubscriptionWorkload;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rects(n: usize, seed: u64) -> Vec<Rect<2>> {
    let mut rng = StdRng::seed_from_u64(seed);
    SubscriptionWorkload::Uniform {
        min_extent: 1.0,
        max_extent: 10.0,
    }
    .generate(n, &mut rng)
}

/// Bulk insertion throughput per split method.
fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("rtree-insert-1k");
    group.sample_size(10);
    let data = rects(1_000, 81);
    for method in SplitMethod::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(method),
            &method,
            |b, &method| {
                b.iter_batched(
                    || data.clone(),
                    |data| {
                        let mut tree: RTree<usize, 2> =
                            RTree::new(RTreeConfig::new(2, 8, method).expect("valid"));
                        for (i, r) in data.into_iter().enumerate() {
                            tree.insert(i, r);
                        }
                        tree.len()
                    },
                    BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

/// Point-query throughput on a 10k-entry tree.
fn bench_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("rtree-point-query-10k");
    group.sample_size(20);
    let data = rects(10_000, 82);
    let mut tree: RTree<usize, 2> =
        RTree::new(RTreeConfig::new(4, 16, SplitMethod::RStar).expect("valid"));
    for (i, r) in data.iter().enumerate() {
        tree.insert(i, *r);
    }
    let probes: Vec<_> = data.iter().map(|r| r.center()).collect();
    let mut i = 0usize;
    group.bench_function("center-probes", |b| {
        b.iter(|| {
            let hits = tree.search_point(&probes[i % probes.len()]);
            i += 1;
            hits.len()
        });
    });
    group.finish();
}

/// The raw split procedures on an overflowing children set (M+1 = 17).
fn bench_split(c: &mut Criterion) {
    let mut group = c.benchmark_group("split-17-entries");
    let entries = rects(17, 83);
    for method in SplitMethod::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(method),
            &method,
            |b, &method| {
                b.iter(|| method.split(&entries, 4));
            },
        );
    }
    group.finish();
}

/// STR bulk loading vs incremental construction of the same 10k set.
fn bench_bulk_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("rtree-build-10k");
    group.sample_size(10);
    let data = rects(10_000, 84);
    let config = RTreeConfig::new(4, 16, SplitMethod::RStar).expect("valid");
    group.bench_function("bulk-str", |b| {
        b.iter_batched(
            || data.clone(),
            |data| {
                let tree =
                    RTree::bulk_load(config, data.into_iter().enumerate().collect::<Vec<_>>());
                tree.height()
            },
            BatchSize::LargeInput,
        );
    });
    group.bench_function("incremental", |b| {
        b.iter_batched(
            || data.clone(),
            |data| {
                let mut tree: RTree<usize, 2> = RTree::new(config);
                for (i, r) in data.into_iter().enumerate() {
                    tree.insert(i, r);
                }
                tree.height()
            },
            BatchSize::LargeInput,
        );
    });
    group.finish();
}

/// Pointer vs packed backend: bulk construction of the same 100k set.
/// The packed (Hilbert) build must stay ≥ 2× faster than the pointer
/// STR build — the regression gate `BENCH_rtree.json` tracks per PR.
fn bench_backend_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("backend-build-100k");
    group.sample_size(10);
    let data = rects(100_000, 85);
    let config = RTreeConfig::new(4, 16, SplitMethod::RStar).expect("valid");
    group.bench_function("pointer-str", |b| {
        b.iter_batched(
            || data.clone().into_iter().enumerate().collect::<Vec<_>>(),
            |entries| RTree::bulk_load(config, entries).height(),
            BatchSize::LargeInput,
        );
    });
    group.bench_function("packed-hilbert", |b| {
        b.iter_batched(
            || data.clone().into_iter().enumerate().collect::<Vec<_>>(),
            |entries| PackedRTree::bulk_load(entries).height(),
            BatchSize::LargeInput,
        );
    });
    group.finish();
}

/// Pointer vs packed backend: point queries against the same 100k set.
fn bench_backend_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("backend-point-query-100k");
    group.sample_size(20);
    let data = rects(100_000, 86);
    let entries: Vec<(usize, Rect<2>)> = data.iter().copied().enumerate().collect();
    let config = RTreeConfig::new(4, 16, SplitMethod::RStar).expect("valid");
    let pointer = RTree::bulk_load(config, entries.clone());
    let packed = PackedRTree::bulk_load(entries);
    let probes: Vec<_> = data.iter().map(|r| r.center()).collect();

    let mut i = 0usize;
    group.bench_function("pointer", |b| {
        b.iter(|| {
            let hits = pointer.search_point(&probes[i % probes.len()]);
            i += 1;
            hits.len()
        });
    });
    let mut j = 0usize;
    group.bench_function("packed", |b| {
        b.iter(|| {
            let hits = packed.search_point(&probes[j % probes.len()]);
            j += 1;
            hits.len()
        });
    });
    let mut k = 0usize;
    group.bench_function("packed-visitor", |b| {
        b.iter(|| {
            let mut count = 0usize;
            packed.for_each_containing(&probes[k % probes.len()], |_, _| count += 1);
            k += 1;
            count
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_insert,
    bench_query,
    bench_split,
    bench_bulk_load,
    bench_backend_build,
    bench_backend_query
);
criterion_main!(benches);
