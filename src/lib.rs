//! # drtree — stabilizing peer-to-peer spatial filters
//!
//! A production-quality Rust reproduction of *"Stabilizing Peer-to-Peer
//! Spatial Filters"* (Bianchi, Datta, Felber, Gradinariu — ICDCS 2007):
//! the **DR-tree**, a self-stabilizing distributed R-tree overlay for
//! content-based publish/subscribe with multi-dimensional range filters.
//!
//! This facade crate re-exports the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`spatial`] | `drtree-spatial` | rectangles, points, the filter language, containment graphs |
//! | [`rtree`] | `drtree-rtree` | centralized R-tree + the linear/quadratic/R\* split methods |
//! | [`sim`] | `drtree-sim` | deterministic discrete-event & round simulation engines |
//! | [`core`] | `drtree-core` | the DR-tree protocol, legality checking, churn analysis |
//! | [`pubsub`] | `drtree-pubsub` | the attribute-space broker + routing statistics |
//! | [`baselines`] | `drtree-baselines` | containment-tree, per-dimension, flooding baselines |
//! | [`workloads`] | `drtree-workloads` | subscription/event/churn generators |
//!
//! The most common entry points are re-exported at the top level.
//!
//! ## Quick start
//!
//! ```
//! use drtree::{Broker, DrTreeConfig, Event, FilterExpr, Op, Schema};
//!
//! // A two-attribute content space.
//! let schema = Schema::new(["temperature", "humidity"]);
//! let mut broker: Broker<2> = Broker::new(schema, DrTreeConfig::default(), 42)?;
//!
//! // Subscribe: "temperature in [20, 30] and humidity in [0, 50]".
//! let alice = broker.subscribe(
//!     &FilterExpr::new()
//!         .and("temperature", Op::Ge, 20.0)
//!         .and("temperature", Op::Le, 30.0)
//!         .and("humidity", Op::Ge, 0.0)
//!         .and("humidity", Op::Le, 50.0),
//! )?;
//! let bob = broker.subscribe(
//!     &FilterExpr::new()
//!         .and("temperature", Op::Ge, 0.0)
//!         .and("temperature", Op::Le, 100.0)
//!         .and("humidity", Op::Ge, 0.0)
//!         .and("humidity", Op::Le, 100.0),
//! )?;
//!
//! // Publish an event from Bob; Alice is interested, nobody is missed.
//! let report = broker.publish(bob, &Event::new().with("temperature", 25.0).with("humidity", 10.0))?;
//! assert_eq!(report.matching, vec![alice]);
//! assert!(report.false_negatives.is_empty());
//! # Ok::<(), drtree::pubsub::BrokerError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use drtree_baselines as baselines;
pub use drtree_core as core;
pub use drtree_pubsub as pubsub;
pub use drtree_rtree as rtree;
pub use drtree_sim as sim;
pub use drtree_spatial as spatial;
pub use drtree_workloads as workloads;

pub use drtree_core::{
    churn, corruption, legal, DrTreeCluster, DrTreeConfig, DrtNode, FpReorgConfig, ProcessId,
    PublishReport, SplitMethod,
};
pub use drtree_pubsub::{Broker, IngressConfig, MultiBroker, RoutingStats};
pub use drtree_rtree::{PackedRTree, RTree, RTreeConfig, SpatialIndex};
pub use drtree_spatial::{ContainmentGraph, Event, FilterExpr, Op, Point, Rect, Schema};
pub use drtree_workloads::{EventWorkload, PoissonChurn, SubscriptionWorkload};
