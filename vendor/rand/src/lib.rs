//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim provides exactly the surface the workspace uses: a seedable,
//! clonable, deterministic [`rngs::StdRng`] plus the [`Rng`] extension
//! methods `gen_range`, `gen_bool` and `gen`. The generator is
//! xoshiro256++ seeded through SplitMix64 — different algorithm than
//! upstream `StdRng` (ChaCha12), same determinism contract: a seed
//! fully determines the stream, and clones replay identically.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed;

    /// Builds a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        unit_f64(self.next_u64()) < p
    }

    /// A sample of the standard distribution of `T` (full integer range,
    /// `[0, 1)` for floats, fair coin for `bool`).
    fn gen<T>(&mut self) -> T
    where
        T: StandardSample,
        Self: Sized,
    {
        T::standard_sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types with a canonical "standard" distribution for [`Rng::gen`].
pub trait StandardSample: Sized {
    /// Draws one standard sample.
    fn standard_sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn standard_sample<R: RngCore>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl StandardSample for i128 {
    fn standard_sample<R: RngCore>(rng: &mut R) -> Self {
        u128::standard_sample(rng) as i128
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types uniformly samplable over a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample from `[lo, hi)` (`inclusive = false`) or
    /// `[lo, hi]` (`inclusive = true`).
    fn sample_uniform<R: RngCore>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = (hi as i128 - lo as i128) + i128::from(inclusive);
                assert!(span > 0, "gen_range: empty range");
                // Multiply-shift reduction of 64 random bits onto the span;
                // the bias is < span / 2^64, far below observability here.
                let scaled = (u128::from(rng.next_u64()) * span as u128) >> 64;
                (lo as i128 + scaled as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                if inclusive {
                    assert!(lo <= hi, "gen_range: empty range");
                    if lo == hi {
                        return lo;
                    }
                } else {
                    assert!(lo < hi, "gen_range: empty range");
                }
                let u = unit_f64(rng.next_u64()) as $t;
                let v = lo + (hi - lo) * u;
                // Guard against rounding up to an excluded upper bound.
                if !inclusive && v >= hi {
                    lo
                } else {
                    v
                }
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_uniform(rng, lo, hi, true)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Seeded via SplitMix64 so that nearby `u64` seeds yield unrelated
    /// streams. `Clone` replays the stream from the cloned state.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s == [0; 4] {
                // xoshiro must not start from the all-zero state.
                return Self::seed_from_u64(0);
            }
            Self { s }
        }

        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism_and_divergence() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let ta: Vec<u64> = (0..16).map(|_| a.gen_range(0..1_000_000u64)).collect();
        let tb: Vec<u64> = (0..16).map(|_| b.gen_range(0..1_000_000u64)).collect();
        let tc: Vec<u64> = (0..16).map(|_| c.gen_range(0..1_000_000u64)).collect();
        assert_eq!(ta, tb);
        assert_ne!(ta, tc);
    }

    #[test]
    fn clone_replays() {
        let mut a = StdRng::seed_from_u64(42);
        let _ = a.gen_range(0.0..1.0);
        let mut b = a.clone();
        assert_eq!(a.gen_range(0..100usize), b.gen_range(0..100usize));
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(-100.0..100.0);
            assert!((-100.0..100.0).contains(&x));
            let y = rng.gen_range(3usize..9);
            assert!((3..9).contains(&y));
            let z = rng.gen_range(2.0..=5.0);
            assert!((2.0..=5.0).contains(&z));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_edges() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn degenerate_inclusive_float_range() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(rng.gen_range(4.0..=4.0), 4.0);
        assert!(rng.gen_range(f64::MIN_POSITIVE..1.0) > 0.0);
    }
}
