//! `any::<T>()` — the canonical full-range strategy of a type.

use std::marker::PhantomData;

use rand::rngs::StdRng;
use rand::{Rng, StandardSample};

use crate::strategy::Strategy;

/// Types with a canonical [`any`] strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl<T: StandardSample> Arbitrary for T {
    fn arbitrary(rng: &mut StdRng) -> T {
        rng.gen()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy of `T`: full range for integers, `[0, 1)` for
/// floats, fair coin for `bool`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
