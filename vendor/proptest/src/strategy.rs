//! The [`Strategy`] trait and its combinators.

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform};

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree: strategies generate
/// final values directly and failing cases are not shrunk.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn gen_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

/// Boxes a strategy, driving value-type inference at `prop_oneof!` call
/// sites.
pub fn boxed<S: Strategy + 'static>(strategy: S) -> BoxedStrategy<S::Value> {
    Box::new(strategy)
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn gen_value(&self, rng: &mut StdRng) -> V {
        (**self).gen_value(rng)
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn gen_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// A constant strategy.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut StdRng) -> T {
        rng.gen_range(*self.start()..=*self.end())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn gen_value(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.gen_value(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Result of [`crate::prop_oneof!`]: picks an arm by weight, then
/// delegates.
pub struct WeightedUnion<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u32,
}

impl<V> WeightedUnion<V> {
    /// Builds a union; panics on empty arm lists or zero total weight.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof!: total weight must be positive");
        Self { arms, total }
    }
}

impl<V> Strategy for WeightedUnion<V> {
    type Value = V;

    fn gen_value(&self, rng: &mut StdRng) -> V {
        let mut pick = rng.gen_range(0..self.total);
        for (weight, strat) in &self.arms {
            if pick < *weight {
                return strat.gen_value(rng);
            }
            pick -= weight;
        }
        unreachable!("pick < total by construction")
    }
}
