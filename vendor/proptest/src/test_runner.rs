//! Case execution: configuration, failure type, and the runner loop.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases generated per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A failed property-test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Fails the case with `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// The failure message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Runs `case` for `config.cases` iterations with a deterministic RNG
/// derived from `test_name` (perturbable via `PROPTEST_SEED_OFFSET`).
///
/// # Panics
///
/// Panics on the first failing case, reporting its index and message.
pub fn run_cases(
    config: &ProptestConfig,
    test_name: &str,
    mut case: impl FnMut(&mut StdRng) -> Result<(), TestCaseError>,
) {
    let mut hasher = DefaultHasher::new();
    test_name.hash(&mut hasher);
    let offset: u64 = std::env::var("PROPTEST_SEED_OFFSET")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let mut rng = StdRng::seed_from_u64(hasher.finish() ^ offset);
    for i in 0..config.cases {
        if let Err(e) = case(&mut rng) {
            panic!(
                "proptest: test `{test_name}` failed at case {i}/{}:\n{}",
                config.cases,
                e.message()
            );
        }
    }
}
