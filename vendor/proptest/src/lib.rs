//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim implements the slice of proptest the workspace's property tests
//! use: the [`proptest!`] macro, [`strategy::Strategy`] with
//! `prop_map`, [`prop_oneof!`], [`arbitrary::any`],
//! [`collection::vec`], [`sample::select`], range and tuple strategies,
//! and the `prop_assert*` macros.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its inputs (via the
//!   assertion message) but is not minimized.
//! * **Deterministic seeding.** Each test derives its RNG seed from the
//!   test's name, so failures reproduce exactly across runs; set
//!   `PROPTEST_SEED_OFFSET` to explore different case streams.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// The common imports property tests start with.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace mirror of upstream's `prop` module.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Defines property tests: each function's arguments are drawn from the
/// given strategies for `ProptestConfig::cases` iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;
     $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                $crate::test_runner::run_cases(&config, stringify!($name), |__proptest_rng| {
                    $( let $arg = $crate::strategy::Strategy::gen_value(&($strat), __proptest_rng); )+
                    let mut __proptest_case =
                        || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        };
                    __proptest_case()
                });
            }
        )*
    };
}

/// `assert!` that fails the current case instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` for property-test cases.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)*), left, right
        );
    }};
}

/// `assert_ne!` for property-test cases.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Weighted (or unweighted) choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::WeightedUnion::new(vec![
            $( ($weight as u32, $crate::strategy::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::WeightedUnion::new(vec![
            $( (1u32, $crate::strategy::boxed($strat)) ),+
        ])
    };
}
