//! Collection strategies.

use std::ops::Range;

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Size specification for [`vec()`]: a fixed length or a half-open range.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "vec strategy: empty size range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn gen_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..self.size.hi);
        (0..len).map(|_| self.element.gen_value(rng)).collect()
    }
}

/// `Vec`s of `element` values with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
