//! Sampling strategies over fixed collections.

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Strategy returned by [`select`].
pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut StdRng) -> T {
        self.options[rng.gen_range(0..self.options.len())].clone()
    }
}

/// Uniform choice from a non-empty list of options.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select: empty option list");
    Select { options }
}
