//! Offline drop-in subset of the `criterion` API.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim implements the benchmarking surface the workspace uses:
//! benchmark groups, `Bencher::iter` / `iter_batched`, `BenchmarkId`,
//! and the `criterion_group!` / `criterion_main!` macros. Measurements
//! are simple wall-clock means over a fixed time budget — no warm-up
//! modeling, outlier analysis, or HTML reports. Good enough to compare
//! implementations on the same machine, which is all the workspace's
//! benches do.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Measurement budget per benchmark (per sample set).
const MEASURE_BUDGET: Duration = Duration::from_millis(300);

/// Hint for how batched inputs are grouped; ignored by the shim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id made of a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures and reports the mean wall-clock cost per iteration.
pub struct Bencher {
    /// Mean nanoseconds per iteration of the last routine, if measured.
    mean_ns: Option<f64>,
}

impl Bencher {
    /// Measures `routine` repeatedly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up.
        for _ in 0..3 {
            black_box(routine());
        }
        let started = Instant::now();
        let mut iters = 0u64;
        let mut spent = Duration::ZERO;
        while spent < MEASURE_BUDGET {
            let t0 = Instant::now();
            black_box(routine());
            spent += t0.elapsed();
            iters += 1;
            if started.elapsed() > MEASURE_BUDGET * 4 {
                break; // slow routine: settle for few iterations
            }
        }
        self.mean_ns = Some(spent.as_nanos() as f64 / iters as f64);
    }

    /// Measures `routine` on fresh inputs produced (untimed) by `setup`.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        black_box(routine(setup())); // warm-up
        let started = Instant::now();
        let mut iters = 0u64;
        let mut spent = Duration::ZERO;
        while spent < MEASURE_BUDGET {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            spent += t0.elapsed();
            iters += 1;
            if started.elapsed() > MEASURE_BUDGET * 4 {
                break;
            }
        }
        self.mean_ns = Some(spent.as_nanos() as f64 / iters as f64);
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes samples by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        let label = format!("{}/{}", self.name, id);
        self.criterion.run_one(&label, f);
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let label = format!("{}/{}", self.name, id);
        self.criterion.run_one(&label, |b| f(b, input));
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs one free-standing benchmark.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        let label = id.to_string();
        self.run_one(&label, f);
    }

    fn run_one(&mut self, label: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher { mean_ns: None };
        f(&mut bencher);
        match bencher.mean_ns {
            Some(ns) => println!("bench: {label:<48} {:>14} ns/iter", fmt_ns(ns)),
            None => println!("bench: {label:<48} (no measurement)"),
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}e9", ns / 1e9)
    } else {
        format!("{:.0}", ns)
    }
}

/// Declares a group-runner function executing each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
